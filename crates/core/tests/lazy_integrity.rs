//! Lazy-vs-eager equivalence (ISSUE 8): a store with `lazy_integrity` on
//! is driven through arbitrary interleavings of commits, overwrites,
//! deallocations, checkpoints, root queries, proof extractions, and
//! crash/recovery reopens, in lockstep with an eager twin. After every
//! step the two must agree on the effective root digest, and every proof
//! must be identical across the twins and verify against the shared root.
//!
//! This pins the accumulator's memo invariant end to end: if any mutation
//! path forgets to invalidate, the lazy store serves a stale hash and the
//! roots diverge.

use std::sync::Arc;

use proptest::prelude::*;

use tdb_core::params::CryptoParams;
use tdb_core::proof::verify_read_proof;
use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend, ValidationMode};
use tdb_core::{ChunkId, PartitionId};
use tdb_crypto::{CipherKind, HashKind, SecretKey};
use tdb_storage::{CounterOverTrusted, MemStore, MemTrustedStore, TrustedStore};

fn config(lazy: bool) -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 8192,
        validation: ValidationMode::Counter {
            delta_ut: 3,
            delta_tu: 0,
        },
        // Queries must exercise the dirty (effective) tree; checkpoints
        // happen only when the op sequence asks for one.
        checkpoint_threshold: 100_000,
        lazy_integrity: lazy,
        ..ChunkStoreConfig::default()
    }
}

/// One store plus the handles needed to crash-reopen it.
struct Twin {
    store: Option<ChunkStore>,
    untrusted: Arc<MemStore>,
    trusted: Arc<MemTrustedStore>,
    secret: SecretKey,
    lazy: bool,
}

impl Twin {
    fn create(lazy: bool) -> Twin {
        let untrusted = Arc::new(MemStore::new());
        let trusted = Arc::new(MemTrustedStore::new(16));
        let secret = SecretKey::new(vec![11u8; 24]);
        let counter = Arc::new(CounterOverTrusted::new(
            Arc::clone(&trusted) as Arc<dyn TrustedStore>
        ));
        let store = ChunkStore::create(
            Arc::clone(&untrusted) as _,
            TrustedBackend::Counter(counter),
            secret.clone(),
            config(lazy),
        )
        .unwrap();
        Twin {
            store: Some(store),
            untrusted,
            trusted,
            secret,
            lazy,
        }
    }

    fn store(&self) -> &ChunkStore {
        self.store.as_ref().expect("store is open")
    }

    /// Crash (drop without close) and recover from the persisted state.
    fn reopen(&mut self) {
        self.store = None;
        let counter = Arc::new(CounterOverTrusted::new(
            Arc::clone(&self.trusted) as Arc<dyn TrustedStore>
        ));
        self.store = Some(
            ChunkStore::open(
                Arc::clone(&self.untrusted) as _,
                TrustedBackend::Counter(counter),
                self.secret.clone(),
                config(self.lazy),
            )
            .unwrap(),
        );
    }
}

#[derive(Debug, Clone)]
enum Step {
    /// Allocate a fresh chunk and write it.
    Write { payload: u8 },
    /// Overwrite an already-written chunk (picked by index, modulo).
    Overwrite { pick: usize, payload: u8 },
    /// Deallocate an already-written chunk.
    Dealloc { pick: usize },
    /// Explicit checkpoint on both twins.
    Checkpoint,
    /// Extract and cross-check a proof for a written chunk.
    Proof { pick: usize },
    /// Crash both twins and recover.
    Reopen,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => any::<u8>().prop_map(|payload| Step::Write { payload }),
        3 => (0usize..64, any::<u8>())
            .prop_map(|(pick, payload)| Step::Overwrite { pick, payload }),
        2 => (0usize..64).prop_map(|pick| Step::Dealloc { pick }),
        1 => Just(Step::Checkpoint),
        3 => (0usize..64).prop_map(|pick| Step::Proof { pick }),
        1 => Just(Step::Reopen),
    ]
}

fn run_steps(steps: Vec<Step>) {
    let mut eager = Twin::create(false);
    let mut lazy = Twin::create(true);

    // A shared partition created identically on both twins. Fixed params:
    // CryptoParams::generate draws random keys, and the twins must match.
    let params = CryptoParams {
        cipher: CipherKind::Des,
        hash: HashKind::Sha1,
        key: SecretKey::new(vec![42u8; CipherKind::Des.key_len()]),
    };
    let mut p = PartitionId(0);
    for twin in [&eager, &lazy] {
        p = twin.store().allocate_partition().unwrap();
        twin.store()
            .commit(vec![CommitOp::CreatePartition {
                id: p,
                params: params.clone(),
            }])
            .unwrap();
    }

    let mut written: Vec<ChunkId> = Vec::new();
    for step in steps {
        match step {
            Step::Write { payload } => {
                let a = eager.store().allocate_chunk(p).unwrap();
                let b = lazy.store().allocate_chunk(p).unwrap();
                assert_eq!(a, b, "twins diverged on allocation");
                for twin in [&eager, &lazy] {
                    twin.store()
                        .commit(vec![CommitOp::WriteChunk {
                            id: a,
                            bytes: vec![payload; 1 + usize::from(payload) % 48],
                        }])
                        .unwrap();
                }
                written.push(a);
            }
            Step::Overwrite { pick, payload } => {
                if written.is_empty() {
                    continue;
                }
                let id = written[pick % written.len()];
                for twin in [&eager, &lazy] {
                    twin.store()
                        .commit(vec![CommitOp::WriteChunk {
                            id,
                            bytes: vec![payload; 1 + usize::from(payload) % 32],
                        }])
                        .unwrap();
                }
            }
            Step::Dealloc { pick } => {
                if written.is_empty() {
                    continue;
                }
                let id = written.remove(pick % written.len());
                for twin in [&eager, &lazy] {
                    twin.store()
                        .commit(vec![CommitOp::DeallocChunk { id }])
                        .unwrap();
                }
            }
            Step::Checkpoint => {
                eager.store().checkpoint().unwrap();
                lazy.store().checkpoint().unwrap();
            }
            Step::Proof { pick } => {
                if written.is_empty() {
                    continue;
                }
                let id = written[pick % written.len()];
                let root = eager.store().snapshot_root(p).unwrap();
                let (body_e, proof_e) = eager.store().read_with_proof(id).unwrap();
                let (body_l, proof_l) = lazy.store().read_with_proof(id).unwrap();
                assert_eq!(body_e, body_l);
                assert_eq!(proof_e, proof_l, "lazy proof differs for {id}");
                assert!(verify_read_proof(&proof_l, &body_l, &root));
            }
            Step::Reopen => {
                eager.reopen();
                lazy.reopen();
            }
        }
        // The invariant under test: after *every* step the lazy twin's
        // effective root equals the eager recompute.
        let root_e = eager.store().snapshot_root(p).unwrap();
        let root_l = lazy.store().snapshot_root(p).unwrap();
        assert_eq!(root_e, root_l, "roots diverged after {step:?}");
    }
    // The memoized store must have actually memoized on any non-trivial
    // sequence with root queries (every step queries the root above).
    let stats = lazy.store().stats();
    assert!(
        stats.lazy_hash_recomputes > 0,
        "lazy twin never exercised the accumulator"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn lazy_root_equals_eager_root(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        run_steps(steps);
    }
}

/// Deterministic smoke covering every step kind in one sequence, so the
/// equivalence holds even if the random sampler never lines them up.
#[test]
fn regression_all_steps_interleaved() {
    run_steps(vec![
        Step::Write { payload: 1 },
        Step::Write { payload: 2 },
        Step::Proof { pick: 0 },
        Step::Write { payload: 3 },
        Step::Overwrite {
            pick: 1,
            payload: 9,
        },
        Step::Checkpoint,
        Step::Proof { pick: 2 },
        Step::Dealloc { pick: 0 },
        Step::Reopen,
        Step::Write { payload: 4 },
        Step::Proof { pick: 1 },
        Step::Overwrite {
            pick: 0,
            payload: 7,
        },
        Step::Checkpoint,
        Step::Reopen,
        Step::Proof { pick: 0 },
    ]);
}

/// Tree growth crosses a map level mid-sequence (fanout 4: ranks 0..=3 are
/// height-1, rank 4 forces height 2, rank 16 forces height 3) — growth
/// must drop the partition's memo wholesale.
#[test]
fn regression_growth_across_levels() {
    let mut steps = Vec::new();
    for i in 0..20 {
        steps.push(Step::Write { payload: i });
        steps.push(Step::Proof { pick: 0 });
    }
    run_steps(steps);
}
