//! Read-proof properties at the chunk-store level: every proof verifies
//! against the snapshot root (dirty tree or not), proofs bind id and body,
//! and the effective root matches the persisted root right after a
//! checkpoint.

use std::sync::Arc;

use tdb_core::params::CryptoParams;
use tdb_core::proof::{verify_read_proof, ReadProof};
use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend, ValidationMode};
use tdb_core::{ChunkId, PartitionId};
use tdb_crypto::{CipherKind, HashKind, SecretKey};
use tdb_storage::{CounterOverTrusted, MemStore, MemTrustedStore};

fn config() -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 8192,
        validation: ValidationMode::Counter {
            delta_ut: 3,
            delta_tu: 0,
        },
        // Keep every map update buffered so proofs exercise the dirty
        // (effective) tree, not the checkpointed one.
        checkpoint_threshold: 100_000,
        ..ChunkStoreConfig::default()
    }
}

fn store() -> ChunkStore {
    let untrusted = Arc::new(MemStore::new());
    let counter = Arc::new(CounterOverTrusted::new(Arc::new(MemTrustedStore::new(16))));
    ChunkStore::create(
        untrusted,
        TrustedBackend::Counter(counter),
        SecretKey::random(24),
        config(),
    )
    .unwrap()
}

fn setup(store: &ChunkStore, chunks: usize) -> (PartitionId, Vec<ChunkId>) {
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::generate(CipherKind::Des, HashKind::Sha1),
        }])
        .unwrap();
    let mut ids = Vec::new();
    for i in 0..chunks {
        let c = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: format!("chunk body {i}").into_bytes(),
            }])
            .unwrap();
        ids.push(c);
    }
    (p, ids)
}

#[test]
fn every_proof_verifies_against_snapshot_root() {
    let store = store();
    // 20 chunks at fanout 4: tree height ≥ 3, all map levels dirty.
    let (p, ids) = setup(&store, 20);
    let root = store.snapshot_root(p).unwrap();
    for id in &ids {
        let (body, proof) = store.read_with_proof(*id).unwrap();
        assert!(
            verify_read_proof(&proof, &body, &root),
            "proof for {id} failed against the snapshot root"
        );
        assert_eq!(proof.root, root, "proof embeds a different root for {id}");
    }
}

#[test]
fn proofs_survive_encode_decode() {
    let store = store();
    let (p, ids) = setup(&store, 6);
    let root = store.snapshot_root(p).unwrap();
    let (body, proof) = store.read_with_proof(ids[3]).unwrap();
    let wire = proof.encode();
    let back = ReadProof::decode(&wire).unwrap();
    assert_eq!(back, proof);
    assert!(verify_read_proof(&back, &body, &root));
}

#[test]
fn effective_root_matches_persisted_root_after_checkpoint() {
    let store = store();
    let (p, ids) = setup(&store, 9);
    let before = store.snapshot_root(p).unwrap();
    store.checkpoint().unwrap();
    let after = store.snapshot_root(p).unwrap();
    // A checkpoint relocates map chunks, so the digest changes…
    assert_ne!(before, after);
    // …but proofs extracted now verify against the new root, and the
    // clean tree needs no effective fix-ups.
    for id in &ids {
        let (body, proof) = store.read_with_proof(*id).unwrap();
        assert!(verify_read_proof(&proof, &body, &after));
    }
}

#[test]
fn proof_does_not_transfer_to_other_ids_or_bodies() {
    let store = store();
    let (p, ids) = setup(&store, 8);
    let root = store.snapshot_root(p).unwrap();
    let (body_a, proof_a) = store.read_with_proof(ids[0]).unwrap();
    let (body_b, mut proof_b) = store.read_with_proof(ids[1]).unwrap();
    // The right pairs verify.
    assert!(verify_read_proof(&proof_a, &body_a, &root));
    assert!(verify_read_proof(&proof_b, &body_b, &root));
    // A proof cannot vouch for another chunk's body.
    assert!(!verify_read_proof(&proof_a, &body_b, &root));
    // Re-labeling a proof with a different id fails the slot binding.
    proof_b.id = ids[0];
    assert!(!verify_read_proof(&proof_b, &body_b, &root));
    // A stale root rejects current proofs.
    store
        .commit(vec![CommitOp::WriteChunk {
            id: ids[0],
            bytes: b"updated".to_vec(),
        }])
        .unwrap();
    let new_root = store.snapshot_root(p).unwrap();
    assert_ne!(root, new_root);
    let (new_body, new_proof) = store.read_with_proof(ids[0]).unwrap();
    assert!(verify_read_proof(&new_proof, &new_body, &new_root));
    assert!(!verify_read_proof(&new_proof, &new_body, &root));
}

#[test]
fn single_chunk_tree_has_one_level() {
    let store = store();
    let (p, ids) = setup(&store, 1);
    let root = store.snapshot_root(p).unwrap();
    let (body, proof) = store.read_with_proof(ids[0]).unwrap();
    // Leaders keep tree height ≥ 1, so even one chunk sits under a root
    // map chunk and the digest is the root map body's hash.
    assert_eq!(proof.levels.len(), 1);
    assert_eq!(proof.hash.hash(&proof.levels[0].body), root);
    assert!(verify_read_proof(&proof, &body, &root));
}

#[test]
fn null_hash_partitions_refuse_proofs() {
    let store = store();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::generate(CipherKind::Null, HashKind::Null),
        }])
        .unwrap();
    let c = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"unprotected".to_vec(),
        }])
        .unwrap();
    let root = store.snapshot_root(p).unwrap();
    let (body, proof) = store.read_with_proof(c).unwrap();
    // Nothing to prove without a collision-resistant hash.
    assert!(!verify_read_proof(&proof, &body, &root));
}
