//! Integration tests for the backup store (§6): snapshot-consistent
//! backups, incremental chains, restore constraints, and validation.

use std::sync::Arc;

use tdb_core::backup::{ApproveAll, BackupDescriptor, BackupSpec, BackupStore, RestorePolicy};
use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend, ValidationMode};
use tdb_core::{ChunkId, CoreError, CryptoParams, PartitionId};
use tdb_crypto::{CipherKind, HashKind, SecretKey};
use tdb_storage::{CounterOverTrusted, MemArchive, MemStore, MemTrustedStore, SharedUntrusted};

fn new_store() -> Arc<ChunkStore> {
    let config = ChunkStoreConfig {
        fanout: 4,
        segment_size: 8192,
        validation: ValidationMode::Counter {
            delta_ut: 5,
            delta_tu: 0,
        },
        ..ChunkStoreConfig::default()
    };
    Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()) as SharedUntrusted,
            TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
                MemTrustedStore::new(64),
            )))),
            SecretKey::random(24),
            config,
        )
        .unwrap(),
    )
}

fn make_partition(store: &ChunkStore) -> PartitionId {
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::generate(CipherKind::Des, HashKind::Sha1),
        }])
        .unwrap();
    p
}

fn write_one(store: &ChunkStore, p: PartitionId, data: &[u8]) -> ChunkId {
    let c = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: data.to_vec(),
        }])
        .unwrap();
    c
}

#[test]
fn full_backup_restore_roundtrip() {
    let store = new_store();
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());

    let p = make_partition(&store);
    let ids: Vec<ChunkId> = (0..10)
        .map(|i| write_one(&store, p, format!("record {i}").as_bytes()))
        .collect();

    let info = backups
        .backup(
            &[BackupSpec {
                source: p,
                base: None,
            }],
            "full-1",
        )
        .unwrap();
    assert_eq!(info.names, vec!["full-1.0"]);

    // Wreck the live partition, then restore.
    for c in &ids {
        store
            .commit(vec![CommitOp::WriteChunk {
                id: *c,
                bytes: b"corrupted by app bug".to_vec(),
            }])
            .unwrap();
    }
    let report = backups.restore(&["full-1.0"], &ApproveAll).unwrap();
    assert_eq!(report.restored, vec![p]);
    assert_eq!(report.chunks_written, 10);
    for (i, c) in ids.iter().enumerate() {
        assert_eq!(store.read(*c).unwrap(), format!("record {i}").as_bytes());
    }
}

#[test]
fn incremental_chain_roundtrip() {
    let store = new_store();
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());

    let p = make_partition(&store);
    let a = write_one(&store, p, b"alpha v1");
    let b = write_one(&store, p, b"beta v1");

    // Full backup.
    let full = backups
        .backup(
            &[BackupSpec {
                source: p,
                base: None,
            }],
            "set-full",
        )
        .unwrap();
    let base1 = full.snapshots[0];

    // Mutate: update a, add c, then delete b. Allocating c first keeps its
    // rank distinct from b's (a later allocation would reuse b's freed id,
    // which is legitimate but would muddy this test's assertions).
    store
        .commit(vec![CommitOp::WriteChunk {
            id: a,
            bytes: b"alpha v2".to_vec(),
        }])
        .unwrap();
    let c = write_one(&store, p, b"gamma v1");
    store
        .commit(vec![CommitOp::DeallocChunk { id: b }])
        .unwrap();

    // Incremental against the full backup's snapshot.
    let incr1 = backups
        .backup(
            &[BackupSpec {
                source: p,
                base: Some(base1),
            }],
            "set-incr1",
        )
        .unwrap();
    let base2 = incr1.snapshots[0];

    // More mutations and a second incremental.
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"gamma v2".to_vec(),
        }])
        .unwrap();
    backups
        .backup(
            &[BackupSpec {
                source: p,
                base: Some(base2),
            }],
            "set-incr2",
        )
        .unwrap();

    // Destroy the live partition entirely.
    store
        .commit(vec![CommitOp::DeallocPartition { id: p }])
        .unwrap();
    assert!(!store.partition_exists(p));

    // Restore the whole chain (order of names should not matter).
    let report = backups
        .restore(&["set-incr2.0", "set-full.0", "set-incr1.0"], &ApproveAll)
        .unwrap();
    assert_eq!(report.restored, vec![p]);
    assert_eq!(store.read(a).unwrap(), b"alpha v2");
    assert!(store.read(b).is_err(), "b was deallocated before incr1");
    assert_eq!(store.read(c).unwrap(), b"gamma v2");
}

#[test]
fn missing_link_rejected() {
    let store = new_store();
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());

    let p = make_partition(&store);
    let a = write_one(&store, p, b"v1");

    let full = backups
        .backup(
            &[BackupSpec {
                source: p,
                base: None,
            }],
            "b-full",
        )
        .unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: a,
            bytes: b"v2".to_vec(),
        }])
        .unwrap();
    let incr1 = backups
        .backup(
            &[BackupSpec {
                source: p,
                base: Some(full.snapshots[0]),
            }],
            "b-incr1",
        )
        .unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: a,
            bytes: b"v3".to_vec(),
        }])
        .unwrap();
    backups
        .backup(
            &[BackupSpec {
                source: p,
                base: Some(incr1.snapshots[0]),
            }],
            "b-incr2",
        )
        .unwrap();

    // Restoring full + incr2 without incr1 violates "no missing links".
    let err = backups
        .restore(&["b-full.0", "b-incr2.0"], &ApproveAll)
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, CoreError::RestoreConstraint(_)),
        "got {err:?}"
    );

    // Incremental alone (no full) is also rejected.
    let err = backups
        .restore(&["b-incr1.0"], &ApproveAll)
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, CoreError::RestoreConstraint(_)));
}

#[test]
fn backup_set_completeness_enforced() {
    let store = new_store();
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());

    let p = make_partition(&store);
    let q = make_partition(&store);
    write_one(&store, p, b"p data");
    write_one(&store, q, b"q data");

    backups
        .backup(
            &[
                BackupSpec {
                    source: p,
                    base: None,
                },
                BackupSpec {
                    source: q,
                    base: None,
                },
            ],
            "pair",
        )
        .unwrap();

    // Restoring only one member of the two-partition set is rejected
    // (§6.3: "the remaining partition backups in the same backup set must
    // also be restored").
    let err = backups
        .restore(&["pair.0"], &ApproveAll)
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, CoreError::RestoreConstraint(_)),
        "got {err:?}"
    );

    // Both together restore fine.
    backups.restore(&["pair.0", "pair.1"], &ApproveAll).unwrap();
}

#[test]
fn multi_partition_snapshot_is_consistent() {
    let store = new_store();
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());

    let p = make_partition(&store);
    let q = make_partition(&store);
    let cp = write_one(&store, p, b"p v1");
    let cq = write_one(&store, q, b"q v1");

    backups
        .backup(
            &[
                BackupSpec {
                    source: p,
                    base: None,
                },
                BackupSpec {
                    source: q,
                    base: None,
                },
            ],
            "consistent",
        )
        .unwrap();

    store
        .commit(vec![
            CommitOp::WriteChunk {
                id: cp,
                bytes: b"p v2".to_vec(),
            },
            CommitOp::WriteChunk {
                id: cq,
                bytes: b"q v2".to_vec(),
            },
        ])
        .unwrap();

    backups
        .restore(&["consistent.0", "consistent.1"], &ApproveAll)
        .unwrap();
    assert_eq!(store.read(cp).unwrap(), b"p v1");
    assert_eq!(store.read(cq).unwrap(), b"q v1");
}

#[test]
fn tampered_backup_rejected() {
    let store = new_store();
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());

    let p = make_partition(&store);
    write_one(&store, p, b"pristine");
    backups
        .backup(
            &[BackupSpec {
                source: p,
                base: None,
            }],
            "t",
        )
        .unwrap();

    let size = archive.size_of("t.0").unwrap();
    // Flip a byte somewhere in the middle (chunk data region).
    assert!(archive.tamper("t.0", size / 2, 0x80));
    let err = backups
        .restore(&["t.0"], &ApproveAll)
        .map(|_| ())
        .unwrap_err();
    assert!(err.is_tamper(), "got {err:?}");
}

#[test]
fn truncated_backup_rejected_by_checksum() {
    let store = new_store();
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());

    let p = make_partition(&store);
    write_one(&store, p, b"whole");
    backups
        .backup(
            &[BackupSpec {
                source: p,
                base: None,
            }],
            "short",
        )
        .unwrap();

    let size = archive.size_of("short.0").unwrap();
    archive.truncate("short.0", size - 10);
    let err = backups
        .restore(&["short.0"], &ApproveAll)
        .map(|_| ())
        .unwrap_err();
    assert!(err.is_tamper(), "got {err:?}");
}

#[test]
fn restore_policy_can_deny() {
    struct DenyOld;
    impl RestorePolicy for DenyOld {
        fn approve(&self, descs: &[BackupDescriptor]) -> Result<(), String> {
            // A trusted program "may deny frequent restoring or restoring
            // of old backups" (§6.3).
            if descs.iter().any(|d| d.created_unix < u64::MAX) {
                Err("backup too old per policy".into())
            } else {
                Ok(())
            }
        }
    }

    let store = new_store();
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());
    let p = make_partition(&store);
    let c = write_one(&store, p, b"current");
    backups
        .backup(
            &[BackupSpec {
                source: p,
                base: None,
            }],
            "denied",
        )
        .unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"newer".to_vec(),
        }])
        .unwrap();

    let err = backups
        .restore(&["denied.0"], &DenyOld)
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, CoreError::RestoreDenied(_)));
    // Nothing was rolled back.
    assert_eq!(store.read(c).unwrap(), b"newer");
}

#[test]
fn incremental_backup_is_smaller_than_full() {
    let store = new_store();
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());

    let p = make_partition(&store);
    let mut ids = Vec::new();
    for i in 0..50u32 {
        ids.push(write_one(&store, p, &vec![i as u8; 400]));
    }
    let full = backups
        .backup(
            &[BackupSpec {
                source: p,
                base: None,
            }],
            "size-full",
        )
        .unwrap();
    // Touch just one chunk.
    store
        .commit(vec![CommitOp::WriteChunk {
            id: ids[0],
            bytes: vec![0xFF; 400],
        }])
        .unwrap();
    backups
        .backup(
            &[BackupSpec {
                source: p,
                base: Some(full.snapshots[0]),
            }],
            "size-incr",
        )
        .unwrap();

    let full_size = archive.size_of("size-full.0").unwrap();
    let incr_size = archive.size_of("size-incr.0").unwrap();
    assert!(
        incr_size * 10 < full_size,
        "incremental ({incr_size} B) should be far smaller than full ({full_size} B)"
    );
}

#[test]
fn snapshots_reported_for_reuse_as_bases() {
    let store = new_store();
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());
    let p = make_partition(&store);
    write_one(&store, p, b"x");
    let info = backups
        .backup(
            &[BackupSpec {
                source: p,
                base: None,
            }],
            "snaps",
        )
        .unwrap();
    assert_eq!(info.snapshots.len(), 1);
    // The snapshot exists and holds the backed-up state.
    assert!(store.partition_exists(info.snapshots[0]));
    assert_eq!(
        store.read(ChunkId::data(info.snapshots[0], 0)).unwrap(),
        b"x"
    );
    // Old snapshots can be deallocated when no longer needed as bases.
    store
        .commit(vec![CommitOp::DeallocPartition {
            id: info.snapshots[0],
        }])
        .unwrap();
}
