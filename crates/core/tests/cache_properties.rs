//! Property tests for [`MapCache`] (ISSUE 2): eviction order, dirty-bit
//! preservation under `clone_dirty`/`purge_partition`, and capacity
//! invariants. The cache's contract (doc comment in `cache.rs`) is that a
//! dirty map chunk is pinned until checkpointed — a map chunk with no
//! persistent version *must* be in the cache — and that clean entries
//! evict in least-recently-used order.

use proptest::prelude::*;

use tdb_core::cache::MapCache;
use tdb_core::descriptor::{Descriptor, MapChunk};
use tdb_core::{PartitionId, Position};
use tdb_crypto::HashValue;

const FANOUT: usize = 4;

fn p(n: u32) -> PartitionId {
    PartitionId(n)
}

fn chunk(marker: u8) -> MapChunk {
    let mut c = MapChunk::empty(FANOUT);
    c.slots[0] = Descriptor::written(u64::from(marker), 1, 1, HashValue::new(&[marker; 20]));
    c
}

/// A key universe small enough to force collisions and evictions.
fn key_strategy() -> impl Strategy<Value = (PartitionId, Position)> {
    (1u32..4, 1u8..3, 0u64..12)
        .prop_map(|(part, height, rank)| (p(part), Position::map(height, rank)))
}

#[derive(Debug, Clone)]
enum CacheOp {
    Insert { dirty: bool, marker: u8 },
    Get,
    MutDirty,
    MarkClean,
}

fn op_strategy() -> impl Strategy<Value = ((PartitionId, Position), CacheOp)> {
    let op = prop_oneof![
        4 => (any::<bool>(), any::<u8>())
            .prop_map(|(dirty, marker)| CacheOp::Insert { dirty, marker }),
        3 => Just(CacheOp::Get),
        2 => Just(CacheOp::MutDirty),
        1 => Just(CacheOp::MarkClean),
    ];
    (key_strategy(), op)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Capacity invariant: the cache only exceeds its capacity when the
    /// overflow is pinned dirty entries — whenever `len() > capacity`,
    /// every entry is dirty (the eviction loop ran out of clean victims;
    /// the just-inserted entry is protected only during its own insert).
    /// And dirty entries are never evicted: any key whose last operation
    /// left it dirty is still present.
    #[test]
    fn capacity_and_dirty_pinning(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let capacity = 8; // MapCache::new clamps lower values up to 8.
        let mut cache = MapCache::new(capacity);
        // The model only tracks what MUST be present: dirty keys.
        let mut dirty_model: std::collections::HashSet<(PartitionId, Position)> =
            std::collections::HashSet::new();
        for ((part, pos), op) in ops {
            let mut inserted = false;
            match op {
                CacheOp::Insert { dirty, marker } => {
                    cache.insert(part, pos, chunk(marker), dirty);
                    inserted = true;
                    if dirty {
                        dirty_model.insert((part, pos));
                    } else {
                        dirty_model.remove(&(part, pos));
                    }
                }
                CacheOp::Get => {
                    let _ = cache.get(part, pos);
                }
                CacheOp::MutDirty => {
                    if cache.get_mut_dirty(part, pos).is_some() {
                        dirty_model.insert((part, pos));
                    }
                }
                CacheOp::MarkClean => {
                    cache.mark_clean(part, pos);
                    dirty_model.remove(&(part, pos));
                }
            }
            // Dirty entries are pinned.
            for (dp, dpos) in &dirty_model {
                prop_assert!(
                    cache.is_dirty(*dp, *dpos),
                    "dirty entry {dp:?}/{dpos:?} missing or clean"
                );
            }
            prop_assert_eq!(cache.dirty_count(), dirty_model.len());
            // Over capacity only under dirty pressure. Eviction runs on
            // insert, so the bound holds right after one (a later
            // mark_clean can legitimately unpin entries without shrinking
            // the cache until the next insert).
            if inserted && cache.len() > capacity {
                prop_assert!(
                    cache.dirty_count() >= cache.len() - 1,
                    "len {} > capacity {} with {} clean entries",
                    cache.len(),
                    capacity,
                    cache.len() - cache.dirty_count()
                );
            }
        }
    }

    /// Eviction order: seed the cache to capacity with clean entries,
    /// touch a random subset (defining a known LRU order), then overflow
    /// with fresh clean inserts. The evicted keys must be exactly the
    /// least recently used ones; recently touched keys survive.
    #[test]
    fn clean_eviction_is_lru(
        touches in proptest::collection::vec(0u64..8, 0..16),
        overflow in 1u64..6,
    ) {
        let capacity = 8;
        let mut cache = MapCache::new(capacity);
        for rank in 0..capacity as u64 {
            cache.insert(p(1), Position::map(1, rank), chunk(rank as u8), false);
        }
        // Recency order: insertion order 0..8, then each touch moves the
        // key to the back (most recent).
        let mut order: Vec<u64> = (0..capacity as u64).collect();
        for t in touches {
            assert!(cache.get(p(1), Position::map(1, t)).is_some());
            order.retain(|r| *r != t);
            order.push(t);
        }
        for i in 0..overflow {
            cache.insert(p(2), Position::map(1, i), chunk(i as u8), false);
        }
        prop_assert!(cache.len() <= capacity);
        // The `overflow` oldest keys are gone, the rest survive.
        let (evicted, kept) = order.split_at(overflow as usize);
        for r in evicted {
            prop_assert!(
                !cache.contains(p(1), Position::map(1, *r)),
                "LRU key rank {r} should have been evicted"
            );
        }
        for r in kept {
            prop_assert!(
                cache.contains(p(1), Position::map(1, *r)),
                "recent key rank {r} was wrongly evicted"
            );
        }
    }

    /// `clone_dirty` copies exactly the dirty subset of `src` into `dst`,
    /// cloned entries are dirty and independent, and `src`'s dirty bits
    /// are untouched.
    #[test]
    fn clone_dirty_preserves_dirty_bits(
        entries in proptest::collection::vec(
            ((1u8..3, 0u64..8), any::<bool>(), any::<u8>()), 1..16),
    ) {
        let mut cache = MapCache::new(64);
        let mut expected_dirty: std::collections::HashMap<Position, u8> =
            std::collections::HashMap::new();
        let mut expected_clean: std::collections::HashSet<Position> =
            std::collections::HashSet::new();
        for ((height, rank), dirty, marker) in entries {
            let pos = Position::map(height, rank);
            cache.insert(p(1), pos, chunk(marker), dirty);
            if dirty {
                expected_dirty.insert(pos, marker);
                expected_clean.remove(&pos);
            } else {
                expected_dirty.remove(&pos);
                expected_clean.insert(pos);
            }
        }
        cache.clone_dirty(p(1), p(2));
        for (pos, marker) in &expected_dirty {
            prop_assert!(cache.is_dirty(p(2), *pos), "dirty {pos:?} not cloned dirty");
            prop_assert_eq!(
                cache.get(p(2), *pos).unwrap().slots[0].location,
                u64::from(*marker)
            );
            // Source keeps its dirty bit.
            prop_assert!(cache.is_dirty(p(1), *pos));
        }
        for pos in &expected_clean {
            prop_assert!(
                !cache.contains(p(2), *pos),
                "clean {pos:?} wrongly cloned"
            );
            prop_assert!(!cache.is_dirty(p(1), *pos), "clean source dirtied");
        }
        // Independence: mutating a clone never touches the source.
        if let Some((pos, marker)) = expected_dirty.iter().next() {
            cache.get_mut_dirty(p(2), *pos).unwrap().slots[0] = Descriptor::unallocated();
            prop_assert_eq!(
                cache.get(p(1), *pos).unwrap().slots[0].location,
                u64::from(*marker),
                "clone mutation leaked into source"
            );
        }
    }

    /// `purge_partition` removes exactly the purged partition's entries,
    /// dirty or not, and leaves other partitions' entries and dirty bits
    /// alone.
    #[test]
    fn purge_partition_is_exact(
        entries in proptest::collection::vec(
            ((1u32..4, 0u64..8), any::<bool>()), 1..24),
        victim in 1u32..4,
    ) {
        let mut cache = MapCache::new(64);
        let mut survivors: std::collections::HashMap<(PartitionId, Position), bool> =
            std::collections::HashMap::new();
        for ((part, rank), dirty) in entries {
            let pos = Position::map(1, rank);
            cache.insert(p(part), pos, chunk(rank as u8), dirty);
            if part == victim {
                survivors.remove(&(p(part), pos));
            } else {
                survivors.insert((p(part), pos), dirty);
            }
        }
        cache.purge_partition(p(victim));
        for rank in 0..8 {
            prop_assert!(!cache.contains(p(victim), Position::map(1, rank)));
        }
        for ((part, pos), dirty) in &survivors {
            prop_assert!(cache.contains(*part, *pos), "survivor {part:?}/{pos:?} purged");
            prop_assert_eq!(cache.is_dirty(*part, *pos), *dirty, "survivor dirty bit changed");
        }
        prop_assert_eq!(
            cache.dirty_count(),
            survivors.values().filter(|d| **d).count()
        );
    }
}
