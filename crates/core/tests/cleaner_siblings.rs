//! Regression test: the cleaner must track versions shared by *sibling*
//! snapshots across repeated cleanings.
//!
//! The original bug: relocating a version current in snapshots {P2, P3}
//! rewrote its header as P3 (= `current_in[0]`); the next cleaning walked
//! the copy closure from P3, whose own `copies` list is empty, missed P2,
//! and freed the segment while P2 still pointed into it. Fixed by
//! preserving the original header id on relocation and walking `source`
//! links as well as `copies` in the currency check.

use std::collections::HashMap;
use std::sync::Arc;

use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend, ValidationMode};
use tdb_core::{ChunkId, CryptoParams, PartitionId};
use tdb_crypto::SecretKey;
use tdb_storage::{CounterOverTrusted, MemStore, MemTrustedStore, SharedUntrusted};

fn config() -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 8192,
        checkpoint_threshold: 10,
        validation: ValidationMode::Counter {
            delta_ut: 3,
            delta_tu: 0,
        },
        ..ChunkStoreConfig::default()
    }
}

#[test]
fn cleaner_preserves_sibling_snapshot_versions() {
    let secret = SecretKey::random(24);
    let register = Arc::new(MemTrustedStore::new(64));
    let untrusted = Arc::new(MemStore::new());
    let backend = || {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&register) as Arc<dyn tdb_storage::TrustedStore>
        )))
    };
    let store = ChunkStore::create(
        Arc::clone(&untrusted) as SharedUntrusted,
        backend(),
        secret.clone(),
        config(),
    )
    .unwrap();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();

    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut live: Vec<ChunkId> = Vec::new();
    let mut snapshots: Vec<(PartitionId, HashMap<u64, Vec<u8>>)> = Vec::new();

    let script: Vec<(&str, u8, u8, u16)> = vec![
        ("w", 0, 0, 976),
        ("w", 7, 0, 464),
        ("ck", 0, 0, 0),
        ("w", 1, 0, 256),
        ("w", 31, 0, 72),
        ("w", 45, 0, 628),
        ("w", 132, 103, 1146),
        ("w", 41, 5, 583),
        ("snap", 0, 0, 0),
        ("d", 201, 0, 0),
        ("d", 1, 0, 0),
        ("w", 234, 250, 951),
        ("d", 149, 0, 0),
        ("snap", 0, 0, 0),
        ("w", 209, 18, 324),
        ("w", 207, 10, 1039),
        ("w", 118, 195, 1196),
        ("w", 25, 18, 466),
        ("w", 222, 93, 166),
        ("ck", 0, 0, 0),
        ("cl", 0, 0, 0),
        ("w", 6, 218, 1150),
        ("w", 192, 136, 783),
        ("w", 252, 141, 87),
        ("d", 227, 0, 0),
        ("snap", 0, 0, 0),
        ("d", 135, 0, 0),
        ("w", 44, 196, 37),
        ("w", 80, 255, 272),
        ("w", 80, 102, 693),
        ("ck", 0, 0, 0),
        ("cl", 0, 0, 0),
        ("snap", 0, 0, 0),
        ("w", 90, 208, 349),
        ("ck", 0, 0, 0),
    ];

    for (step, (op, slot, fill, len)) in script.into_iter().enumerate() {
        match op {
            "w" => {
                let id = if !live.is_empty() && !(slot as usize).is_multiple_of(3) {
                    live[slot as usize % live.len()]
                } else {
                    let id = store.allocate_chunk(p).unwrap();
                    live.push(id);
                    id
                };
                let data = vec![fill; len as usize];
                store
                    .commit(vec![CommitOp::WriteChunk {
                        id,
                        bytes: data.clone(),
                    }])
                    .unwrap();
                model.insert(id.pos.rank, data);
            }
            "d" => {
                if live.is_empty() {
                    continue;
                }
                let i = slot as usize % live.len();
                let id = live.swap_remove(i);
                store.commit(vec![CommitOp::DeallocChunk { id }]).unwrap();
                model.remove(&id.pos.rank);
            }
            "ck" => store.checkpoint().unwrap(),
            "cl" => {
                let n = store.clean(3).unwrap();
                let _ = n;
            }
            "snap" => {
                let snap = store.allocate_partition().unwrap();
                store
                    .commit(vec![CommitOp::CopyPartition { dst: snap, src: p }])
                    .unwrap();
                snapshots.push((snap, model.clone()));
            }
            _ => unreachable!(),
        }
        // Check all snapshots after every step to find the first breakage.
        for (snap, frozen) in &snapshots {
            for (rank, data) in frozen {
                let got = store.read(ChunkId::data(*snap, *rank));
                match got {
                    Ok(g) if &g == data => {}
                    other => panic!(
                        "step {step} ({op} slot {slot}): snapshot {snap} rank {rank}: {:?}",
                        other.map(|v| v.len())
                    ),
                }
            }
        }
    }
}
