//! E3–E6 (§9.2.2): chunk store operation benches — allocate, commit
//! (chunk-count × size sweep), read (warm/cold descriptors), partition
//! create/copy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use tdb::{ChunkId, CommitOp, CryptoParams};
use tdb_bench::fixtures::{bytes, chunk_store_with_partition, paper_config, IoMode, Platform};

fn bench_allocate(c: &mut Criterion) {
    let platform = Platform::new(IoMode::Raw);
    let (store, p) = chunk_store_with_partition(&platform, paper_config());
    c.bench_function("allocate_chunk_id", |b| {
        b.iter(|| store.allocate_chunk(p).unwrap())
    });
}

fn bench_commit(c: &mut Criterion) {
    let platform = Platform::new(IoMode::Raw);
    let mut config = paper_config();
    config.checkpoint_threshold = usize::MAX;
    config.segment_size = 512 * 1024;
    let (store, p) = chunk_store_with_partition(&platform, config);
    let ids: Vec<ChunkId> = (0..128).map(|_| store.allocate_chunk(p).unwrap()).collect();
    for &id in &ids {
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: bytes(0, 256),
            }])
            .unwrap();
    }

    let mut group = c.benchmark_group("write_chunks_commit");
    for &(n_chunks, size) in &[
        (1usize, 512usize),
        (8, 512),
        (64, 512),
        (8, 128),
        (8, 4096),
        (8, 16384),
    ] {
        group.throughput(Throughput::Bytes((n_chunks * size) as u64));
        group.bench_function(
            BenchmarkId::from_parameter(format!("{n_chunks}x{size}B")),
            |b| {
                b.iter(|| {
                    let ops: Vec<CommitOp> = ids
                        .iter()
                        .take(n_chunks)
                        .map(|&id| CommitOp::WriteChunk {
                            id,
                            bytes: bytes(7, size),
                        })
                        .collect();
                    store.commit(ops).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_read(c: &mut Criterion) {
    let platform = Platform::new(IoMode::Raw);
    let (store, p) = chunk_store_with_partition(&platform, paper_config());
    let mut group = c.benchmark_group("read_chunk_warm");
    for &size in &[128usize, 2048, 16384] {
        let id = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: bytes(1, size),
            }])
            .unwrap();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::from_parameter(format!("{size}B")), |b| {
            b.iter(|| store.read(id).unwrap())
        });
    }
    group.finish();
}

fn bench_partition_ops(c: &mut Criterion) {
    let platform = Platform::new(IoMode::Raw);
    let (store, _) = chunk_store_with_partition(&platform, paper_config());

    c.bench_function("create_drop_partition", |b| {
        b.iter(|| {
            let q = store.allocate_partition().unwrap();
            store
                .commit(vec![CommitOp::CreatePartition {
                    id: q,
                    params: CryptoParams::paper_default(),
                }])
                .unwrap();
            store
                .commit(vec![CommitOp::DeallocPartition { id: q }])
                .unwrap();
        })
    });

    // Copy cost must not scale with partition size (copy-on-write, §5.3).
    let mut group = c.benchmark_group("copy_partition");
    for &n_chunks in &[100u64, 2000] {
        let src = store.allocate_partition().unwrap();
        store
            .commit(vec![CommitOp::CreatePartition {
                id: src,
                params: CryptoParams::paper_default(),
            }])
            .unwrap();
        for i in 0..n_chunks {
            let id = store.allocate_chunk(src).unwrap();
            store
                .commit(vec![CommitOp::WriteChunk {
                    id,
                    bytes: bytes(i, 128),
                }])
                .unwrap();
        }
        store.checkpoint().unwrap();
        group.bench_function(
            BenchmarkId::from_parameter(format!("{n_chunks}chunks")),
            |b| {
                b.iter(|| {
                    let snap = store.allocate_partition().unwrap();
                    store
                        .commit(vec![CommitOp::CopyPartition { dst: snap, src }])
                        .unwrap();
                    store
                        .commit(vec![CommitOp::DeallocPartition { id: snap }])
                        .unwrap();
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_allocate, bench_commit, bench_read, bench_partition_ops
}
criterion_main!(benches);
