//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Checkpoint deferral** (§4.7): eager hash propagation (checkpoint
//!    after every commit) vs the paper's deferred propagation.
//! 2. **Counter lag Δut** (§4.8.2.2): trusted-store flush frequency.
//! 3. **Cleaner variants** (§4.9.5): revalidating vs byte-preserving.
//! 4. **Validation protocol**: counter-based vs direct hash.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tdb::{ChunkStore, ChunkStoreConfig, CommitOp, ValidationMode};
use tdb_bench::fixtures::{bytes, chunk_store_with_partition, paper_config, IoMode, Platform};

fn run_commits(store: &ChunkStore, p: tdb::PartitionId, n: u64, checkpoint_each: bool) {
    for i in 0..n {
        let id = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: bytes(i, 512),
            }])
            .unwrap();
        if checkpoint_each {
            store.checkpoint().unwrap();
        }
    }
}

fn bench_checkpoint_deferral(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_checkpoint_deferral");
    group.sample_size(10);
    for (label, eager) in [("deferred", false), ("eager_every_commit", true)] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || {
                    let platform = Platform::new(IoMode::Raw);
                    chunk_store_with_partition(&platform, paper_config())
                },
                |(store, p)| run_commits(&store, p, 50, eager),
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_counter_lag(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_counter_lag");
    group.sample_size(10);
    for delta_ut in [0u64, 1, 5, 20] {
        group.bench_function(BenchmarkId::from_parameter(format!("dut{delta_ut}")), |b| {
            b.iter_batched(
                || {
                    let platform = Platform::new(IoMode::Raw);
                    let config = ChunkStoreConfig {
                        validation: ValidationMode::Counter {
                            delta_ut,
                            delta_tu: 0,
                        },
                        ..paper_config()
                    };
                    chunk_store_with_partition(&platform, config)
                },
                |(store, p)| run_commits(&store, p, 50, false),
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_validation_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_validation_protocol");
    group.sample_size(10);
    group.bench_function("counter_dut5", |b| {
        b.iter_batched(
            || {
                let platform = Platform::new(IoMode::Raw);
                chunk_store_with_partition(&platform, paper_config())
            },
            |(store, p)| run_commits(&store, p, 50, false),
            criterion::BatchSize::PerIteration,
        )
    });
    group.bench_function("direct_hash", |b| {
        b.iter_batched(
            || {
                let platform = Platform::new(IoMode::Raw);
                let config = ChunkStoreConfig {
                    validation: ValidationMode::DirectHash,
                    ..paper_config()
                };
                let store = std::sync::Arc::new(
                    ChunkStore::create(
                        std::sync::Arc::clone(&platform.untrusted),
                        platform.register_backend(),
                        platform.secret.clone(),
                        config,
                    )
                    .unwrap(),
                );
                let p = store.allocate_partition().unwrap();
                store
                    .commit(vec![CommitOp::CreatePartition {
                        id: p,
                        params: tdb::CryptoParams::paper_default(),
                    }])
                    .unwrap();
                (store, p)
            },
            |(store, p)| run_commits(&store, p, 50, false),
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_cleaner_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cleaner");
    group.sample_size(10);
    for (label, revalidates) in [("revalidating", true), ("byte_preserving", false)] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || {
                    let platform = Platform::new(IoMode::Raw);
                    let config = ChunkStoreConfig {
                        cleaner_revalidates: revalidates,
                        segment_size: 16 * 1024,
                        ..paper_config()
                    };
                    let (store, p) = chunk_store_with_partition(&platform, config);
                    // Churn to create obsolete versions across segments.
                    let ids: Vec<_> = (0..50).map(|_| store.allocate_chunk(p).unwrap()).collect();
                    for round in 0..4u64 {
                        for &id in &ids {
                            store
                                .commit(vec![CommitOp::WriteChunk {
                                    id,
                                    bytes: bytes(round, 512),
                                }])
                                .unwrap();
                        }
                    }
                    store.checkpoint().unwrap();
                    store
                },
                |store| store.clean(8).unwrap(),
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_remote_batching(c: &mut Criterion) {
    // §10 extension: client-side write batching against a remote untrusted
    // store. Virtual round trips are accounted (not slept), and the bench
    // reports the *computational* cost; the round-trip savings themselves
    // are asserted in tests/remote_batching.rs.
    use std::sync::Arc;
    use std::time::Duration;
    use tdb_storage::{BatchingStore, MemStore, RemoteStore, SharedUntrusted, SimClock};

    let mut group = c.benchmark_group("ablation_remote_batching");
    group.sample_size(10);
    for (label, batched) in [("unbatched", false), ("batched", true)] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || {
                    let clock = Arc::new(SimClock::new(false));
                    let remote: SharedUntrusted = Arc::new(RemoteStore::new(
                        Arc::new(MemStore::new()) as SharedUntrusted,
                        Duration::from_micros(50),
                        clock,
                    ));
                    let store: SharedUntrusted = if batched {
                        Arc::new(BatchingStore::new(remote))
                    } else {
                        remote
                    };
                    let platform = Platform::new(IoMode::Raw);
                    let chunks = std::sync::Arc::new(
                        ChunkStore::create(
                            store,
                            platform.counter_backend(),
                            platform.secret.clone(),
                            paper_config(),
                        )
                        .unwrap(),
                    );
                    let p = chunks.allocate_partition().unwrap();
                    chunks
                        .commit(vec![CommitOp::CreatePartition {
                            id: p,
                            params: tdb::CryptoParams::paper_default(),
                        }])
                        .unwrap();
                    (chunks, p)
                },
                |(store, p)| run_commits(&store, p, 30, false),
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_checkpoint_deferral, bench_counter_lag, bench_validation_protocol, bench_cleaner_variants, bench_remote_batching
}
criterion_main!(benches);
