//! Crypto primitive microbenches (ISSUE 8): the monomorphic hash path,
//! multi-block compression throughput, cached-key HMAC, and the tree-hash
//! shape the Merkle pipeline pays per map chunk. These pin the sealing
//! path's primitive costs so regressions show up at the primitive, not
//! buried in an end-to-end number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use tdb_bench::fixtures::bytes;
use tdb_crypto::cbc::Cbc;
use tdb_crypto::hmac::{Hmac, HmacKey};
use tdb_crypto::{CipherKind, HashKind};

fn bench_aes(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes_cbc");
    let buf = bytes(11, 64 * 1024);
    group.throughput(Throughput::Bytes(buf.len() as u64));
    for cipher in [CipherKind::Aes128, CipherKind::Aes256] {
        let key = vec![0x42u8; cipher.key_len()];
        let cbc = Cbc::new(cipher.new_cipher(&key).unwrap());
        let iv = cbc.random_iv();
        group.bench_function(BenchmarkId::new("encrypt", format!("{cipher:?}")), |b| {
            b.iter(|| cbc.encrypt(&iv, &buf).unwrap())
        });
        let ct = cbc.encrypt(&iv, &buf).unwrap();
        group.bench_function(BenchmarkId::new("decrypt", format!("{cipher:?}")), |b| {
            b.iter(|| cbc.decrypt(&iv, &ct).unwrap())
        });
    }
    group.finish();
}

fn bench_sha256(c: &mut Criterion) {
    // Bulk throughput (multi-block compression keeps state in locals) and
    // the small-input shape map-chunk hashing actually pays.
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 2048, 64 * 1024] {
        let buf = bytes(12, size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| HashKind::Sha256.hash(&buf))
        });
    }
    group.finish();

    // Multi-part hashing through the monomorphic inline hasher.
    let parts = [bytes(13, 512), bytes(14, 512), bytes(15, 512)];
    let slices: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
    c.bench_function("sha256_parts_3x512", |b| {
        b.iter(|| HashKind::Sha256.hash_parts(&slices))
    });
}

fn bench_hmac(c: &mut Criterion) {
    let buf = bytes(16, 2048);
    // One-shot: re-derives the ipad/opad midstates per call.
    c.bench_function("hmac_sha256_2k_oneshot", |b| {
        b.iter(|| Hmac::mac(HashKind::Sha256, b"commit-signing-key", &buf))
    });
    // Cached key: the commit path's shape — key absorbed once, MAC per call.
    let key = HmacKey::new(HashKind::Sha256, b"commit-signing-key");
    c.bench_function("hmac_sha256_2k_cached_key", |b| b.iter(|| key.mac(&buf)));
    // Commit-record shape: a handful of tiny parts under a cached key.
    let count = 42u64.to_le_bytes();
    let digest = bytes(17, 20);
    c.bench_function("hmac_sha1_commit_record_cached", |b| {
        let key = HmacKey::new(HashKind::Sha1, b"commit-signing-key");
        b.iter(|| key.mac_parts(&[&count, &digest]))
    });
}

fn bench_tree_hash(c: &mut Criterion) {
    // The Merkle pipeline's per-level unit: hash `fanout` child digests
    // concatenated into one map-chunk-sized body, then the parent link.
    // 64 slots x 37 B (written descriptor with a SHA-1 hash) ~ a fanout-64
    // map chunk body.
    let mut group = c.benchmark_group("tree_hash_level");
    for (hash, slot) in [(HashKind::Sha1, 37usize), (HashKind::Sha256, 49)] {
        let body = bytes(18, 64 * slot);
        group.throughput(Throughput::Bytes(body.len() as u64));
        group.bench_function(BenchmarkId::from_parameter(format!("{hash:?}")), |b| {
            b.iter(|| hash.hash(&body))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_aes,
    bench_sha256,
    bench_hmac,
    bench_tree_hash
);
criterion_main!(benches);
