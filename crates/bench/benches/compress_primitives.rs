//! Compression codec microbenches (ISSUE 9): compress and decompress
//! throughput over the corpora the chunk store actually sees — text-like
//! records, binary structures, and incompressible noise — plus the
//! achieved ratios. These pin the codec's cost so a slow matcher or
//! decoder regression shows up here, not buried in the YCSB suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use tdb_bench::fixtures::bytes;
use tdb_bench::workload::ycsb_record;
use tdb_core::compress::{compress_block, compress_body, decompress_block};

/// The three corpora: (name, 64 KiB body).
fn corpora() -> Vec<(&'static str, Vec<u8>)> {
    let len = 64 * 1024;
    // Text-like: the YCSB record generator's field-structured prose.
    let text = ycsb_record(7, 3, len);
    // Binary: repeating little-endian counters with drifting values, the
    // shape of serialized structs and map encodings.
    let mut binary = Vec::with_capacity(len);
    let mut v = 0x1122_3344_5566_7788u64;
    while binary.len() < len {
        binary.extend_from_slice(&v.to_le_bytes());
        binary.extend_from_slice(&(v >> 5).to_le_bytes());
        v = v.wrapping_add(0x0101);
    }
    binary.truncate(len);
    // Incompressible: xorshift noise — the escape-hatch path.
    let noise = bytes(99, len);
    vec![("text", text), ("binary", binary), ("noise", noise)]
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_block");
    for (name, body) in corpora() {
        group.throughput(Throughput::Bytes(body.len() as u64));
        let stream = compress_block(&body);
        let ratio = body.len() as f64 / stream.len() as f64;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| compress_block(&body))
        });
        println!(
            "  corpus {name}: {} -> {} bytes ({ratio:.2}x)",
            body.len(),
            stream.len()
        );
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress_block");
    for (name, body) in corpora() {
        // Noise produces a literal-heavy stream; still worth timing, the
        // store only decompresses what it stored compressed.
        let stream = compress_block(&body);
        group.throughput(Throughput::Bytes(body.len() as u64));
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| decompress_block(&stream, body.len()).expect("valid stream"))
        });
    }
    group.finish();
}

fn bench_envelope(c: &mut Criterion) {
    // The seal path's actual call: envelope-or-raw decision included, at
    // the record size the YCSB suite commits.
    let record = ycsb_record(3, 1, 1000);
    let noise = bytes(42, 1000);
    c.bench_function("compress_body_1k_text", |b| {
        b.iter(|| compress_body(&record).expect("compressible"))
    });
    c.bench_function("compress_body_1k_noise_escape", |b| {
        b.iter(|| assert!(compress_body(&noise).is_none()))
    });
}

criterion_group!(benches, bench_compress, bench_decompress, bench_envelope);
criterion_main!(benches);
