//! E7 (§9.2.3): backup store benches — full and incremental backup
//! creation over 512-byte chunks.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tdb::{BackupSpec, ChunkId, CommitOp};
use tdb_bench::fixtures::{bytes, chunk_store_with_partition, paper_config, IoMode, Platform};
use tdb_core::backup::BackupStore;
use tdb_storage::MemArchive;

fn bench_backup(c: &mut Criterion) {
    let platform = Platform::new(IoMode::Raw);
    let (store, p) = chunk_store_with_partition(&platform, paper_config());
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());

    // The paper's setup: 512-byte chunks.
    let n = 1000u64;
    for i in 0..n {
        let id = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: bytes(i, 512),
            }])
            .unwrap();
    }
    store.checkpoint().unwrap();

    let mut counter = 0u64;
    c.bench_function("full_backup_1000x512B", |b| {
        b.iter(|| {
            counter += 1;
            let info = backups
                .backup(
                    &[BackupSpec {
                        source: p,
                        base: None,
                    }],
                    &format!("bench-full-{counter}"),
                )
                .unwrap();
            store
                .commit(vec![CommitOp::DeallocPartition {
                    id: info.snapshots[0],
                }])
                .unwrap();
        })
    });

    let base = backups
        .backup(
            &[BackupSpec {
                source: p,
                base: None,
            }],
            "bench-base",
        )
        .unwrap();
    let mut group = c.benchmark_group("incremental_backup_1000x512B");
    group.sample_size(10);
    for &updated in &[1usize, 50] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("{updated}updated")),
            |b| {
                b.iter(|| {
                    for rank in 0..updated as u64 {
                        store
                            .commit(vec![CommitOp::WriteChunk {
                                id: ChunkId::data(p, rank),
                                bytes: bytes(rank ^ counter, 512),
                            }])
                            .unwrap();
                    }
                    counter += 1;
                    let info = backups
                        .backup(
                            &[BackupSpec {
                                source: p,
                                base: Some(base.snapshots[0]),
                            }],
                            &format!("bench-incr-{counter}"),
                        )
                        .unwrap();
                    store
                        .commit(vec![CommitOp::DeallocPartition {
                            id: info.snapshots[0],
                        }])
                        .unwrap();
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_backup
}
criterion_main!(benches);
