//! Seal-path microbenches: the commit pipeline's per-chunk crypto cost.
//!
//! Sealing a chunk is hash + encrypt. Two engine micro-optimizations are
//! pinned here against their naive forms:
//!
//! - **Cached key schedule**: `CryptoParams::runtime()` expands the cipher
//!   key once per partition handle; the naive form re-derives it for every
//!   chunk sealed.
//! - **In-place append encryption**: `encrypt_append` ciphers into one
//!   caller-owned buffer; the naive form allocates an IV vector and a
//!   ciphertext vector per chunk and then copies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use tdb_bench::fixtures::bytes;
use tdb_core::CryptoParams;
use tdb_crypto::{CipherKind, HashKind};

const SIZES: [usize; 3] = [256, 4096, 32 * 1024];

fn bench_seal(c: &mut Criterion) {
    for cipher in [CipherKind::Aes128, CipherKind::TripleDes] {
        let params = CryptoParams::generate(cipher, HashKind::Sha1);

        let mut group = c.benchmark_group(format!("seal_{cipher:?}"));
        for size in SIZES {
            let plain = bytes(7, size);
            group.throughput(Throughput::Bytes(size as u64));

            // The engine's path: key schedule cached in the partition
            // handle, hash + in-place append into a reused buffer.
            let crypto = params.runtime().unwrap();
            let mut out = Vec::with_capacity(crypto.sealed_len(size));
            group.bench_function(BenchmarkId::new("cached_inplace", size), |b| {
                b.iter(|| {
                    out.clear();
                    let h = crypto.hash(&plain);
                    crypto.encrypt_append(&plain, &mut out);
                    (h, out.len())
                })
            });

            // Naive form: rebuild the runtime handle (key schedule) per
            // seal and take the allocating encrypt.
            group.bench_function(BenchmarkId::new("rekeyed_alloc", size), |b| {
                b.iter(|| {
                    let crypto = params.runtime().unwrap();
                    let h = crypto.hash(&plain);
                    let sealed = crypto.encrypt(&plain);
                    (h, sealed.len())
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_seal);
criterion_main!(benches);
