//! E11 (Figure 11): the bind/release workload on TDB and on the
//! layered-crypto XDB baseline.
//!
//! Criterion runs use raw (in-memory) stores, measuring computational cost;
//! the `report` binary's `fig11` experiment adds the 1999-disk latency
//! model to reproduce the paper's wall-clock shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tdb_bench::fixtures::{paper_config, IoMode};
use tdb_bench::workload::{generate_stream, Kind, TdbWorkload, XdbWorkload};

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_raw");
    group.sample_size(10);
    for kind in [Kind::Release, Kind::Bind] {
        group.bench_function(BenchmarkId::new("tdb", format!("{kind:?}")), |b| {
            b.iter_batched(
                || {
                    (
                        TdbWorkload::setup(IoMode::Raw, 200, paper_config()),
                        generate_stream(kind, 200, 1),
                    )
                },
                |(mut w, stream)| w.run(&stream),
                criterion::BatchSize::PerIteration,
            )
        });
        group.bench_function(BenchmarkId::new("xdb", format!("{kind:?}")), |b| {
            b.iter_batched(
                || {
                    (
                        XdbWorkload::setup(IoMode::Raw, 200),
                        generate_stream(kind, 200, 1),
                    )
                },
                |(mut w, stream)| w.run(&stream),
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_workload
}
criterion_main!(benches);
