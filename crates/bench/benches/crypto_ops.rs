//! E1 (§9.2.1): cipher and hash bandwidth benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use tdb_bench::fixtures::bytes;
use tdb_crypto::cbc::Cbc;
use tdb_crypto::hmac::Hmac;
use tdb_crypto::{CipherKind, HashKind};

fn bench_ciphers(c: &mut Criterion) {
    let mut group = c.benchmark_group("cipher_cbc_encrypt");
    let buf = bytes(1, 64 * 1024);
    group.throughput(Throughput::Bytes(buf.len() as u64));
    for cipher in [
        CipherKind::TripleDes,
        CipherKind::Des,
        CipherKind::Aes128,
        CipherKind::Aes256,
    ] {
        let key = vec![0x42u8; cipher.key_len()];
        let cbc = Cbc::new(cipher.new_cipher(&key).unwrap());
        let iv = cbc.random_iv();
        group.bench_function(BenchmarkId::from_parameter(format!("{cipher:?}")), |b| {
            b.iter(|| cbc.encrypt(&iv, &buf).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cipher_cbc_decrypt");
    group.throughput(Throughput::Bytes(buf.len() as u64));
    for cipher in [CipherKind::Des, CipherKind::Aes128] {
        let key = vec![0x42u8; cipher.key_len()];
        let cbc = Cbc::new(cipher.new_cipher(&key).unwrap());
        let iv = cbc.random_iv();
        let ct = cbc.encrypt(&iv, &buf).unwrap();
        group.bench_function(BenchmarkId::from_parameter(format!("{cipher:?}")), |b| {
            b.iter(|| cbc.decrypt(&iv, &ct).unwrap())
        });
    }
    group.finish();
}

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    let buf = bytes(2, 64 * 1024);
    group.throughput(Throughput::Bytes(buf.len() as u64));
    for hash in [HashKind::Sha1, HashKind::Sha256] {
        group.bench_function(BenchmarkId::from_parameter(format!("{hash:?}")), |b| {
            b.iter(|| hash.hash(&buf))
        });
    }
    group.finish();

    // The fixed "finalization" overhead of §9.2.1 (5 µs in the paper).
    let mut group = c.benchmark_group("hash_finalization");
    for hash in [HashKind::Sha1, HashKind::Sha256] {
        group.bench_function(BenchmarkId::from_parameter(format!("{hash:?}")), |b| {
            b.iter(|| hash.hash(&[]))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let buf = bytes(3, 4096);
    c.bench_function("hmac_sha1_4k", |b| {
        b.iter(|| Hmac::mac(HashKind::Sha1, b"commit-signing-key", &buf))
    });
}

criterion_group!(benches, bench_ciphers, bench_hashes, bench_hmac);
criterion_main!(benches);
