//! Ordinary least squares, for decomposing measured latencies into the
//! paper's "fixed + per-chunk + per-byte" coefficients (§9.2.2: "the
//! computational latency, measured using linear regression, is 132 µs +
//! 36 µs per chunk + 0.24 µs per byte").

/// Fits `y ≈ β₀ + β₁·x₁ + … + βₖ·xₖ` by normal equations with Gaussian
/// elimination. Observations are `(xs, y)` rows.
///
/// Returns `None` when the system is singular (degenerate design).
pub fn ols(observations: &[(Vec<f64>, f64)]) -> Option<Vec<f64>> {
    let k = observations.first()?.0.len() + 1;
    // Build XᵀX (k×k) and Xᵀy (k).
    let mut xtx = vec![vec![0.0f64; k]; k];
    let mut xty = vec![0.0f64; k];
    for (xs, y) in observations {
        debug_assert_eq!(xs.len() + 1, k);
        let mut row = Vec::with_capacity(k);
        row.push(1.0);
        row.extend_from_slice(xs);
        for i in 0..k {
            for j in 0..k {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * y;
        }
    }
    // Gaussian elimination with partial pivoting.
    let mut a = xtx;
    let mut b = xty;
    for col in 0..k {
        let pivot = (col..k).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in 0..k {
            if row == col {
                continue;
            }
            let factor = a[row][col] / a[col][col];
            // Index form: `a[row]` and `a[col]` alias the same matrix.
            #[allow(clippy::needless_range_loop)]
            for j in col..k {
                a[row][j] -= factor * a[col][j];
            }
            b[row] -= factor * b[col];
        }
    }
    Some((0..k).map(|i| b[i] / a[i][i]).collect())
}

/// Coefficient of determination for a fitted model.
pub fn r_squared(observations: &[(Vec<f64>, f64)], beta: &[f64]) -> f64 {
    let n = observations.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mean_y: f64 = observations.iter().map(|(_, y)| y).sum::<f64>() / n;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (xs, y) in observations {
        let mut pred = beta[0];
        for (i, x) in xs.iter().enumerate() {
            pred += beta[i + 1] * x;
        }
        ss_res += (y - pred) * (y - pred);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_two_variable_fit() {
        // y = 5 + 2*x1 + 0.5*x2, no noise.
        let mut obs = Vec::new();
        for x1 in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
            for x2 in [10.0f64, 100.0, 1000.0] {
                obs.push((vec![x1, x2], 5.0 + 2.0 * x1 + 0.5 * x2));
            }
        }
        let beta = ols(&obs).unwrap();
        assert!((beta[0] - 5.0).abs() < 1e-6, "{beta:?}");
        assert!((beta[1] - 2.0).abs() < 1e-6);
        assert!((beta[2] - 0.5).abs() < 1e-6);
        assert!(r_squared(&obs, &beta) > 0.999999);
    }

    #[test]
    fn single_variable_fit_with_noise() {
        let obs: Vec<(Vec<f64>, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.3 } else { -0.3 };
                (vec![x], 1.0 + 3.0 * x + noise)
            })
            .collect();
        let beta = ols(&obs).unwrap();
        assert!((beta[1] - 3.0).abs() < 0.01, "{beta:?}");
        assert!(r_squared(&obs, &beta) > 0.99);
    }

    #[test]
    fn singular_design_rejected() {
        // x2 = 2*x1 exactly: collinear.
        let obs: Vec<(Vec<f64>, f64)> = (0..10)
            .map(|i| {
                let x = i as f64;
                (vec![x, 2.0 * x], x)
            })
            .collect();
        assert!(ols(&obs).is_none());
    }
}
