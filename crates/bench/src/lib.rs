//! Benchmark harness for the TDB reproduction.
//!
//! One module per concern:
//!
//! - [`fixtures`] — store/database constructors shared by benches and the
//!   report binary, in *raw* (in-memory, fast) and *simulated-1999-disk*
//!   (latency-modeled, reproduces the paper's I/O-dominated shape) modes;
//! - [`regress`] — least-squares fits for the paper's "a + b·chunks +
//!   c·bytes" micro-benchmark decompositions (§9.2.2, §9.2.3);
//! - [`workload`] — the bind/release digital-goods benchmark (§9.5.1),
//!   runnable against TDB and against the layered-crypto XDB baseline;
//! - [`experiments`] — the E1–E12 experiment runners behind the `report`
//!   binary, each printing measured rows next to the paper's.

pub mod experiments;
pub mod fixtures;
pub mod regress;
pub mod workload;
