//! The experiment report binary: regenerates the paper's tables and
//! figures (§9), printing measured rows next to the paper's numbers.
//!
//! ```sh
//! cargo run --release -p tdb-bench --bin report -- all
//! cargo run --release -p tdb-bench --bin report -- e1 e4 fig11
//! cargo run --release -p tdb-bench --bin report -- fig11 --runs 10
//! cargo run --release -p tdb-bench --bin report -- e20 --connections 64 --duration 3
//! ```

use tdb_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut runs = 3usize;
    let mut connections = 64usize;
    let mut seed = 0xE19u64;
    let mut duration_secs = 2.0f64;
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut flag = |what: &str| -> String {
            match iter.next() {
                Some(v) => v,
                None => {
                    eprintln!("error: {arg} needs {what}");
                    std::process::exit(2);
                }
            }
        };
        match arg.as_str() {
            "--runs" => {
                runs = match flag("a positive integer").parse().ok() {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("error: --runs needs a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--connections" => {
                connections = match flag("a positive integer").parse().ok() {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("error: --connections needs a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                // Accept decimal or 0x-prefixed hex.
                let v = flag("an integer");
                let parsed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse().ok(), |h| u64::from_str_radix(h, 16).ok());
                seed = match parsed {
                    Some(n) => n,
                    None => {
                        eprintln!("error: --seed needs an integer (decimal or 0x hex)");
                        std::process::exit(2);
                    }
                };
            }
            "--duration" => {
                duration_secs = match flag("seconds").parse().ok() {
                    Some(s) if s > 0.0 => s,
                    _ => {
                        eprintln!("error: --duration needs a positive number of seconds");
                        std::process::exit(2);
                    }
                };
            }
            _ => selected.push(arg.to_lowercase()),
        }
    }
    const KNOWN: [&str; 34] = [
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
        "e15", "e16", "e17", "e18", "e19", "e20", "fig9", "fig10", "fig11", "fig12", "conc",
        "commit", "clean", "shard", "mvcc", "validate", "ycsb", "server", "all", "micro",
    ];
    for name in &selected {
        if !KNOWN.contains(&name.as_str()) {
            eprintln!(
                "error: unknown experiment '{name}' (try: {})",
                KNOWN.join(" ")
            );
            std::process::exit(2);
        }
    }
    if selected.is_empty() {
        eprintln!(
            "usage: report [--runs N] [--connections N] [--seed N] [--duration SECS] <experiments...>\n\
             experiments: e1 e2 e3 e4 e5 e6 e7 e8 e9|fig9 e10|fig10 e11|fig11 e12|fig12 e13|conc e14|commit e15|clean e16|shard e17|mvcc e18|validate e19|ycsb e20|server | all | micro"
        );
        std::process::exit(2);
    }
    let want = |name: &str, aliases: &[&str]| {
        selected.iter().any(|s| {
            s == "all"
                || s == name
                || aliases.contains(&s.as_str())
                || (s == "micro"
                    && matches!(name, "e1" | "e2" | "e3" | "e4" | "e5" | "e6" | "e7" | "e8"))
        })
    };
    if want("e1", &[]) {
        experiments::e1_crypto();
    }
    if want("e2", &[]) {
        experiments::e2_store();
    }
    if want("e3", &[]) {
        experiments::e3_allocate();
    }
    if want("e4", &[]) {
        experiments::e4_commit_regression();
    }
    if want("e5", &[]) {
        experiments::e5_read_regression();
    }
    if want("e6", &[]) {
        experiments::e6_partition_ops();
    }
    if want("e7", &[]) {
        experiments::e7_backup_regression();
    }
    if want("e8", &[]) {
        experiments::e8_space();
    }
    if want("e9", &["fig9"]) {
        experiments::e9_code_complexity();
    }
    if want("e10", &["fig10"]) {
        experiments::e10_op_counts();
    }
    if want("e11", &["fig11"]) {
        experiments::e11_comparison(runs);
    }
    if want("e12", &["fig12"]) {
        experiments::e12_breakdown(runs);
    }
    if want("e13", &["conc"]) {
        experiments::e13_concurrent_read();
    }
    if want("e14", &["commit"]) {
        experiments::e14_commit_throughput();
    }
    if want("e15", &["clean"]) {
        experiments::e15_cleaner();
    }
    if want("e16", &["shard"]) {
        experiments::e16_shard_scaling();
    }
    if want("e17", &["mvcc"]) {
        experiments::e17_mvcc();
    }
    if want("e18", &["validate"]) {
        experiments::e18_validation_overhead();
    }
    if want("e19", &["ycsb"]) {
        experiments::e19_ycsb(seed);
    }
    if want("e20", &["server"]) {
        experiments::e20_server(
            connections,
            seed,
            std::time::Duration::from_secs_f64(duration_secs),
        );
    }
}
