//! The bind/release digital-goods benchmark (§9.5).
//!
//! "We measured the performance on a benchmark that models two operations
//! related to vending digital goods: **Bind** (a vendor binds three
//! alternative contracts to a digital good) and **Release** (a consumer
//! releases the digital good selecting one of the three contracts
//! randomly). The benchmark first creates 30 collections for different
//! object types. Each collection has one to four indexes. … The experiment
//! consists of 10 consecutive bind or release operations."
//!
//! Figure 10 gives the database-operation counts per 10-op experiment:
//!
//! | | read | update | delete | add | commit |
//! |--|--|--|--|--|--|
//! | release | 781 | 181 | 10 | 4 | 10 |
//! | bind    | 722 | 733 | 10 | 220 | 20 |
//!
//! This module reproduces those counts exactly, driving either TDB's
//! object/collection stores or the layered-crypto XDB baseline with the
//! same logical operation stream.

use std::any::Any;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tdb::{
    register_builtin_types, ChunkStoreConfig, CollectionId, CollectionStore, ExtractorRegistry,
    IndexKey, IndexKind, ObjectId, ObjectStore, ObjectStoreConfig, PartitionId, StoredObject,
    TypeRegistry,
};
use tdb_xdb::{SecureXdb, SecureXdbConfig};

use crate::fixtures::{bytes, chunk_store_with_partition, IoMode, Platform};

/// Which experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// The consumer-side release experiment.
    Release,
    /// The vendor-side bind experiment.
    Bind,
}

/// Database-operation counts (the Figure 10 rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    pub reads: u64,
    pub updates: u64,
    pub deletes: u64,
    pub adds: u64,
    pub commits: u64,
}

/// The paper's counts for one experiment of 10 operations.
pub fn paper_counts(kind: Kind) -> OpCounts {
    match kind {
        Kind::Release => OpCounts {
            reads: 781,
            updates: 181,
            deletes: 10,
            adds: 4,
            commits: 10,
        },
        Kind::Bind => OpCounts {
            reads: 722,
            updates: 733,
            deletes: 10,
            adds: 220,
            commits: 20,
        },
    }
}

/// Splits `total` across `parts` as evenly as possible (earlier parts get
/// the remainder), so per-commit op counts sum exactly to Figure 10's.
fn split(total: u64, parts: u64) -> Vec<u64> {
    (0..parts)
        .map(|i| total / parts + u64::from(i < total % parts))
        .collect()
}

/// One commit group of the logical operation stream.
#[derive(Debug, Clone)]
pub struct CommitGroup {
    pub reads: Vec<u64>,
    pub updates: Vec<(u64, usize)>,
    pub deletes: Vec<u64>,
    pub adds: Vec<usize>,
}

/// Deterministically generates the logical operation stream for one
/// experiment over a preloaded population of `population` records.
pub fn generate_stream(kind: Kind, population: u64, seed: u64) -> Vec<CommitGroup> {
    let target = paper_counts(kind);
    let commits = target.commits;
    let reads = split(target.reads, commits);
    let updates = split(target.updates, commits);
    let deletes = split(target.deletes, commits);
    let adds = split(target.adds, commits);
    let mut state = seed | 1;
    let mut next = move |bound: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % bound
    };
    // Deletes target ids the generator itself added, so the population is
    // never exhausted and ids never collide with live reads.
    let mut groups = Vec::with_capacity(commits as usize);
    for c in 0..commits as usize {
        let group = CommitGroup {
            reads: (0..reads[c]).map(|_| next(population)).collect(),
            updates: (0..updates[c])
                .map(|_| (next(population), 100 + next(400) as usize))
                .collect(),
            deletes: (0..deletes[c]).map(|_| next(population)).collect(),
            adds: (0..adds[c]).map(|_| 100 + next(400) as usize).collect(),
        };
        groups.push(group);
    }
    groups
}

/// Measured result of one experiment.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock time of the 10-operation experiment.
    pub elapsed: Duration,
    /// Operations actually issued (the Figure 10 analog).
    pub counts: OpCounts,
    /// Wall-clock time spent inside commits only.
    pub commit_time: Duration,
}

// ---------------------------------------------------------------------------
// The benchmark record type.
// ---------------------------------------------------------------------------

/// A generic benchmark object, standing in for the goods / contracts /
/// accounts / licenses of the paper's scenario.
#[derive(Debug)]
pub struct Rec {
    /// Which of the 30 collections (object types) this record belongs to.
    pub collection: u8,
    /// Opaque application payload.
    pub payload: Vec<u8>,
}

/// Type tag for [`Rec`].
pub const REC_TAG: u32 = 900;

impl StoredObject for Rec {
    fn type_tag(&self) -> u32 {
        REC_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.payload.len());
        out.push(self.collection);
        out.extend_from_slice(&self.payload);
        out
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Decodes a [`Rec`] body (shared with the E17 MVCC experiment).
pub fn unpickle_rec(body: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    if body.is_empty() {
        return Err(tdb_object::errors::ObjectError::BadPickle("rec".into()));
    }
    Ok(Arc::new(Rec {
        collection: body[0],
        payload: body[1..].to_vec(),
    }))
}

/// Sorted index on the first payload bytes.
fn rec_by_prefix(o: &dyn StoredObject) -> Option<Vec<u8>> {
    o.as_any().downcast_ref::<Rec>().map(|r| {
        IndexKey::new()
            .raw(&r.payload[..r.payload.len().min(8)])
            .into_bytes()
    })
}

/// Unsorted index on payload length.
fn rec_by_len(o: &dyn StoredObject) -> Option<Vec<u8>> {
    o.as_any()
        .downcast_ref::<Rec>()
        .map(|r| IndexKey::new().u64(r.payload.len() as u64).into_bytes())
}

/// Sorted index on a payload checksum.
fn rec_by_sum(o: &dyn StoredObject) -> Option<Vec<u8>> {
    o.as_any().downcast_ref::<Rec>().map(|r| {
        let sum: u64 = r.payload.iter().map(|&b| u64::from(b)).sum();
        IndexKey::new().u64(sum).into_bytes()
    })
}

/// Sorted index present only on large records.
fn rec_by_large(o: &dyn StoredObject) -> Option<Vec<u8>> {
    let r = o.as_any().downcast_ref::<Rec>()?;
    if r.payload.len() > 300 {
        Some(IndexKey::new().u64(r.payload.len() as u64).into_bytes())
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// The TDB side.
// ---------------------------------------------------------------------------

/// A fully assembled TDB workload instance.
pub struct TdbWorkload {
    pub platform: Platform,
    pub objects: Arc<ObjectStore>,
    pub collections: CollectionStore,
    pub partition: PartitionId,
    pub colls: Vec<CollectionId>,
    /// Logical id → object, for the preloaded population.
    pub ids: Vec<ObjectId>,
}

impl TdbWorkload {
    /// Builds the §9.5.1 setup: 30 collections with one to four indexes,
    /// preloaded with `population` records, cache warmed.
    pub fn setup(mode: IoMode, population: u64, config: ChunkStoreConfig) -> TdbWorkload {
        let platform = Platform::new(mode);
        let (chunks, partition) = chunk_store_with_partition(&platform, config);
        let mut registry = TypeRegistry::new();
        register_builtin_types(&mut registry);
        registry.register(REC_TAG, unpickle_rec);
        let mut extractors = ExtractorRegistry::new();
        extractors.register("prefix", rec_by_prefix);
        extractors.register("len", rec_by_len);
        extractors.register("sum", rec_by_sum);
        extractors.register("large", rec_by_large);
        let objects = ObjectStore::new(
            chunks,
            registry,
            ObjectStoreConfig {
                // "The total size of TDB caches … was set to 4 Mbytes."
                cache_bytes: 4 * 1024 * 1024,
                ..ObjectStoreConfig::default()
            },
        );
        let collections = CollectionStore::new(extractors);

        // 30 collections, 1–4 indexes each.
        let mut tx = objects.begin();
        let mut colls = Vec::with_capacity(30);
        for i in 0..30u8 {
            let coll = collections
                .create_collection(&mut tx, partition, &format!("type-{i}"))
                .expect("create collection");
            let n_indexes = 1 + usize::from(i) % 4;
            let specs = [
                ("prefix", "prefix", IndexKind::Sorted),
                ("len", "len", IndexKind::Unsorted),
                ("sum", "sum", IndexKind::Sorted),
                ("large", "large", IndexKind::Sorted),
            ];
            for (name, extractor, kind) in specs.iter().take(n_indexes) {
                collections
                    .add_index(&mut tx, coll, name, extractor, *kind)
                    .expect("add index");
            }
            colls.push(coll);
        }
        tx.commit().expect("setup commit");

        // Preload the population.
        let mut ids = Vec::with_capacity(population as usize);
        for logical in 0..population {
            let mut tx = objects.begin();
            let coll = colls[(logical % 30) as usize];
            let id = collections
                .insert(
                    &mut tx,
                    coll,
                    Arc::new(Rec {
                        collection: (logical % 30) as u8,
                        payload: bytes(logical, 100 + (logical as usize * 37) % 400),
                    }),
                )
                .expect("preload insert");
            tx.commit().expect("preload commit");
            ids.push(id);
        }
        objects.chunks().checkpoint().expect("preload checkpoint");

        // "The benchmark loads the cache before executing an experiment."
        let mut tx = objects.begin();
        for id in &ids {
            let _ = tx.get::<Rec>(*id).expect("warm");
        }
        tx.abort();

        TdbWorkload {
            platform,
            objects,
            collections,
            partition,
            colls,
            ids,
        }
    }

    /// Runs one experiment over a pre-generated stream.
    pub fn run(&mut self, stream: &[CommitGroup]) -> RunResult {
        let mut counts = OpCounts::default();
        let mut commit_time = Duration::ZERO;
        let start = Instant::now();
        for group in stream {
            let mut tx = self.objects.begin();
            for &logical in &group.reads {
                let id = self.ids[(logical as usize) % self.ids.len()];
                let _ = tx.get::<Rec>(id).expect("read");
                counts.reads += 1;
            }
            for &(logical, size) in &group.updates {
                let slot = (logical as usize) % self.ids.len();
                let id = self.ids[slot];
                let coll = self.colls[slot % 30];
                self.collections
                    .update(
                        &mut tx,
                        coll,
                        id,
                        Arc::new(Rec {
                            collection: (slot % 30) as u8,
                            payload: bytes(logical ^ 0xABCD, size),
                        }),
                    )
                    .expect("update");
                counts.updates += 1;
            }
            for &size in &group.adds {
                let coll_idx = counts.adds as usize % 30;
                let id = self
                    .collections
                    .insert(
                        &mut tx,
                        self.colls[coll_idx],
                        Arc::new(Rec {
                            collection: coll_idx as u8,
                            payload: bytes(size as u64, size),
                        }),
                    )
                    .expect("add");
                counts.adds += 1;
                // New records join the live set (deletes target them).
                self.ids.push(id);
            }
            for _ in &group.deletes {
                // Delete the most recently added record still alive, so the
                // preloaded population stays intact for reads.
                if self.ids.len() > 30 {
                    let id = self.ids.pop().expect("non-empty");
                    let slot = self.ids.len();
                    let coll = self.colls[slot % 30];
                    // Unlink from its collection when membership matches;
                    // the object itself is deleted either way.
                    let _ = self.collections.unlink(&mut tx, coll, id);
                    tx.delete(id).expect("delete");
                    counts.deletes += 1;
                }
            }
            let t0 = Instant::now();
            tx.commit().expect("workload commit");
            commit_time += t0.elapsed();
            counts.commits += 1;
        }
        RunResult {
            elapsed: start.elapsed(),
            counts,
            commit_time,
        }
    }
}

// ---------------------------------------------------------------------------
// The XDB side.
// ---------------------------------------------------------------------------

/// The layered-crypto XDB workload instance.
pub struct XdbWorkload {
    pub platform: Platform,
    pub db: SecureXdb,
    pub live: Vec<u64>,
    next_id: u64,
}

impl XdbWorkload {
    /// Builds the equivalent XDB-based system: same cryptographic
    /// parameters (DES + SHA-1), preloaded with the same population.
    pub fn setup(mode: IoMode, population: u64) -> XdbWorkload {
        let platform = Platform::new(mode);
        // XDB keeps its WAL in a second region of the same device class.
        let wal_mem = Arc::new(tdb_storage::MemStore::new());
        let wal: tdb_storage::SharedUntrusted = match mode {
            IoMode::Raw => wal_mem,
            IoMode::SimulatedDisk => Arc::new(tdb_storage::SimDiskStore::new(
                wal_mem as tdb_storage::SharedUntrusted,
                tdb_storage::DiskModel::untrusted_1999(),
                Arc::clone(&platform.clock),
            )),
        };
        let db = SecureXdb::create(
            Arc::clone(&platform.untrusted),
            wal,
            Arc::clone(&platform.trusted),
            SecureXdbConfig::paper_default(tdb_crypto::SecretKey::random(8)),
        )
        .expect("create secure xdb");
        let mut live = Vec::with_capacity(population as usize);
        for logical in 0..population {
            db.commit(vec![(
                logical,
                Some(bytes(logical, 100 + (logical as usize * 37) % 400)),
            )])
            .expect("preload");
            live.push(logical);
        }
        db.checkpoint().expect("preload checkpoint");
        // Warm reads.
        for &id in &live {
            let _ = db.get(id).expect("warm");
        }
        XdbWorkload {
            platform,
            db,
            next_id: population,
            live,
        }
    }

    /// Runs one experiment over the same logical stream.
    pub fn run(&mut self, stream: &[CommitGroup]) -> RunResult {
        let mut counts = OpCounts::default();
        let mut commit_time = Duration::ZERO;
        let start = Instant::now();
        for group in stream {
            for &logical in &group.reads {
                let id = self.live[(logical as usize) % self.live.len()];
                let _ = self.db.get(id).expect("read");
                counts.reads += 1;
            }
            let mut batch: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
            for &(logical, size) in &group.updates {
                let id = self.live[(logical as usize) % self.live.len()];
                batch.push((id, Some(bytes(logical ^ 0xABCD, size))));
                counts.updates += 1;
            }
            for &size in &group.adds {
                let id = self.next_id;
                self.next_id += 1;
                batch.push((id, Some(bytes(size as u64, size))));
                self.live.push(id);
                counts.adds += 1;
            }
            for _ in &group.deletes {
                if self.live.len() > 30 {
                    let id = self.live.pop().expect("non-empty");
                    batch.push((id, None));
                    counts.deletes += 1;
                }
            }
            let t0 = Instant::now();
            self.db.commit(batch).expect("xdb commit");
            commit_time += t0.elapsed();
            counts.commits += 1;
        }
        RunResult {
            elapsed: start.elapsed(),
            counts,
            commit_time,
        }
    }
}

// ---------------------------------------------------------------------------
// YCSB-style workload suite (ISSUE 9).
// ---------------------------------------------------------------------------

/// The classic YCSB core-workload mixes used to measure the chunk store
/// (read/update/scan/insert proportions in percent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbWorkload {
    /// 50% reads / 50% updates (update heavy).
    A,
    /// 95% reads / 5% updates (read heavy).
    B,
    /// 100% reads (read only).
    C,
    /// 95% scans / 5% inserts (scan heavy).
    E,
}

impl YcsbWorkload {
    /// `(read, update, scan, insert)` percentages, summing to 100.
    pub fn mix(self) -> (u64, u64, u64, u64) {
        match self {
            YcsbWorkload::A => (50, 50, 0, 0),
            YcsbWorkload::B => (95, 5, 0, 0),
            YcsbWorkload::C => (100, 0, 0, 0),
            YcsbWorkload::E => (0, 0, 95, 5),
        }
    }

    /// The canonical letter, for tables and JSON keys.
    pub fn letter(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::E => "E",
        }
    }
}

/// YCSB's zipfian request-distribution generator (the Gray et al.
/// approximation the reference implementation uses), exponent 0.99:
/// popular keys dominate, which is exactly the access skew compressed
/// read-heavy workloads must survive.
pub struct Zipfian {
    n: u64,
    theta: f64,
    zeta_n: f64,
    alpha: f64,
    eta: f64,
}

impl Zipfian {
    /// Builds a generator over `0..n` with exponent `theta`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        let zeta = |m: u64| -> f64 { (1..=m).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let zeta_n = zeta(n);
        let zeta_2 = zeta(2);
        Zipfian {
            n,
            theta,
            zeta_n,
            alpha: 1.0 / (1.0 - theta),
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n),
        }
    }

    /// Maps a uniform draw in `[0, 1)` to a zipfian-distributed key.
    pub fn map(&self, u: f64) -> u64 {
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let key = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        key.min(self.n - 1)
    }
}

/// A YCSB record body: field-structured text over a small vocabulary —
/// compressible the way real serialized records are (the reference
/// workload's fieldN=value layout), stamped with key and version so every
/// record and overwrite is distinct.
pub fn ycsb_record(key: u64, version: u64, len: usize) -> Vec<u8> {
    const WORDS: [&str; 8] = [
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel",
    ];
    let mut out = Vec::with_capacity(len + 32);
    let mut state = (key ^ version.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut field = 0u32;
    while out.len() < len {
        out.extend_from_slice(format!("field{field}=").as_bytes());
        for _ in 0..6 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out.extend_from_slice(WORDS[(state % 8) as usize].as_bytes());
            out.push(b' ');
        }
        out.extend_from_slice(format!("k{key}v{version};").as_bytes());
        field += 1;
    }
    out.truncate(len);
    out
}

/// Per-run YCSB parameters.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Preloaded keys.
    pub population: u64,
    /// Record body length in bytes.
    pub record_bytes: usize,
    /// Operations each thread issues per run.
    pub ops_per_thread: usize,
    /// Scan length is `1..=max_scan` consecutive keys (workload E).
    pub max_scan: usize,
    /// Zipfian request distribution (`false` = uniform).
    pub zipfian: bool,
}

impl Default for YcsbConfig {
    fn default() -> YcsbConfig {
        YcsbConfig {
            population: 1024,
            record_bytes: 1000,
            ops_per_thread: 1500,
            max_scan: 16,
            zipfian: true,
        }
    }
}

/// Operation counts actually issued by one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct YcsbResult {
    pub elapsed: Duration,
    pub reads: u64,
    pub updates: u64,
    pub scans: u64,
    /// Individual records touched by scans.
    pub scanned: u64,
    pub inserts: u64,
}

impl YcsbResult {
    /// Logical operations per second (a scan counts once).
    pub fn ops_per_sec(&self) -> f64 {
        (self.reads + self.updates + self.scans + self.inserts) as f64
            / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// A YCSB driver over the chunk store: keys map to data-chunk ranks, so
/// the suite measures the store's real commit/read/scan paths (sealing,
/// validation, and — when the knob is on — compression).
pub struct YcsbDriver {
    pub platform: Platform,
    pub store: Arc<tdb::ChunkStore>,
    pub partition: PartitionId,
    pub ids: Vec<tdb::ChunkId>,
    config: YcsbConfig,
    zipf: Zipfian,
}

impl YcsbDriver {
    /// Creates a store with `chunk_config` and preloads the population
    /// with compressible records.
    pub fn setup(chunk_config: ChunkStoreConfig, config: YcsbConfig) -> YcsbDriver {
        let platform = Platform::new(IoMode::Raw);
        let (store, partition) = chunk_store_with_partition(&platform, chunk_config);
        let mut ids = Vec::with_capacity(config.population as usize);
        for key in 0..config.population {
            let id = store.allocate_chunk(partition).expect("allocate");
            store
                .commit(vec![tdb::CommitOp::WriteChunk {
                    id,
                    bytes: ycsb_record(key, 0, config.record_bytes),
                }])
                .expect("preload");
            ids.push(id);
        }
        store.checkpoint().expect("preload checkpoint");
        let zipf = Zipfian::new(config.population, 0.99);
        YcsbDriver {
            platform,
            store,
            partition,
            ids,
            config,
            zipf,
        }
    }

    /// Runs one workload at `threads` concurrency; every thread issues
    /// `ops_per_thread` operations drawn from the workload's mix.
    /// Deterministic given `seed` (modulo thread interleaving).
    pub fn run(&self, workload: YcsbWorkload, threads: usize, seed: u64) -> YcsbResult {
        use std::sync::atomic::{AtomicU64, Ordering};
        let (read_pct, update_pct, scan_pct, _) = workload.mix();
        let ops = self.config.ops_per_thread;
        // Inserts (workload E) go to chunks allocated outside the timed
        // window, so the measurement is pure read/write-path work.
        let insert_pool: Vec<Vec<tdb::ChunkId>> = (0..threads)
            .map(|_| {
                (0..ops)
                    .map(|_| self.store.allocate_chunk(self.partition).expect("allocate"))
                    .collect()
            })
            .collect();
        let (reads, updates, scans, scanned, inserts) = (
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
        );
        let start = Instant::now();
        std::thread::scope(|s| {
            for (t, pool) in insert_pool.iter().enumerate() {
                let (reads, updates, scans, scanned, inserts) =
                    (&reads, &updates, &scans, &scanned, &inserts);
                s.spawn(move || {
                    let mut state = seed ^ (t as u64 + 1).wrapping_mul(0x517C_C1B7_2722_0A95) | 1;
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
                    };
                    let (mut r, mut u, mut sc, mut scd, mut ins) = (0u64, 0u64, 0u64, 0u64, 0u64);
                    let mut inserted = 0usize;
                    for op in 0..ops {
                        let key = if self.config.zipfian {
                            self.zipf.map((next() >> 11) as f64 / (1u64 << 53) as f64)
                        } else {
                            next() % self.config.population
                        } as usize;
                        let dice = next() % 100;
                        if dice < read_pct {
                            self.store.read(self.ids[key]).expect("read");
                            r += 1;
                        } else if dice < read_pct + update_pct {
                            let body = ycsb_record(key as u64, next(), self.config.record_bytes);
                            self.store
                                .commit(vec![tdb::CommitOp::WriteChunk {
                                    id: self.ids[key],
                                    bytes: body,
                                }])
                                .expect("update");
                            u += 1;
                        } else if dice < read_pct + update_pct + scan_pct {
                            let len = 1 + (next() as usize) % self.config.max_scan;
                            let end = (key + len).min(self.ids.len());
                            for id in &self.ids[key..end] {
                                self.store.read(*id).expect("scan read");
                                scd += 1;
                            }
                            sc += 1;
                        } else {
                            let id = pool[inserted];
                            inserted += 1;
                            let body = ycsb_record(
                                self.config.population + (t * ops + op) as u64,
                                0,
                                self.config.record_bytes,
                            );
                            self.store
                                .commit(vec![tdb::CommitOp::WriteChunk { id, bytes: body }])
                                .expect("insert");
                            ins += 1;
                        }
                    }
                    reads.fetch_add(r, Ordering::Relaxed);
                    updates.fetch_add(u, Ordering::Relaxed);
                    scans.fetch_add(sc, Ordering::Relaxed);
                    scanned.fetch_add(scd, Ordering::Relaxed);
                    inserts.fetch_add(ins, Ordering::Relaxed);
                });
            }
        });
        YcsbResult {
            elapsed: start.elapsed(),
            reads: reads.into_inner(),
            updates: updates.into_inner(),
            scans: scans.into_inner(),
            scanned: scanned.into_inner(),
            inserts: inserts.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_matches_paper_counts() {
        for kind in [Kind::Release, Kind::Bind] {
            let target = paper_counts(kind);
            let stream = generate_stream(kind, 500, 42);
            assert_eq!(stream.len() as u64, target.commits);
            let reads: u64 = stream.iter().map(|g| g.reads.len() as u64).sum();
            let updates: u64 = stream.iter().map(|g| g.updates.len() as u64).sum();
            let deletes: u64 = stream.iter().map(|g| g.deletes.len() as u64).sum();
            let adds: u64 = stream.iter().map(|g| g.adds.len() as u64).sum();
            assert_eq!(
                (reads, updates, deletes, adds),
                (target.reads, target.updates, target.deletes, target.adds),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn tdb_workload_runs_release() {
        let mut w = TdbWorkload::setup(IoMode::Raw, 120, crate::fixtures::paper_config());
        let stream = generate_stream(Kind::Release, 120, 7);
        let result = w.run(&stream);
        let target = paper_counts(Kind::Release);
        assert_eq!(result.counts.reads, target.reads);
        assert_eq!(result.counts.updates, target.updates);
        assert_eq!(result.counts.commits, target.commits);
        assert!(result.elapsed > Duration::ZERO);
    }

    #[test]
    fn xdb_workload_runs_release() {
        let mut w = XdbWorkload::setup(IoMode::Raw, 120);
        let stream = generate_stream(Kind::Release, 120, 7);
        let result = w.run(&stream);
        assert_eq!(result.counts.commits, paper_counts(Kind::Release).commits);
    }

    #[test]
    fn deterministic_streams() {
        let a = generate_stream(Kind::Bind, 300, 9);
        let b = generate_stream(Kind::Bind, 300, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.reads, y.reads);
            assert_eq!(x.updates, y.updates);
        }
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let mut head = 0usize;
        let mut state = 7u64;
        for _ in 0..4000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let key = z.map(u);
            assert!(key < 1000);
            if key < 100 {
                head += 1;
            }
        }
        // Theta 0.99 puts well over half the mass on the top decile.
        assert!(head > 2000, "zipfian not skewed: {head}/4000 in top 10%");
    }

    #[test]
    fn ycsb_records_are_compressible_and_distinct() {
        let a = ycsb_record(1, 0, 1000);
        let b = ycsb_record(2, 0, 1000);
        let a2 = ycsb_record(1, 1, 1000);
        assert_eq!(a.len(), 1000);
        assert_ne!(a, b);
        assert_ne!(a, a2);
        let env = tdb_core::compress::compress_body(&a).expect("compressible");
        assert!(env.len() * 2 < a.len(), "record should compress ≥2x");
    }

    #[test]
    fn ycsb_driver_runs_every_mix() {
        let driver = YcsbDriver::setup(
            crate::fixtures::paper_config(),
            YcsbConfig {
                population: 64,
                record_bytes: 400,
                ops_per_thread: 60,
                max_scan: 8,
                zipfian: true,
            },
        );
        for wl in [
            YcsbWorkload::A,
            YcsbWorkload::B,
            YcsbWorkload::C,
            YcsbWorkload::E,
        ] {
            let res = driver.run(wl, 2, 11);
            let total = res.reads + res.updates + res.scans + res.inserts;
            assert_eq!(total, 120, "{wl:?}");
            let (r, u, s, i) = wl.mix();
            assert_eq!(res.reads > 0, r > 0, "{wl:?}");
            assert_eq!(res.updates > 0, u > 0, "{wl:?}");
            assert_eq!(res.scans > 0, s > 0, "{wl:?}");
            assert_eq!(res.inserts > 0, i > 0, "{wl:?}");
            assert!(res.scanned >= res.scans);
            assert!(res.ops_per_sec() > 0.0);
        }
    }
}
