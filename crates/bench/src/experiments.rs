//! Experiment runners regenerating every table and figure of §9.
//!
//! Each `eN` function prints the measured rows next to the paper's numbers.
//! Absolute times differ (450 MHz Pentium vs today), so EXPERIMENTS.md
//! compares *shapes*: orderings, ratios, and linearity.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tdb::{BackupSpec, ChunkId, ChunkStore, ChunkStoreConfig, CommitOp, CryptoParams};
use tdb_core::backup::BackupStore;
use tdb_core::metrics::{self, modules};
use tdb_crypto::cbc::Cbc;
use tdb_crypto::{CipherKind, HashKind};
use tdb_storage::MemArchive;

use crate::fixtures::{bytes, chunk_store_with_partition, paper_config, IoMode, Platform};
use crate::regress::{ols, r_squared};
use crate::workload::{
    generate_stream, paper_counts, Kind, TdbWorkload, XdbWorkload, YcsbConfig, YcsbDriver,
    YcsbWorkload,
};

fn mbps(bytes_done: usize, elapsed: Duration) -> f64 {
    bytes_done as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0)
}

fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed(), r)
}

/// Repeats `f` until at least ~50 ms elapsed, returning per-iteration time.
fn per_iter(mut f: impl FnMut()) -> Duration {
    // Warm up.
    f();
    let mut iters = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(50) {
            return elapsed / iters;
        }
        iters *= 4;
    }
}

// ---------------------------------------------------------------------------
// E1: cryptographic bandwidths (§9.2.1).
// ---------------------------------------------------------------------------

/// Measures cipher and hash bandwidths, as §9.2.1 reports.
pub fn e1_crypto() {
    println!("== E1: cryptographic operations (§9.2.1) ==");
    println!("paper: 3DES-CBC 2.5 MB/s, DES-CBC 7.2 MB/s, SHA-1 21.1 MB/s + 5 µs finalization");
    let buf = bytes(1, 1 << 20);
    for cipher in [
        CipherKind::TripleDes,
        CipherKind::Des,
        CipherKind::Aes128,
        CipherKind::Aes256,
    ] {
        let key = vec![0x42u8; cipher.key_len()];
        let cbc = Cbc::new(cipher.new_cipher(&key).expect("key"));
        let iv = cbc.random_iv();
        let d = per_iter(|| {
            let _ = cbc.encrypt(&iv, &buf).expect("encrypt");
        });
        println!(
            "  {:?}-CBC encrypt: {:7.2} MB/s",
            cipher,
            mbps(buf.len(), d)
        );
    }
    for hash in [HashKind::Sha1, HashKind::Sha256] {
        let d = per_iter(|| {
            let _ = hash.hash(&buf);
        });
        let d0 = per_iter(|| {
            let _ = hash.hash(&[]);
        });
        println!(
            "  {:?} hash: {:7.2} MB/s, finalization {:.2} µs",
            hash,
            mbps(buf.len(), d),
            d0.as_secs_f64() * 1e6
        );
    }
}

// ---------------------------------------------------------------------------
// E2: store latency and bandwidth (§9.2.1).
// ---------------------------------------------------------------------------

/// Measures raw and modeled store characteristics.
pub fn e2_store() {
    println!("== E2: store latency/bandwidth (§9.2.1) ==");
    println!("paper: untrusted ~3.5–4.7 MB/s, flush 10–40 ms; tamper-resistant ~5–18 ms/write");
    for mode in [IoMode::Raw, IoMode::SimulatedDisk] {
        let platform = Platform::new(mode);
        let chunk = bytes(7, 64 * 1024);
        let (d_w, ()) = time(|| {
            for i in 0..64u64 {
                platform
                    .untrusted
                    .write_at(i * chunk.len() as u64, &chunk)
                    .expect("write");
            }
        });
        let (d_f, ()) = time(|| platform.untrusted.flush().expect("flush"));
        let mut back = vec![0u8; chunk.len()];
        let (d_r, ()) = time(|| {
            for i in 0..64u64 {
                platform
                    .untrusted
                    .read_at(i * chunk.len() as u64, &mut back)
                    .expect("read");
            }
        });
        println!(
            "  {:?}: write {:7.1} MB/s, read {:7.1} MB/s, flush {:6.2} ms",
            mode,
            mbps(64 * chunk.len(), d_w),
            mbps(64 * chunk.len(), d_r),
            d_f.as_secs_f64() * 1e3,
        );
    }
}

// ---------------------------------------------------------------------------
// E3: allocate chunk id (§9.2.2).
// ---------------------------------------------------------------------------

/// Measures id allocation, "the average latency is 6 µs".
pub fn e3_allocate() {
    println!("== E3: allocate chunk id (§9.2.2) ==");
    println!("paper: 6 µs (no persistent state change)");
    let platform = Platform::new(IoMode::Raw);
    let (store, p) = chunk_store_with_partition(&platform, paper_config());
    let d = per_iter(|| {
        let _ = store.allocate_chunk(p).expect("allocate");
    });
    println!("  measured: {:.2} µs", d.as_secs_f64() * 1e6);
}

// ---------------------------------------------------------------------------
// E4: write chunks + commit (§9.2.2).
// ---------------------------------------------------------------------------

/// Fits commit latency = a + b·chunks + c·bytes over the paper's sweep
/// ("sets of 1 to 128 chunks of sizes 128 bytes to 16 KB").
pub fn e4_commit_regression() {
    println!("== E4: write chunks + commit (§9.2.2) ==");
    println!("paper: 132 µs + 36 µs/chunk + 0.24 µs/byte (computational)");
    let platform = Platform::new(IoMode::Raw);
    let mut config = paper_config();
    config.segment_size = 256 * 1024;
    config.checkpoint_threshold = usize::MAX;
    let (store, p) = chunk_store_with_partition(&platform, config);

    let mut ids = Vec::new();
    for _ in 0..128 {
        ids.push(store.allocate_chunk(p).expect("allocate"));
    }
    // Write once so overwrites dominate (steady state).
    for &id in &ids {
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: bytes(1, 256),
            }])
            .expect("seed");
    }

    let mut obs: Vec<(Vec<f64>, f64)> = Vec::new();
    for &n_chunks in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
        for &size in &[128usize, 512, 2048, 8192, 16384] {
            let reps = (256 / n_chunks).clamp(2, 32);
            let mut total = Duration::ZERO;
            for rep in 0..reps {
                let ops: Vec<CommitOp> = ids
                    .iter()
                    .take(n_chunks)
                    .map(|&id| CommitOp::WriteChunk {
                        id,
                        bytes: bytes(rep as u64, size),
                    })
                    .collect();
                let (d, ()) = time(|| store.commit(ops).expect("commit"));
                total += d;
            }
            let per_commit = total.as_secs_f64() * 1e6 / reps as f64;
            obs.push((vec![n_chunks as f64, (n_chunks * size) as f64], per_commit));
        }
    }
    let beta = ols(&obs).expect("fit");
    println!(
        "  measured: {:.0} µs + {:.2} µs/chunk + {:.4} µs/byte   (R² = {:.3})",
        beta[0],
        beta[1],
        beta[2],
        r_squared(&obs, &beta)
    );
}

// ---------------------------------------------------------------------------
// E5: read chunk (§9.2.2).
// ---------------------------------------------------------------------------

/// Fits read latency = a + b·bytes with a warm descriptor cache, and
/// reports the cold-descriptor (map-walk) cost.
pub fn e5_read_regression() {
    println!("== E5: read chunk (§9.2.2) ==");
    println!("paper: 47 µs + 0.18 µs/byte (cached descriptor); map chunks of 64 descriptors");
    let platform = Platform::new(IoMode::Raw);
    let (store, p) = chunk_store_with_partition(&platform, paper_config());
    let mut obs = Vec::new();
    for &size in &[128usize, 512, 2048, 8192, 16384] {
        let id = store.allocate_chunk(p).expect("allocate");
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: bytes(3, size),
            }])
            .expect("write");
        let d = per_iter(|| {
            let _ = store.read(id).expect("read");
        });
        obs.push((vec![size as f64], d.as_secs_f64() * 1e6));
    }
    let beta = ols(&obs).expect("fit");
    println!(
        "  warm: {:.0} µs + {:.4} µs/byte   (R² = {:.3})",
        beta[0],
        beta[1],
        r_squared(&obs, &beta)
    );

    // Cold descriptors: load many chunks, checkpoint, reopen (empty cache),
    // then read — each first read walks parental map chunks.
    let n = 4096u64;
    for i in 0..n {
        let id = store.allocate_chunk(p).expect("allocate");
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: bytes(i, 128),
            }])
            .expect("write");
    }
    store.checkpoint().expect("checkpoint");
    let (d_cold, ()) = time(|| {
        for i in (0..n).step_by(61) {
            let _ = store.read(ChunkId::data(p, i)).expect("cold read");
        }
    });
    let cold_reads = n.div_ceil(61);
    println!(
        "  cold (map walk): {:.0} µs/read over {} reads",
        d_cold.as_secs_f64() * 1e6 / cold_reads as f64,
        cold_reads
    );
}

// ---------------------------------------------------------------------------
// E6: write/copy partition (§9.2.2).
// ---------------------------------------------------------------------------

/// Measures partition creation and copy; copy must be size-independent
/// ("386 µs regardless of the number of chunks … owing to copy-on-write").
pub fn e6_partition_ops() {
    println!("== E6: write/copy partition (§9.2.2) ==");
    println!("paper: create 223 µs; copy 386 µs regardless of source size");
    let platform = Platform::new(IoMode::Raw);
    let (store, _) = chunk_store_with_partition(&platform, paper_config());

    let d_create = per_iter(|| {
        let q = store.allocate_partition().expect("allocate");
        store
            .commit(vec![CommitOp::CreatePartition {
                id: q,
                params: CryptoParams::paper_default(),
            }])
            .expect("create");
        store
            .commit(vec![CommitOp::DeallocPartition { id: q }])
            .expect("drop");
    });
    println!("  create+drop pair: {:.0} µs", d_create.as_secs_f64() * 1e6);

    for &n_chunks in &[10u64, 100, 1000, 10_000] {
        let src = store.allocate_partition().expect("allocate");
        store
            .commit(vec![CommitOp::CreatePartition {
                id: src,
                params: CryptoParams::paper_default(),
            }])
            .expect("create");
        for i in 0..n_chunks {
            let id = store.allocate_chunk(src).expect("allocate");
            store
                .commit(vec![CommitOp::WriteChunk {
                    id,
                    bytes: bytes(i, 128),
                }])
                .expect("write");
        }
        store.checkpoint().expect("checkpoint");
        let snap = store.allocate_partition().expect("allocate");
        let (d, ()) = time(|| {
            store
                .commit(vec![CommitOp::CopyPartition { dst: snap, src }])
                .expect("copy");
        });
        println!(
            "  copy of {:>6}-chunk partition: {:.0} µs",
            n_chunks,
            d.as_secs_f64() * 1e6
        );
        store
            .commit(vec![CommitOp::DeallocPartition { id: src }])
            .expect("drop");
    }
}

// ---------------------------------------------------------------------------
// E7: backup creation (§9.2.3).
// ---------------------------------------------------------------------------

/// Fits incremental-backup latency = a + b·(chunks in partition) +
/// c·(updated chunks), and sizes = a + b·(updated chunks), with the
/// paper's 512-byte chunks.
pub fn e7_backup_regression() {
    println!("== E7: incremental backup (§9.2.3) ==");
    println!("paper: 675 µs + 9 µs/chunk + 278 µs/updated chunk; size 456 B + 528 B/updated chunk");
    let platform = Platform::new(IoMode::Raw);
    let (store, p) = chunk_store_with_partition(&platform, paper_config());
    let archive = Arc::new(MemArchive::new());
    let backups = BackupStore::new(Arc::clone(&store), archive.clone());

    let mut lat_obs: Vec<(Vec<f64>, f64)> = Vec::new();
    let mut size_obs: Vec<(Vec<f64>, f64)> = Vec::new();
    for &population in &[200u64, 800, 2000] {
        // (Re)populate to `population` 512-byte chunks.
        while store.written_ranks(p).expect("ranks").len() < population as usize {
            let id = store.allocate_chunk(p).expect("allocate");
            store
                .commit(vec![CommitOp::WriteChunk {
                    id,
                    bytes: bytes(id.pos.rank, 512),
                }])
                .expect("write");
        }
        let base = backups
            .backup(
                &[BackupSpec {
                    source: p,
                    base: None,
                }],
                &format!("base-{population}"),
            )
            .expect("full backup");
        for &updated in &[1usize, 10, 50, 100] {
            for rank in 0..updated as u64 {
                store
                    .commit(vec![CommitOp::WriteChunk {
                        id: ChunkId::data(p, rank),
                        bytes: bytes(rank ^ 0x5555, 512),
                    }])
                    .expect("update");
            }
            let name = format!("incr-{population}-{updated}");
            let (d, info) = time(|| {
                backups
                    .backup(
                        &[BackupSpec {
                            source: p,
                            base: Some(base.snapshots[0]),
                        }],
                        &name,
                    )
                    .expect("incremental")
            });
            let size = archive.size_of(&info.names[0]).expect("size");
            lat_obs.push((
                vec![population as f64, updated as f64],
                d.as_secs_f64() * 1e6,
            ));
            size_obs.push((vec![updated as f64], size as f64));
            // Drop the throwaway snapshot to keep state bounded.
            store
                .commit(vec![CommitOp::DeallocPartition {
                    id: info.snapshots[0],
                }])
                .expect("drop snapshot");
        }
        store
            .commit(vec![CommitOp::DeallocPartition {
                id: base.snapshots[0],
            }])
            .expect("drop base");
    }
    let beta = ols(&lat_obs).expect("fit");
    println!(
        "  latency: {:.0} µs + {:.2} µs/chunk-in-partition + {:.0} µs/updated chunk (R² = {:.3})",
        beta[0],
        beta[1],
        beta[2],
        r_squared(&lat_obs, &beta)
    );
    let sbeta = ols(&size_obs).expect("fit");
    println!(
        "  size: {:.0} B + {:.0} B/updated chunk (R² = {:.3})",
        sbeta[0],
        sbeta[1],
        r_squared(&size_obs, &sbeta)
    );
}

// ---------------------------------------------------------------------------
// E8: space overhead (§9.3).
// ---------------------------------------------------------------------------

/// Measures per-chunk stored overhead and post-cleaning utilization.
pub fn e8_space() {
    println!("== E8: space overhead (§9.3) ==");
    println!("paper: ~52 B/chunk (8-byte-block cipher); map amortized by fanout 64; ~90% utilization with idle cleaning");
    let platform = Platform::new(IoMode::Raw);
    let (store, p) = chunk_store_with_partition(&platform, paper_config());
    let n = 2000u64;
    let size = 512usize;
    for i in 0..n {
        let id = store.allocate_chunk(p).expect("allocate");
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: bytes(i, size),
            }])
            .expect("write");
    }
    store.checkpoint().expect("checkpoint");
    // Live bytes vs logical bytes.
    let live: u64 = store.utilization().iter().map(|&u| u64::from(u)).sum();
    let logical = n * size as u64;
    println!(
        "  live-version overhead: {:.1} B/chunk over {}-byte chunks (live {} B / logical {} B)",
        (live.saturating_sub(logical)) as f64 / n as f64,
        size,
        live,
        logical
    );
    // Log utilization after cleaning to steady state.
    let mut passes = 0;
    while store.clean(4).expect("clean") > 0 && passes < 64 {
        passes += 1;
    }
    // Utilization = live bytes / occupied (non-free) log space, the metric
    // §9.3 speaks of ("the space utilization may be kept as high as 90%").
    let seg_size = 128 * 1024u64;
    let occupied_segments = store.utilization().iter().filter(|&&u| u > 0).count() as u64;
    let occupied = occupied_segments * seg_size;
    println!(
        "  {} occupied segments for {} B live after {} cleaning passes ({}% utilization)",
        occupied_segments,
        live,
        passes,
        live * 100 / occupied.max(1)
    );
}

// ---------------------------------------------------------------------------
// E9: code complexity (Figure 9).
// ---------------------------------------------------------------------------

/// Counts semicolons per module, as Figure 9 does for the original C++.
pub fn e9_code_complexity() {
    println!("== E9: code complexity (Figure 9) ==");
    println!("paper (C++ semicolons): collection 1388, object 512, backup 516, chunk 2570, util 1070, total 6056");
    let roots = [
        ("collection store", "crates/collection/src"),
        ("object store", "crates/object/src"),
        ("chunk+backup store", "crates/core/src"),
        ("crypto", "crates/crypto/src"),
        ("storage", "crates/storage/src"),
        ("xdb baseline", "crates/xdb/src"),
        ("facade", "crates/tdb/src"),
        ("bench harness", "crates/bench/src"),
    ];
    let base = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut total = 0usize;
    for (label, dir) in roots {
        let count = count_semicolons(&base.join(dir));
        total += count;
        println!("  {label:20} {count:>6} semicolons");
    }
    println!("  {:20} {total:>6} semicolons", "TOTAL");
}

fn count_semicolons(dir: &std::path::Path) -> usize {
    let mut count = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                count += count_semicolons(&path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(text) = std::fs::read_to_string(&path) {
                    count += text.bytes().filter(|&b| b == b';').count();
                }
            }
        }
    }
    count
}

// ---------------------------------------------------------------------------
// E10: workload operation counts (Figure 10).
// ---------------------------------------------------------------------------

/// Prints measured database-operation counts for bind and release.
pub fn e10_op_counts() {
    println!("== E10: operation counts (Figure 10) ==");
    println!("           read  update  delete  add  commit");
    for kind in [Kind::Release, Kind::Bind] {
        let paper = paper_counts(kind);
        let mut w = TdbWorkload::setup(IoMode::Raw, 200, paper_config());
        let stream = generate_stream(kind, 200, 11);
        let result = w.run(&stream);
        let c = result.counts;
        println!(
            "  {kind:?} paper    {:>4}  {:>6}  {:>6}  {:>3}  {:>6}",
            paper.reads, paper.updates, paper.deletes, paper.adds, paper.commits
        );
        println!(
            "  {kind:?} measured {:>4}  {:>6}  {:>6}  {:>3}  {:>6}",
            c.reads, c.updates, c.deletes, c.adds, c.commits
        );
    }
}

// ---------------------------------------------------------------------------
// E11: runtime comparison (Figure 11).
// ---------------------------------------------------------------------------

/// Runs release and bind on TDB and on the layered-crypto XDB under the
/// simulated 1999 disks, printing means over `runs` repetitions.
pub fn e11_comparison(runs: usize) {
    println!("== E11: runtime comparison, TDB vs XDB (Figure 11) ==");
    println!("paper: TDB outperforms XDB on both, 'primarily because of faster commits'");
    println!("mode: simulated 1999 disks (sleeping latency model)");
    for kind in [Kind::Release, Kind::Bind] {
        let mut tdb_times = Vec::new();
        let mut tdb_commit = Vec::new();
        let mut xdb_times = Vec::new();
        let mut xdb_commit = Vec::new();
        for run in 0..runs {
            let stream = generate_stream(kind, 200, 100 + run as u64);
            let mut t = TdbWorkload::setup(IoMode::SimulatedDisk, 200, paper_config());
            let r = t.run(&stream);
            tdb_times.push(r.elapsed);
            tdb_commit.push(r.commit_time);
            let mut x = XdbWorkload::setup(IoMode::SimulatedDisk, 200);
            let r = x.run(&stream);
            xdb_times.push(r.elapsed);
            xdb_commit.push(r.commit_time);
        }
        let stats = |v: &[Duration]| {
            let mean = v.iter().sum::<Duration>().as_secs_f64() * 1e3 / v.len() as f64;
            let var = v
                .iter()
                .map(|d| (d.as_secs_f64() * 1e3 - mean).powi(2))
                .sum::<f64>()
                / v.len() as f64;
            (mean, var.sqrt())
        };
        let (tm, ts) = stats(&tdb_times);
        let (tc, _) = stats(&tdb_commit);
        let (xm, xs) = stats(&xdb_times);
        let (xc, _) = stats(&xdb_commit);
        println!(
            "  {kind:?}: TDB {tm:8.0} ms (σ {ts:5.0}, commit {tc:8.0} ms) | XDB {xm:8.0} ms (σ {xs:5.0}, commit {xc:8.0} ms) | XDB/TDB = {:.2}x",
            xm / tm
        );
    }
}

// ---------------------------------------------------------------------------
// E12: TDB runtime breakdown (Figure 12).
// ---------------------------------------------------------------------------

/// Runs the release experiment with per-module accounting, printing the
/// Figure 12 rows (µ, σ, %), nested-call time excluded.
pub fn e12_breakdown(runs: usize) {
    println!("== E12: TDB runtime analysis, release experiment (Figure 12) ==");
    println!("paper: untrusted store write 81%, tamper-resistant 5%, encryption 4%, hashing 2%");
    println!("mode: simulated 1999 disks (sleeping latency model)");
    let mut totals: Vec<f64> = Vec::new();
    let mut per_module: std::collections::HashMap<&'static str, Vec<f64>> =
        std::collections::HashMap::new();
    for run in 0..runs {
        let stream = generate_stream(Kind::Release, 200, 500 + run as u64);
        let mut w = TdbWorkload::setup(IoMode::SimulatedDisk, 200, paper_config());
        metrics::enable();
        let result = w.run(&stream);
        metrics::disable();
        let snap = metrics::snapshot();
        totals.push(result.elapsed.as_secs_f64() * 1e3);
        for module in modules::ALL {
            per_module
                .entry(module)
                .or_default()
                .push(snap.get(module).copied().unwrap_or_default().as_secs_f64() * 1e3);
        }
    }
    let stats = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        (mean, var.sqrt())
    };
    let (total_mean, total_sd) = stats(&totals);
    println!(
        "  {:24} {:>9} {:>8} {:>5}",
        "module", "µ (ms)", "σ (ms)", "%"
    );
    println!(
        "  {:24} {:>9.0} {:>8.0} {:>5}",
        "DB TOTAL", total_mean, total_sd, 100
    );
    for module in modules::ALL {
        let (mean, sd) = stats(&per_module[module]);
        println!(
            "  {:24} {:>9.0} {:>8.0} {:>5.0}",
            module,
            mean,
            sd,
            mean * 100.0 / total_mean
        );
    }
}

// ---------------------------------------------------------------------------
// E13: concurrent read scaling (sharded read path vs. single lock).
// ---------------------------------------------------------------------------

const E13_CHUNKS: u64 = 64;
const E13_CHUNK_BYTES: usize = 1024;
const E13_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Builds a store with `read_shards` shards, a partition, and
/// `E13_CHUNKS` committed chunks, checkpointed so reads hit stable state.
fn e13_store(read_shards: usize) -> (Arc<ChunkStore>, Vec<ChunkId>) {
    let platform = Platform::new(IoMode::Raw);
    let config = ChunkStoreConfig {
        read_shards,
        read_cache_chunks: 2 * E13_CHUNKS as usize,
        ..paper_config()
    };
    let (store, p) = chunk_store_with_partition(&platform, config);
    for _ in 0..E13_CHUNKS {
        store.allocate_chunk(p).expect("allocate");
    }
    let ops = (0..E13_CHUNKS)
        .map(|rank| CommitOp::WriteChunk {
            id: ChunkId::data(p, rank),
            bytes: bytes(rank, E13_CHUNK_BYTES),
        })
        .collect();
    store.commit(ops).expect("commit");
    store.checkpoint().expect("checkpoint");
    let ids = (0..E13_CHUNKS).map(|rank| ChunkId::data(p, rank)).collect();
    (store, ids)
}

/// Aggregate read throughput (reads/s) with `threads` readers looping
/// round-robin over `ids` for `window`.
fn e13_throughput(store: &ChunkStore, ids: &[ChunkId], threads: usize, window: Duration) -> f64 {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    // Warm up: every chunk read once (populates the validated-body cache
    // where one exists, and faults nothing in the single-lock baseline).
    for id in ids {
        store.read(*id).expect("warm-up read");
    }
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let (stop, total) = (&stop, &total);
            s.spawn(move || {
                let mut i = t * ids.len() / threads;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    store.read(ids[i % ids.len()]).expect("read");
                    i += 1;
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();
    total.load(std::sync::atomic::Ordering::Relaxed) as f64 / elapsed.as_secs_f64()
}

/// Measures aggregate read throughput at 1/2/4/8 reader threads for the
/// single-lock baseline (`read_shards = 0`) and the sharded read path,
/// printing the scaling table and recording it in
/// `BENCH_concurrent_read.json`.
pub fn e13_concurrent_read() {
    println!("== E13: concurrent read scaling (sharded read path) ==");
    println!(
        "workload: {} chunks x {} B, round-robin readers, in-memory store",
        E13_CHUNKS, E13_CHUNK_BYTES
    );
    let window = Duration::from_millis(300);
    let mut results: Vec<(&str, usize, Vec<f64>)> =
        vec![("single-lock", 0, Vec::new()), ("sharded", 16, Vec::new())];
    for (name, shards, rates) in &mut results {
        let (store, ids) = e13_store(*shards);
        for threads in E13_THREADS {
            rates.push(e13_throughput(&store, &ids, threads, window));
        }
        let stats = store.stats();
        println!(
            "  {:12} reads/s at 1/2/4/8 threads: {:>9.0} {:>9.0} {:>9.0} {:>9.0}  \
             (fast hits {}, fallbacks {})",
            name,
            rates[0],
            rates[1],
            rates[2],
            rates[3],
            stats.read_fast_hits,
            stats.read_fallbacks
        );
        store.close().expect("close");
    }
    let base = &results[0].2;
    let sharded = &results[1].2;
    let speedup = sharded[3] / base[3];
    println!("  sharded/single-lock aggregate at 8 threads: {speedup:.2}x");
    let row = |rates: &[f64]| {
        E13_THREADS
            .iter()
            .zip(rates)
            .map(|(t, r)| format!("\"{t}\": {r:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"experiment\": \"concurrent_read\",\n  \"chunks\": {},\n  \
         \"chunk_bytes\": {},\n  \"window_ms\": {},\n  \
         \"reads_per_sec\": {{\n    \"single_lock\": {{ {} }},\n    \
         \"sharded_16\": {{ {} }}\n  }},\n  \"speedup_8_threads\": {:.2}\n}}\n",
        E13_CHUNKS,
        E13_CHUNK_BYTES,
        window.as_millis(),
        row(base),
        row(sharded),
        speedup
    );
    let path = "BENCH_concurrent_read.json";
    std::fs::write(path, json).expect("write benchmark artifact");
    println!("  wrote {path}");
}

// ---------------------------------------------------------------------------
// E14: group-commit write throughput (batched vs one flush per commit).
// ---------------------------------------------------------------------------

const E14_THREADS: [usize; 4] = [1, 2, 4, 8];
const E14_CHUNK_BYTES: usize = 512;

/// A fast but flush-dominated disk: commits still pay positioning per
/// write and a large flush cost (the shape group commit attacks), but the
/// benchmark finishes in seconds rather than reproducing 1999 latencies.
fn e14_disk() -> tdb_storage::DiskModel {
    tdb_storage::DiskModel {
        seek: Duration::from_micros(100),
        rotational: Duration::from_micros(50),
        bandwidth: 200 * 1024 * 1024,
        flush: Duration::from_millis(2),
        flush_doubling_threshold: None,
    }
}

/// Builds a store over the simulated disk with group commit on or off,
/// plus `E14_THREADS.len()` chunks (one per committer thread). Returns the
/// store, the disk's I/O stats handle, and the chunk ids.
fn e14_store(group_commit: bool) -> (Arc<ChunkStore>, Arc<tdb_storage::StoreStats>, Vec<ChunkId>) {
    use tdb_storage::{
        CounterOverTrusted, MemStore, MemTrustedStore, SharedUntrusted, SimClock, SimDiskStore,
        TrustedStore,
    };
    let disk: SharedUntrusted = Arc::new(SimDiskStore::new(
        Arc::new(MemStore::new()) as SharedUntrusted,
        e14_disk(),
        Arc::new(SimClock::new(true)),
    ));
    let stats = disk.stats();
    let backend = tdb::TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
        MemTrustedStore::new(64),
    )
        as Arc<dyn TrustedStore>)));
    let config = ChunkStoreConfig {
        group_commit,
        ..paper_config()
    };
    let store = Arc::new(
        ChunkStore::create(disk, backend, tdb_crypto::SecretKey::random(24), config)
            .expect("create chunk store"),
    );
    let p = store.allocate_partition().expect("allocate partition");
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .expect("create partition");
    let max_threads = *E14_THREADS.iter().max().expect("non-empty");
    let mut ids = Vec::with_capacity(max_threads);
    for _ in 0..max_threads {
        ids.push(store.allocate_chunk(p).expect("allocate chunk"));
    }
    (store, stats, ids)
}

/// Aggregate commit throughput (commits/s) with `threads` committers each
/// rewriting their own chunk for `window`, plus the untrusted-store write
/// and flush counts per commit over the run.
fn e14_throughput(
    store: &ChunkStore,
    stats: &tdb_storage::StoreStats,
    ids: &[ChunkId],
    threads: usize,
    window: Duration,
) -> (f64, f64, f64) {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let before = stats.snapshot();
    let start = Instant::now();
    std::thread::scope(|s| {
        for (t, &id) in ids.iter().enumerate().take(threads) {
            let (stop, total) = (&stop, &total);
            s.spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    store
                        .commit(vec![CommitOp::WriteChunk {
                            id,
                            bytes: bytes(t as u64, E14_CHUNK_BYTES),
                        }])
                        .expect("commit");
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();
    let commits = total.load(std::sync::atomic::Ordering::Relaxed).max(1);
    let io = stats.snapshot().since(&before);
    (
        commits as f64 / elapsed.as_secs_f64(),
        io.writes as f64 / commits as f64,
        io.flushes as f64 / commits as f64,
    )
}

/// Measures aggregate commit throughput at 1/2/4/8 committer threads with
/// group commit off (the paper's one-flush-per-commit write path) and on
/// (batched, presealed, coalesced), printing the scaling table plus
/// untrusted-store writes/flushes per commit and recording everything in
/// `BENCH_commit_throughput.json`.
pub fn e14_commit_throughput() {
    println!("== E14: group-commit write throughput ==");
    println!(
        "workload: per-thread single-chunk commits of {E14_CHUNK_BYTES} B, \
         flush-dominated simulated disk"
    );
    /// (commits/s, untrusted writes per commit, flushes per commit).
    type Rates = (f64, f64, f64);
    let window = Duration::from_millis(300);
    let mut results: Vec<(&str, bool, Vec<Rates>)> = vec![
        ("per-commit flush", false, Vec::new()),
        ("group commit", true, Vec::new()),
    ];
    for (name, group_commit, rows) in &mut results {
        let (store, stats, ids) = e14_store(*group_commit);
        for threads in E14_THREADS {
            rows.push(e14_throughput(&store, &stats, &ids, threads, window));
        }
        let s = store.stats();
        println!(
            "  {:16} commits/s at 1/2/4/8 threads: {:>7.0} {:>7.0} {:>7.0} {:>7.0}  \
             (batches {}, batched commits {})",
            name, rows[0].0, rows[1].0, rows[2].0, rows[3].0, s.commit_batches, s.batched_commits
        );
        println!(
            "  {:16} per-commit I/O at 8 threads: {:.2} writes, {:.2} flushes",
            "", rows[3].1, rows[3].2
        );
        store.close().expect("close");
    }
    let base = &results[0].2;
    let grouped = &results[1].2;
    let speedup = grouped[3].0 / base[3].0;
    println!("  group-commit/per-commit-flush aggregate at 8 threads: {speedup:.2}x");
    let row = |rows: &[(f64, f64, f64)]| {
        E14_THREADS
            .iter()
            .zip(rows)
            .map(|(t, r)| format!("\"{t}\": {:.0}", r.0))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let io = |r: &(f64, f64, f64)| format!("{{ \"writes\": {:.2}, \"flushes\": {:.2} }}", r.1, r.2);
    let json = format!(
        "{{\n  \"experiment\": \"commit_throughput\",\n  \"chunk_bytes\": {},\n  \
         \"window_ms\": {},\n  \
         \"commits_per_sec\": {{\n    \"per_commit_flush\": {{ {} }},\n    \
         \"group_commit\": {{ {} }}\n  }},\n  \
         \"io_per_commit_8_threads\": {{\n    \"per_commit_flush\": {},\n    \
         \"group_commit\": {}\n  }},\n  \"speedup_8_threads\": {:.2}\n}}\n",
        E14_CHUNK_BYTES,
        window.as_millis(),
        row(base),
        row(grouped),
        io(&base[3]),
        io(&grouped[3]),
        speedup
    );
    let path = "BENCH_commit_throughput.json";
    std::fs::write(path, json).expect("write benchmark artifact");
    println!("  wrote {path}");
}

// ---------------------------------------------------------------------------
// E15: cleaning under log pressure (background slices vs foreground clean).
// ---------------------------------------------------------------------------

const E15_THREADS: usize = 4;
const E15_COMMITS_PER_THREAD: usize = 250;
const E15_CHUNK_BYTES: usize = 512;
const E15_IDS_PER_THREAD: usize = 8;
const E15_MAX_SEGMENTS: u32 = 24;
const E15_SEGMENT_SIZE: u32 = 4096;

/// A bounded log the workload overwrites many times over: every commit
/// obsoletes an earlier version, so the store lives or dies by cleaning.
fn e15_config(background: bool) -> ChunkStoreConfig {
    ChunkStoreConfig {
        segment_size: E15_SEGMENT_SIZE,
        max_segments: E15_MAX_SEGMENTS,
        checkpoint_threshold: 16,
        background_maintenance: background,
        clean_slice_segments: 1,
        clean_low_water: 3,
        clean_high_water: 8,
        ..paper_config()
    }
}

fn e15_store(background: bool) -> (Arc<ChunkStore>, Vec<Vec<ChunkId>>) {
    use tdb_storage::{
        CounterOverTrusted, MemStore, MemTrustedStore, SharedUntrusted, SimClock, SimDiskStore,
        TrustedStore,
    };
    let disk: SharedUntrusted = Arc::new(SimDiskStore::new(
        Arc::new(MemStore::new()) as SharedUntrusted,
        e14_disk(),
        Arc::new(SimClock::new(true)),
    ));
    let backend = tdb::TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
        MemTrustedStore::new(64),
    )
        as Arc<dyn TrustedStore>)));
    let store = Arc::new(
        ChunkStore::create(
            disk,
            backend,
            tdb_crypto::SecretKey::random(24),
            e15_config(background),
        )
        .expect("create chunk store"),
    );
    let p = store.allocate_partition().expect("allocate partition");
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .expect("create partition");
    let ids = (0..E15_THREADS)
        .map(|_| {
            (0..E15_IDS_PER_THREAD)
                .map(|_| store.allocate_chunk(p).expect("allocate chunk"))
                .collect()
        })
        .collect();
    (store, ids)
}

/// Runs the overwrite workload, returning every commit's client-observed
/// latency (including any inline maintenance the caller had to do) plus
/// aggregate throughput. Foreground mode does what a caller-driven store
/// must: watch the free-segment estimate and, below a low-water mark,
/// checkpoint and clean the whole backlog inside the commit path — a full
/// log has no room left to relocate into, so reacting to `OutOfSpace`
/// alone wedges. Background mode just commits; the maintenance thread's
/// slices and admission gate do the pacing.
fn e15_run(store: &ChunkStore, ids: &[Vec<ChunkId>], background: bool) -> (Vec<Duration>, f64) {
    use tdb_core::CoreError;
    let latencies = std::sync::Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for (t, my_ids) in ids.iter().enumerate() {
            let latencies = &latencies;
            s.spawn(move || {
                let mut mine = Vec::with_capacity(E15_COMMITS_PER_THREAD);
                for round in 0..E15_COMMITS_PER_THREAD {
                    let id = my_ids[round % my_ids.len()];
                    let commit_start = Instant::now();
                    if !background && store.free_segment_estimate().is_some_and(|free| free < 8) {
                        // Clean only the garbage-heavy tail of the backlog:
                        // relocating fully-live segments reclaims nothing
                        // and burns the very headroom cleaning needs.
                        let _ = store.checkpoint();
                        let _ = store.clean(8);
                    }
                    let mut patience = 100u32;
                    loop {
                        let ops = vec![CommitOp::WriteChunk {
                            id,
                            bytes: bytes((t * 1000 + round) as u64, E15_CHUNK_BYTES),
                        }];
                        match store.commit(ops) {
                            Ok(()) => break,
                            Err(CoreError::OutOfSpace) if patience > 0 => {
                                patience -= 1;
                                if background {
                                    std::thread::sleep(Duration::from_millis(1));
                                } else {
                                    let _ = store.checkpoint();
                                    let _ = store.clean(8);
                                }
                            }
                            Err(CoreError::DegradedMode(_)) if patience > 0 => {
                                patience -= 1;
                                let _ = store.try_heal();
                            }
                            Err(e) => panic!("commit failed: {e}"),
                        }
                    }
                    mine.push(commit_start.elapsed());
                }
                latencies.lock().unwrap().append(&mut mine);
            });
        }
    });
    let elapsed = start.elapsed();
    let latencies = latencies.into_inner().unwrap();
    let rate = latencies.len() as f64 / elapsed.as_secs_f64();
    (latencies, rate)
}

fn e15_percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Measures steady-state commit throughput and latency percentiles under
/// log pressure with caller-driven foreground cleaning vs the background
/// maintenance runtime (bounded slices + admission control), printing the
/// comparison and recording it in `BENCH_cleaner.json`.
pub fn e15_cleaner() {
    println!("== E15: cleaning under log pressure (foreground vs background) ==");
    println!(
        "workload: {E15_THREADS} threads x {E15_COMMITS_PER_THREAD} overwrites of \
         {E15_CHUNK_BYTES} B, {E15_MAX_SEGMENTS}-segment bounded log, \
         flush-dominated simulated disk"
    );
    let mut rows: Vec<(&str, f64, Duration, Duration)> = Vec::new();
    let mut background_stats = None;
    for (name, background) in [("foreground clean", false), ("background slices", true)] {
        let (store, ids) = e15_store(background);
        let (mut latencies, rate) = e15_run(&store, &ids, background);
        latencies.sort_unstable();
        let p50 = e15_percentile(&latencies, 0.50);
        let p99 = e15_percentile(&latencies, 0.99);
        let s = store.stats();
        println!(
            "  {:17} {:>7.0} commits/s, p50 {:>7.0} us, p99 {:>7.0} us  \
             (segments cleaned {}, slices {}, throttle waits {})",
            name,
            rate,
            p50.as_secs_f64() * 1e6,
            p99.as_secs_f64() * 1e6,
            s.segments_cleaned,
            s.clean_slices,
            s.commit_throttle_waits
        );
        if background {
            background_stats = Some(s);
        }
        rows.push((name, rate, p50, p99));
        store.close().expect("close");
    }
    let p99_improvement = rows[0].3.as_secs_f64() / rows[1].3.as_secs_f64();
    println!("  foreground/background p99 commit latency: {p99_improvement:.2}x");
    let stats = background_stats.expect("background run recorded stats");
    let mode = |r: &(&str, f64, Duration, Duration)| {
        format!(
            "{{ \"commits_per_sec\": {:.0}, \"p50_us\": {:.0}, \"p99_us\": {:.0} }}",
            r.1,
            r.2.as_secs_f64() * 1e6,
            r.3.as_secs_f64() * 1e6
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"cleaner\",\n  \"threads\": {},\n  \
         \"commits\": {},\n  \"chunk_bytes\": {},\n  \"max_segments\": {},\n  \
         \"segment_size\": {},\n  \"foreground_clean\": {},\n  \
         \"background_slices\": {},\n  \"background_maintenance\": {{\n    \
         \"segments_cleaned\": {},\n    \"chunks_relocated\": {},\n    \
         \"bytes_reclaimed\": {},\n    \"clean_slices\": {},\n    \
         \"maintenance_wakeups\": {},\n    \"commit_throttle_waits\": {}\n  }},\n  \
         \"p99_improvement\": {:.2}\n}}\n",
        E15_THREADS,
        E15_THREADS * E15_COMMITS_PER_THREAD,
        E15_CHUNK_BYTES,
        E15_MAX_SEGMENTS,
        E15_SEGMENT_SIZE,
        mode(&rows[0]),
        mode(&rows[1]),
        stats.segments_cleaned,
        stats.chunks_relocated,
        stats.bytes_reclaimed,
        stats.clean_slices,
        stats.maintenance_wakeups,
        stats.commit_throttle_waits,
        p99_improvement
    );
    let path = "BENCH_cleaner.json";
    std::fs::write(path, json).expect("write benchmark artifact");
    println!("  wrote {path}");
}

// ---------------------------------------------------------------------------
// E16: shard scaling (fleet throughput and migration under load).
// ---------------------------------------------------------------------------

const E16_THREADS: usize = 8;
const E16_CHUNK_BYTES: usize = 512;
const E16_FLEETS: [usize; 3] = [1, 2, 4];

/// A flush-dominated disk per shard: each shard's commit path is bound by
/// its own device latency, so a fleet's aggregate throughput measures how
/// well independent fault domains overlap their I/O, not CPU parallelism.
fn e16_disk() -> tdb_storage::DiskModel {
    tdb_storage::DiskModel {
        seek: Duration::from_micros(50),
        rotational: Duration::from_micros(25),
        bandwidth: 200 * 1024 * 1024,
        flush: Duration::from_millis(1),
        flush_doubling_threshold: None,
    }
}

/// Builds a `shards`-wide fleet, each shard over its own simulated disk,
/// with one logical partition (and one pre-written chunk) per committer
/// thread. The manager's least-loaded placement spreads the partitions
/// evenly across shards.
fn e16_fleet(shards: usize) -> (tdb::ShardManager, Vec<(tdb::LogicalId, u64)>) {
    use tdb::{ShardManager, ShardOp, ShardSpec, TrustedBackend};
    use tdb_storage::{
        ArchivalStore, CounterOverTrusted, MemStore, MemTrustedStore, SharedUntrusted, SimClock,
        SimDiskStore, TrustedStore,
    };
    let specs = (0..shards)
        .map(|_| ShardSpec {
            untrusted: Arc::new(SimDiskStore::new(
                Arc::new(MemStore::new()) as SharedUntrusted,
                e16_disk(),
                Arc::new(SimClock::new(true)),
            )) as SharedUntrusted,
            trusted: TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
                MemTrustedStore::new(64),
            )
                as Arc<dyn TrustedStore>))),
            // One flush per commit: the scaling signal is shard count, not
            // batching.
            config: ChunkStoreConfig {
                group_commit: false,
                ..paper_config()
            },
        })
        .collect();
    let mgr = ShardManager::create(
        specs,
        Arc::new(MemStore::new()) as SharedUntrusted,
        Arc::new(MemArchive::new()) as Arc<dyn ArchivalStore>,
        tdb_crypto::SecretKey::random(24),
    )
    .expect("create shard fleet");
    let mut slots = Vec::with_capacity(E16_THREADS);
    for t in 0..E16_THREADS {
        let logical = mgr
            .create_partition(CryptoParams::paper_default())
            .expect("create logical partition");
        let rank = mgr.allocate_chunk(logical).expect("allocate chunk");
        mgr.commit(
            logical,
            vec![ShardOp::Write {
                rank,
                bytes: bytes(t as u64, E16_CHUNK_BYTES),
            }],
        )
        .expect("seed chunk");
        slots.push((logical, rank));
    }
    (mgr, slots)
}

/// Aggregate fleet throughput: one committer thread per logical partition,
/// each rewriting its own chunk through the manager for `window`.
fn e16_throughput(
    mgr: &tdb::ShardManager,
    slots: &[(tdb::LogicalId, u64)],
    window: Duration,
) -> f64 {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for (t, &(logical, rank)) in slots.iter().enumerate() {
            let (stop, total) = (&stop, &total);
            s.spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    mgr.commit(
                        logical,
                        vec![tdb::ShardOp::Write {
                            rank,
                            bytes: bytes(t as u64, E16_CHUNK_BYTES),
                        }],
                    )
                    .expect("commit");
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let commits = total.load(std::sync::atomic::Ordering::Relaxed).max(1);
    commits as f64 / start.elapsed().as_secs_f64()
}

/// Commit latency while a partition migrates between shards under load:
/// four writers keep committing (retrying transient `Busy` from the
/// cutover pause) while the victim partition moves to the other shard.
/// Returns (p50, p99, busy retries, migration wall time, outcome).
fn e16_migration_under_load() -> (Duration, Duration, u64, Duration, &'static str) {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use tdb_core::FaultClass;
    let (mgr, slots) = e16_fleet(2);
    let victim = slots[0].0;
    let (src, _) = mgr.locate(victim).expect("locate victim");
    let dst = tdb::ShardId(1 - src.0);
    let stop = AtomicBool::new(false);
    let busy = AtomicU64::new(0);
    let latencies = std::sync::Mutex::new(Vec::new());
    let mut outcome = "Pending";
    let mut migration = Duration::ZERO;
    let mgr = &mgr;
    std::thread::scope(|s| {
        for (t, &(logical, rank)) in slots.iter().take(4).enumerate() {
            let (stop, busy, latencies) = (&stop, &busy, &latencies);
            s.spawn(move || {
                let mut mine = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let start = Instant::now();
                    match mgr.commit(
                        logical,
                        vec![tdb::ShardOp::Write {
                            rank,
                            bytes: bytes(t as u64, E16_CHUNK_BYTES),
                        }],
                    ) {
                        Ok(()) => mine.push(start.elapsed()),
                        Err(e) if e.fault_class() == FaultClass::Transient => {
                            busy.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        Err(e) => panic!("commit under migration: {e}"),
                    }
                }
                latencies.lock().expect("latencies").extend(mine);
            });
        }
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        let result = mgr.migrate(victim, dst).expect("migrate under load");
        migration = start.elapsed();
        outcome = match result {
            tdb::MigrationOutcome::Completed => "Completed",
            tdb::MigrationOutcome::RolledBack => "RolledBack",
            tdb::MigrationOutcome::Pending => "Pending",
        };
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
    });
    let mut sorted = latencies.into_inner().expect("latencies");
    sorted.sort();
    let p50 = e15_percentile(&sorted, 0.50);
    let p99 = e15_percentile(&sorted, 0.99);
    mgr.close().expect("close fleet");
    (p50, p99, busy.load(Ordering::Relaxed), migration, outcome)
}

/// Measures aggregate commit throughput at 1/2/4 shards (8 committer
/// threads round-robined over the fleet by least-loaded placement) and
/// commit latency during an online partition migration, recording
/// everything in `BENCH_shard_scaling.json`.
pub fn e16_shard_scaling() {
    println!("== E16: shard scaling ==");
    println!(
        "workload: {E16_THREADS} threads, per-thread single-chunk commits of \
         {E16_CHUNK_BYTES} B, flush-dominated simulated disk per shard"
    );
    let window = Duration::from_millis(300);
    let mut rates = Vec::new();
    for shards in E16_FLEETS {
        let (mgr, slots) = e16_fleet(shards);
        let rate = e16_throughput(&mgr, &slots, window);
        println!("  {shards} shard(s): {rate:>7.0} commits/s");
        mgr.close().expect("close fleet");
        rates.push(rate);
    }
    let speedup = rates[2] / rates[0];
    println!("  4-shard/1-shard aggregate: {speedup:.2}x");
    let (p50, p99, busy, migration, outcome) = e16_migration_under_load();
    println!(
        "  migration under load: commit p50 {:.0} us, p99 {:.0} us, \
         {busy} transient-busy retries, migration {:.0} ms ({outcome})",
        p50.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6,
        migration.as_secs_f64() * 1e3,
    );
    let rows = E16_FLEETS
        .iter()
        .zip(&rates)
        .map(|(s, r)| format!("\"{s}\": {r:.0}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"experiment\": \"shard_scaling\",\n  \"threads\": {},\n  \
         \"chunk_bytes\": {},\n  \"window_ms\": {},\n  \
         \"commits_per_sec\": {{ {} }},\n  \"speedup_4_shards\": {:.2},\n  \
         \"migration_under_load\": {{\n    \"writer_threads\": 4,\n    \
         \"commit_p50_us\": {:.0},\n    \"commit_p99_us\": {:.0},\n    \
         \"busy_retries\": {},\n    \"migration_ms\": {:.0},\n    \
         \"outcome\": \"{}\"\n  }}\n}}\n",
        E16_THREADS,
        E16_CHUNK_BYTES,
        window.as_millis(),
        rows,
        speedup,
        p50.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6,
        busy,
        migration.as_secs_f64() * 1e3,
        outcome
    );
    let path = "BENCH_shard_scaling.json";
    std::fs::write(path, json).expect("write benchmark artifact");
    println!("  wrote {path}");
}

// ---------------------------------------------------------------------------
// E17: MVCC snapshot-isolation transaction throughput vs the paper's
// single-writer object layer (§7 has one transaction at a time; MVCC lets
// non-conflicting transactions prepare concurrently and ride one group
// commit).
// ---------------------------------------------------------------------------

const E17_THREADS: [usize; 4] = [1, 2, 4, 8];
const E17_PAYLOAD: usize = 256;

/// An object store over the flush-dominated simulated disk, group commit
/// on, with one pre-committed object per potential committer thread.
fn e17_objects(mvcc: bool) -> (Arc<tdb::ObjectStore>, Vec<tdb::ObjectId>) {
    use tdb::{ObjectStore, ObjectStoreConfig, TypeRegistry};
    use tdb_storage::{
        CounterOverTrusted, MemStore, MemTrustedStore, SharedUntrusted, SimClock, SimDiskStore,
        TrustedStore,
    };

    use crate::workload::{unpickle_rec, Rec, REC_TAG};

    let disk: SharedUntrusted = Arc::new(SimDiskStore::new(
        Arc::new(MemStore::new()) as SharedUntrusted,
        e14_disk(),
        Arc::new(SimClock::new(true)),
    ));
    let backend = tdb::TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
        MemTrustedStore::new(64),
    )
        as Arc<dyn TrustedStore>)));
    let chunks = Arc::new(
        ChunkStore::create(
            disk,
            backend,
            tdb_crypto::SecretKey::random(24),
            ChunkStoreConfig {
                group_commit: true,
                ..paper_config()
            },
        )
        .expect("create chunk store"),
    );
    let p = chunks.allocate_partition().expect("allocate partition");
    chunks
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .expect("create partition");
    let mut registry = TypeRegistry::new();
    registry.register(REC_TAG, unpickle_rec);
    let objects = ObjectStore::new(
        chunks,
        registry,
        ObjectStoreConfig {
            mvcc,
            ..ObjectStoreConfig::default()
        },
    );
    let max_threads = *E17_THREADS.iter().max().expect("non-empty");
    let mut ids = Vec::with_capacity(max_threads);
    for t in 0..max_threads {
        let rec = Arc::new(Rec {
            collection: t as u8,
            payload: bytes(t as u64, E17_PAYLOAD),
        });
        let id = objects
            .run(|tx| tx.create(p, Arc::clone(&rec) as _))
            .expect("seed object");
        ids.push(id);
    }
    (objects, ids)
}

/// Transactions/s with `threads` committers, each rewriting its own
/// object for `window`. `single_writer_lock` models the paper's §7
/// discipline: one transaction system-wide, serialized externally.
fn e17_throughput(
    objects: &tdb::ObjectStore,
    ids: &[tdb::ObjectId],
    threads: usize,
    window: Duration,
    single_writer_lock: Option<&std::sync::Mutex<()>>,
) -> f64 {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use crate::workload::Rec;

    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for (t, &id) in ids.iter().enumerate().take(threads) {
            let (stop, total) = (&stop, &total);
            s.spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let rec = Arc::new(Rec {
                        collection: t as u8,
                        payload: bytes(n ^ (t as u64) << 32, E17_PAYLOAD),
                    });
                    match single_writer_lock {
                        Some(lock) => {
                            let _guard = lock.lock().expect("single-writer lock");
                            objects
                                .run(|tx| tx.put(id, Arc::clone(&rec) as _))
                                .expect("single-writer commit");
                        }
                        None => {
                            objects
                                .run_mvcc(|tx| tx.put(id, Arc::clone(&rec) as _))
                                .expect("mvcc commit");
                        }
                    }
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();
    total.load(std::sync::atomic::Ordering::Relaxed).max(1) as f64 / elapsed.as_secs_f64()
}

/// Measures transactions/s at 1/2/4/8 threads for the externally
/// serialized single-writer path and for concurrent MVCC transactions on
/// the same store shape, printing the scaling table and recording it in
/// `BENCH_mvcc.json`.
pub fn e17_mvcc() {
    println!("== E17: MVCC transaction throughput ==");
    println!(
        "workload: per-thread single-object transactions of {E17_PAYLOAD} B, \
         flush-dominated simulated disk, group commit on"
    );
    let window = Duration::from_millis(300);

    let (objects, ids) = e17_objects(false);
    let lock = std::sync::Mutex::new(());
    let single: Vec<f64> = E17_THREADS
        .iter()
        .map(|&t| e17_throughput(&objects, &ids, t, window, Some(&lock)))
        .collect();
    drop(objects);

    let (objects, ids) = e17_objects(true);
    let mvcc: Vec<f64> = E17_THREADS
        .iter()
        .map(|&t| e17_throughput(&objects, &ids, t, window, None))
        .collect();
    let stats = objects.mvcc_stats().expect("mvcc stats");
    drop(objects);

    for (name, rows) in [("single writer", &single), ("mvcc", &mvcc)] {
        println!(
            "  {:14} txns/s at 1/2/4/8 threads: {:>7.0} {:>7.0} {:>7.0} {:>7.0}",
            name, rows[0], rows[1], rows[2], rows[3]
        );
    }
    let speedup = mvcc[3] / single[3];
    println!(
        "  mvcc/single-writer aggregate at 8 threads: {speedup:.2}x \
         ({} commits, {} conflicts)",
        stats.committed, stats.conflicts
    );
    let row = |rows: &[f64]| {
        E17_THREADS
            .iter()
            .zip(rows)
            .map(|(t, r)| format!("\"{t}\": {r:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"experiment\": \"mvcc_throughput\",\n  \"payload_bytes\": {},\n  \
         \"window_ms\": {},\n  \
         \"txns_per_sec\": {{\n    \"single_writer\": {{ {} }},\n    \
         \"mvcc\": {{ {} }}\n  }},\n  \
         \"mvcc_commits\": {},\n  \"mvcc_conflicts\": {},\n  \
         \"speedup_8_threads\": {:.2}\n}}\n",
        E17_PAYLOAD,
        window.as_millis(),
        row(&single),
        row(&mvcc),
        stats.committed,
        stats.conflicts,
        speedup
    );
    let path = "BENCH_mvcc.json";
    std::fs::write(path, json).expect("write benchmark artifact");
    println!("  wrote {path}");
}

// ---------------------------------------------------------------------------
// E18: validation overhead — lazy vs eager Merkle materialization.
// ---------------------------------------------------------------------------

const E18_CHUNKS: u64 = 1024;
const E18_CHUNK_BYTES: usize = 128;
const E18_ITERS: usize = 30;
const E18_QUERIES: usize = 6;

/// Builds a store (lazy or eager) holding `E18_CHUNKS` committed,
/// *uncheckpointed* chunks, so every root/proof query walks a fully dirty
/// tree — the worst case the accumulator attacks.
fn e18_store(lazy: bool, sealed: bool) -> (Arc<ChunkStore>, tdb::PartitionId, Vec<ChunkId>) {
    let platform = Platform::new(IoMode::Raw);
    let config = ChunkStoreConfig {
        // Never checkpoint during the run: the dirty tree must persist.
        checkpoint_threshold: 10_000_000,
        lazy_integrity: lazy,
        ..paper_config()
    };
    let store = Arc::new(
        ChunkStore::create(
            Arc::clone(&platform.untrusted),
            platform.counter_backend(),
            platform.secret.clone(),
            config,
        )
        .expect("create chunk store"),
    );
    let p = store.allocate_partition().expect("allocate partition");
    let params = if sealed {
        CryptoParams::generate(CipherKind::Des, HashKind::Sha1)
    } else {
        CryptoParams::generate(CipherKind::Null, HashKind::Null)
    };
    store
        .commit(vec![CommitOp::CreatePartition { id: p, params }])
        .expect("create partition");
    for _ in 0..E18_CHUNKS {
        store.allocate_chunk(p).expect("allocate");
    }
    let ops = (0..E18_CHUNKS)
        .map(|rank| CommitOp::WriteChunk {
            id: ChunkId::data(p, rank),
            bytes: bytes(rank, E18_CHUNK_BYTES),
        })
        .collect();
    store.commit(ops).expect("commit");
    let ids = (0..E18_CHUNKS).map(|rank| ChunkId::data(p, rank)).collect();
    (store, p, ids)
}

/// Iterations/s of the proof-heavy loop: one small overwrite commit
/// followed by `E18_QUERIES` root + proof queries against the dirty tree.
fn e18_throughput(store: &ChunkStore, p: tdb::PartitionId, ids: &[ChunkId]) -> f64 {
    let run = |iters: usize, offset: usize| {
        for i in offset..offset + iters {
            store
                .commit(vec![CommitOp::WriteChunk {
                    id: ids[i % ids.len()],
                    bytes: bytes(i as u64, E18_CHUNK_BYTES),
                }])
                .expect("commit");
            for q in 0..E18_QUERIES {
                let root = store.snapshot_root(p).expect("root");
                let pair = store
                    .read_with_proof(ids[(i * E18_QUERIES + q) % ids.len()])
                    .expect("proof");
                std::hint::black_box((root, pair));
            }
        }
    };
    run(2, 0); // Warm caches (map chunks, memo) outside the window.
    let start = Instant::now();
    run(E18_ITERS, 2);
    E18_ITERS as f64 / start.elapsed().as_secs_f64()
}

/// Measures the sealed-vs-plaintext throughput gap of a proof-heavy
/// workload under eager and lazy integrity, printing the comparison and
/// recording it in `BENCH_validation_overhead.json`. The headline number
/// is `gap_eager / gap_lazy`: how much of the validation overhead the
/// accumulator makes disappear.
pub fn e18_validation_overhead() {
    println!("== E18: validation overhead (lazy Merkle materialization) ==");
    println!(
        "workload: {} chunks x {} B, {} iterations of 1 commit + {} root/proof \
         queries on a dirty tree, in-memory store",
        E18_CHUNKS, E18_CHUNK_BYTES, E18_ITERS, E18_QUERIES
    );
    let mut tput = std::collections::BTreeMap::new();
    let mut lazy_counters = (0u64, 0u64);
    for lazy in [false, true] {
        for sealed in [false, true] {
            let (store, p, ids) = e18_store(lazy, sealed);
            let rate = e18_throughput(&store, p, &ids);
            let mode = if lazy { "lazy" } else { "eager" };
            let prot = if sealed { "sealed" } else { "plain" };
            println!("  {mode:5} {prot:6} {rate:>8.1} iters/s");
            if lazy && sealed {
                let stats = store.stats();
                lazy_counters = (stats.lazy_hash_hits, stats.lazy_hash_recomputes);
            }
            tput.insert(format!("{mode}_{prot}"), rate);
            store.close().expect("close");
        }
    }
    let gap_eager = tput["eager_plain"] / tput["eager_sealed"];
    let gap_lazy = tput["lazy_plain"] / tput["lazy_sealed"];
    let improvement = gap_eager / gap_lazy;
    println!("  sealed-vs-plaintext gap: eager {gap_eager:.2}x, lazy {gap_lazy:.2}x");
    println!(
        "  validation-gap shrink (eager/lazy): {improvement:.2}x \
         (memo hits {}, recomputes {})",
        lazy_counters.0, lazy_counters.1
    );
    let json = format!(
        "{{\n  \"experiment\": \"validation_overhead\",\n  \"chunks\": {},\n  \
         \"chunk_bytes\": {},\n  \"iterations\": {},\n  \"queries_per_commit\": {},\n  \
         \"iters_per_sec\": {{\n    \"eager_plain\": {:.1},\n    \"eager_sealed\": {:.1},\n    \
         \"lazy_plain\": {:.1},\n    \"lazy_sealed\": {:.1}\n  }},\n  \
         \"gap_eager\": {:.3},\n  \"gap_lazy\": {:.3},\n  \
         \"gap_improvement\": {:.3},\n  \
         \"lazy_hash_hits\": {},\n  \"lazy_hash_recomputes\": {}\n}}\n",
        E18_CHUNKS,
        E18_CHUNK_BYTES,
        E18_ITERS,
        E18_QUERIES,
        tput["eager_plain"],
        tput["eager_sealed"],
        tput["lazy_plain"],
        tput["lazy_sealed"],
        gap_eager,
        gap_lazy,
        improvement,
        lazy_counters.0,
        lazy_counters.1
    );
    let path = "BENCH_validation_overhead.json";
    std::fs::write(path, json).expect("write benchmark artifact");
    println!("  wrote {path}");
}

// ---------------------------------------------------------------------------
// E19: YCSB-style workload suite and chunk-body compression (ISSUE 9).
// ---------------------------------------------------------------------------

const E19_THREADS: [usize; 4] = [1, 2, 4, 8];
const E19_WORKLOADS: [YcsbWorkload; 4] = [
    YcsbWorkload::A,
    YcsbWorkload::B,
    YcsbWorkload::C,
    YcsbWorkload::E,
];

fn e19_config() -> YcsbConfig {
    YcsbConfig::default()
}

/// Runs the A/B/C/E suite at 1/2/4/8 threads with the compression knob
/// off and on, printing the throughput tables, then measures compression
/// effectiveness (log bytes appended, ratio, counters) on the
/// update-heavy workload A, recording `BENCH_ycsb.json` and
/// `BENCH_compression.json`.
pub fn e19_ycsb(seed: u64) {
    let cfg = e19_config();
    println!("== E19: YCSB-style suite (chunk-body compression) ==");
    println!(
        "workload: {} keys x {} B zipfian(0.99) records, {} ops/thread, \
         in-memory store, seed {seed:#x}",
        cfg.population, cfg.record_bytes, cfg.ops_per_thread
    );

    // -- Part 1: throughput suite, knob off vs on -------------------------
    let mut rates: std::collections::BTreeMap<String, Vec<f64>> = std::collections::BTreeMap::new();
    for compression in [false, true] {
        let mode = if compression { "on" } else { "off" };
        let driver = YcsbDriver::setup(
            ChunkStoreConfig {
                compression,
                ..paper_config()
            },
            cfg.clone(),
        );
        for wl in E19_WORKLOADS {
            let mut row = Vec::new();
            for threads in E19_THREADS {
                let res = driver.run(wl, threads, seed);
                row.push(res.ops_per_sec());
            }
            println!(
                "  {} compression {:3}  ops/s at 1/2/4/8 threads: \
                 {:>9.0} {:>9.0} {:>9.0} {:>9.0}",
                wl.letter(),
                mode,
                row[0],
                row[1],
                row[2],
                row[3]
            );
            rates.insert(format!("{}_{}", wl.letter(), mode), row);
        }
    }

    let row_json = |rates: &[f64]| {
        E19_THREADS
            .iter()
            .zip(rates)
            .map(|(t, r)| format!("\"{t}\": {r:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut suite_rows = Vec::new();
    for wl in E19_WORKLOADS {
        for mode in ["off", "on"] {
            let key = format!("{}_{}", wl.letter(), mode);
            suite_rows.push(format!("    \"{key}\": {{ {} }}", row_json(&rates[&key])));
        }
    }
    let suite_json = suite_rows.join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"ycsb\",\n  \"population\": {},\n  \
         \"record_bytes\": {},\n  \"ops_per_thread\": {},\n  \
         \"distribution\": \"zipfian-0.99\",\n  \"ops_per_sec\": {{\n{}\n  }}\n}}\n",
        cfg.population, cfg.record_bytes, cfg.ops_per_thread, suite_json
    );
    let path = "BENCH_ycsb.json";
    std::fs::write(path, json).expect("write benchmark artifact");
    println!("  wrote {path}");

    // -- Part 2: compression effectiveness on workload A ------------------
    // Fresh stores so bytes_appended isolates one load + one A run.
    let mut appended = [0u64; 2];
    let mut commit_rate = [0f64; 2];
    let mut counters = (0u64, 0u64, 0u64);
    for (i, compression) in [false, true].into_iter().enumerate() {
        let driver = YcsbDriver::setup(
            ChunkStoreConfig {
                compression,
                ..paper_config()
            },
            cfg.clone(),
        );
        let res = driver.run(YcsbWorkload::A, 4, seed);
        let stats = driver.store.stats();
        appended[i] = stats.bytes_appended;
        commit_rate[i] = res.updates as f64 / res.elapsed.as_secs_f64();
        if compression {
            counters = (
                stats.bodies_compressed,
                stats.bodies_stored_raw,
                stats.log_bytes_saved,
            );
        }
    }
    let ratio = appended[0] as f64 / appended[1] as f64;
    println!(
        "  workload A log bytes: off {} on {} ({ratio:.2}x fewer)",
        appended[0], appended[1]
    );
    println!(
        "  workload A updates/s: off {:.0} on {:.0}; bodies compressed {}, \
         stored raw {}, log bytes saved {}",
        commit_rate[0], commit_rate[1], counters.0, counters.1, counters.2
    );
    if ratio < 1.5 {
        println!("  WARNING: compression ratio below the 1.5x target");
    }
    let json = format!(
        "{{\n  \"experiment\": \"compression\",\n  \"workload\": \"A\",\n  \
         \"threads\": 4,\n  \"record_bytes\": {},\n  \
         \"log_bytes_appended\": {{ \"off\": {}, \"on\": {} }},\n  \
         \"log_bytes_ratio\": {:.3},\n  \
         \"updates_per_sec\": {{ \"off\": {:.0}, \"on\": {:.0} }},\n  \
         \"bodies_compressed\": {},\n  \"bodies_stored_raw\": {},\n  \
         \"log_bytes_saved\": {}\n}}\n",
        cfg.record_bytes,
        appended[0],
        appended[1],
        ratio,
        commit_rate[0],
        commit_rate[1],
        counters.0,
        counters.1,
        counters.2
    );
    let path = "BENCH_compression.json";
    std::fs::write(path, json).expect("write benchmark artifact");
    println!("  wrote {path}");
}

// ---------------------------------------------------------------------------
// E20: multi-client server throughput. The network stack exists to feed
// group commit from many connections at once — N pipelined connections
// must beat one strict request/response connection by a wide margin.
// ---------------------------------------------------------------------------

/// One phase's operation tallies.
#[derive(Debug, Default, Clone, Copy)]
struct LoadTally {
    reads: u64,
    commits: u64,
    conflicts: u64,
}

impl LoadTally {
    fn ops(&self) -> u64 {
        self.reads + self.commits
    }
}

fn e20_record(key: u64, version: u64, bytes: usize) -> Vec<u8> {
    let mut out = crate::workload::REC_TAG.to_le_bytes().to_vec();
    out.push((key % 30) as u8);
    out.extend_from_slice(&crate::workload::ycsb_record(key, version, bytes));
    out
}

/// Runs a YCSB-A-style 50/50 read/update mix, time-boxed. Each worker
/// updates only its own shard of the keyspace (write-write conflicts are
/// the object store's story, not the transport's) but reads uniformly,
/// so read/write lock collisions still occur and must surface as typed
/// errors, never failures.
fn e20_mix<Op>(
    ids: &[tdb::ObjectId],
    worker: usize,
    workers: usize,
    seed: u64,
    deadline: Instant,
    record_bytes: usize,
    mut op: Op,
) -> LoadTally
where
    Op: FnMut(tdb::Command, &mut LoadTally),
{
    let mut state = seed ^ (worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let shard = ids.len() / workers;
    let own = &ids[worker * shard..(worker + 1) * shard];
    let mut tally = LoadTally::default();
    let mut version = 0u64;
    while Instant::now() < deadline {
        // A small burst per clock check keeps the timer overhead down.
        for _ in 0..8 {
            if next() % 100 < 50 {
                let key = (next() as usize) % ids.len();
                op(tdb::Command::Get(ids[key]), &mut tally);
            } else {
                let key = (next() as usize) % own.len();
                version += 1;
                op(
                    tdb::Command::Put {
                        id: own[key],
                        record: e20_record(key as u64, version, record_bytes),
                    },
                    &mut tally,
                );
            }
        }
    }
    tally
}

fn e20_count(cmd: &tdb::Command, resp: &tdb::Response, tally: &mut LoadTally) {
    match resp {
        tdb::Response::Error(_) => tally.conflicts += 1,
        _ => match cmd {
            tdb::Command::Get(_) => tally.reads += 1,
            _ => tally.commits += 1,
        },
    }
}

/// Measures end-to-end server throughput: an embedded baseline (same
/// sessions, no network), one strict request/response TCP connection,
/// and `connections` pipelined TCP connections, all on the same
/// workload; records `BENCH_server.json`. The headline: pipelined
/// connections must sustain at least 2x the one-at-a-time commit rate —
/// that is the group-commit batcher being fed properly.
///
/// The store sits behind a simulated network round trip (§10's remote
/// untrusted server, real sleeps) so a commit costs device latency, as it
/// does on any real device. That is the regime the server exists for: one
/// strict request/response connection serializes commit latencies, while
/// pipelined connections let the batcher amortize one flush across many
/// committers.
pub fn e20_server(connections: usize, seed: u64, duration: Duration) {
    use tdb_client::TdbClient;
    use tdb_server::{ServerConfig, TdbServer};
    use tdb_storage::{
        BatchingStore, CounterOverTrusted, MemStore, MemTrustedStore, RemoteStore, SharedUntrusted,
        SimClock, TrustedStore,
    };

    const AUTH_KEY: &[u8] = b"e20-load-generator-key";
    const POPULATION: u64 = 512;
    const RECORD_BYTES: usize = 400;
    const PIPELINE_DEPTH: usize = 8;
    const ROUND_TRIP: Duration = Duration::from_micros(300);

    println!("== E20: multi-client server throughput ==");
    println!(
        "{POPULATION} keys x {RECORD_BYTES} B, 50/50 read/update, \
         {connections} connections, pipeline depth {PIPELINE_DEPTH}, \
         {:.1} s per phase, seed {seed:#x}, device round trip {} us",
        duration.as_secs_f64(),
        ROUND_TRIP.as_micros()
    );

    let device = Arc::new(BatchingStore::new(Arc::new(RemoteStore::new(
        Arc::new(MemStore::new()) as SharedUntrusted,
        ROUND_TRIP,
        Arc::new(SimClock::new(true)),
    )) as SharedUntrusted));
    let register = Arc::new(MemTrustedStore::new(64));
    let db = Arc::new(
        tdb::TrustedDbBuilder::new()
            .register_type(crate::workload::REC_TAG, crate::workload::unpickle_rec)
            .create(
                device as SharedUntrusted,
                tdb::TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
                    register as Arc<dyn TrustedStore>,
                ))),
                Arc::new(MemArchive::new()),
            )
            .expect("build db"),
    );
    let mut ids = Vec::with_capacity(POPULATION as usize);
    {
        let mut session = db.session("loader");
        for key in 0..POPULATION {
            match session.dispatch(&tdb::Command::Create {
                partition: db.partition(),
                record: e20_record(key, 0, RECORD_BYTES),
            }) {
                tdb::Response::Id(id) => ids.push(id),
                other => panic!("preload answered {other:?}"),
            }
        }
    }
    db.checkpoint().expect("preload checkpoint");

    // -- Phase 1: embedded sessions, no network ---------------------------
    let embedded_tally;
    let embedded_elapsed;
    {
        let start = Instant::now();
        let deadline = start + duration;
        embedded_tally = std::thread::scope(|s| {
            let handles: Vec<_> = (0..connections)
                .map(|w| {
                    let db = Arc::clone(&db);
                    let ids = &ids;
                    s.spawn(move || {
                        let mut session = db.session(&format!("embedded-{w}"));
                        e20_mix(
                            ids,
                            w,
                            connections,
                            seed,
                            deadline,
                            RECORD_BYTES,
                            |cmd, tally| {
                                let resp = session.dispatch(&cmd);
                                e20_count(&cmd, &resp, tally);
                            },
                        )
                    })
                })
                .collect();
            handles.into_iter().fold(LoadTally::default(), |acc, h| {
                let t = h.join().expect("embedded worker");
                LoadTally {
                    reads: acc.reads + t.reads,
                    commits: acc.commits + t.commits,
                    conflicts: acc.conflicts + t.conflicts,
                }
            })
        });
        embedded_elapsed = start.elapsed();
    }

    let mut server = TdbServer::spawn(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig::new(tdb_crypto::SecretKey::new(AUTH_KEY.to_vec())),
    )
    .expect("spawn server");
    let addr = server.addr();

    // -- Phase 2: one connection, strict request/response -----------------
    let serial_tally;
    let serial_elapsed;
    {
        let mut client = TdbClient::connect(addr, "serial", AUTH_KEY).expect("connect");
        let start = Instant::now();
        let deadline = start + duration;
        serial_tally = e20_mix(&ids, 0, 1, seed, deadline, RECORD_BYTES, |cmd, tally| {
            client.send(&cmd).expect("send");
            let (_, resp) = client.recv().expect("recv");
            e20_count(&cmd, &resp, tally);
        });
        serial_elapsed = start.elapsed();
    }

    // -- Phase 3: many pipelined connections ------------------------------
    let pipelined_tally;
    let pipelined_elapsed;
    {
        let start = Instant::now();
        let deadline = start + duration;
        pipelined_tally = std::thread::scope(|s| {
            let handles: Vec<_> = (0..connections)
                .map(|w| {
                    let ids = &ids;
                    s.spawn(move || {
                        let mut client = TdbClient::connect(addr, &format!("load-{w}"), AUTH_KEY)
                            .expect("connect");
                        // Commands in flight, oldest first, so responses
                        // (strictly ordered) can be tallied against them.
                        let mut in_flight: std::collections::VecDeque<tdb::Command> =
                            std::collections::VecDeque::new();
                        let mut tally = e20_mix(
                            ids,
                            w,
                            connections,
                            seed ^ 0xE20,
                            deadline,
                            RECORD_BYTES,
                            |cmd, tally| {
                                if in_flight.len() >= PIPELINE_DEPTH {
                                    let (_, resp) = client.recv().expect("recv");
                                    let sent = in_flight.pop_front().expect("in flight");
                                    e20_count(&sent, &resp, tally);
                                }
                                client.send(&cmd).expect("send");
                                in_flight.push_back(cmd);
                            },
                        );
                        while let Some(sent) = in_flight.pop_front() {
                            let (_, resp) = client.recv().expect("drain");
                            e20_count(&sent, &resp, &mut tally);
                        }
                        tally
                    })
                })
                .collect();
            handles.into_iter().fold(LoadTally::default(), |acc, h| {
                let t = h.join().expect("pipelined worker");
                LoadTally {
                    reads: acc.reads + t.reads,
                    commits: acc.commits + t.commits,
                    conflicts: acc.conflicts + t.conflicts,
                }
            })
        });
        pipelined_elapsed = start.elapsed();
    }
    server.shutdown();

    let rate = |t: &LoadTally, e: Duration| {
        (
            t.ops() as f64 / e.as_secs_f64().max(1e-9),
            t.commits as f64 / e.as_secs_f64().max(1e-9),
        )
    };
    let (embedded_ops, embedded_commits) = rate(&embedded_tally, embedded_elapsed);
    let (serial_ops, serial_commits) = rate(&serial_tally, serial_elapsed);
    let (pipelined_ops, pipelined_commits) = rate(&pipelined_tally, pipelined_elapsed);
    let speedup = pipelined_commits / serial_commits.max(1e-9);
    println!(
        "  embedded  ({connections} sessions):    {embedded_ops:>9.0} ops/s  \
         {embedded_commits:>8.0} commits/s  ({} conflicts)",
        embedded_tally.conflicts
    );
    println!(
        "  serial    (1 conn, no pipeline): {serial_ops:>9.0} ops/s  \
         {serial_commits:>8.0} commits/s  ({} conflicts)",
        serial_tally.conflicts
    );
    println!(
        "  pipelined ({connections} conns, depth {PIPELINE_DEPTH}): {pipelined_ops:>9.0} ops/s  \
         {pipelined_commits:>8.0} commits/s  ({} conflicts)",
        pipelined_tally.conflicts
    );
    println!("  pipelined vs serial commit throughput: {speedup:.2}x");
    if speedup < 2.0 {
        println!("  WARNING: pipelined speedup below the 2x target");
    }

    let json = format!(
        "{{\n  \"experiment\": \"server_load\",\n  \"connections\": {connections},\n  \
         \"pipeline_depth\": {PIPELINE_DEPTH},\n  \"seed\": {seed},\n  \
         \"duration_secs\": {:.3},\n  \"population\": {POPULATION},\n  \
         \"record_bytes\": {RECORD_BYTES},\n  \"mix\": \"50r/50u\",\n  \
         \"embedded\": {{ \"ops_per_sec\": {embedded_ops:.0}, \"commits_per_sec\": {embedded_commits:.0}, \"conflicts\": {} }},\n  \
         \"serial\": {{ \"ops_per_sec\": {serial_ops:.0}, \"commits_per_sec\": {serial_commits:.0}, \"conflicts\": {} }},\n  \
         \"pipelined\": {{ \"ops_per_sec\": {pipelined_ops:.0}, \"commits_per_sec\": {pipelined_commits:.0}, \"conflicts\": {} }},\n  \
         \"pipelined_vs_serial_commit_speedup\": {speedup:.3}\n}}\n",
        duration.as_secs_f64(),
        embedded_tally.conflicts,
        serial_tally.conflicts,
        pipelined_tally.conflicts
    );
    let path = "BENCH_server.json";
    std::fs::write(path, json).expect("write benchmark artifact");
    println!("  wrote {path}");
}
