//! Shared constructors for benchmark stores and databases.

use std::sync::Arc;

use tdb::{ChunkStore, ChunkStoreConfig, CommitOp, CryptoParams, PartitionId, TrustedBackend};
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, DiskModel, MemStore, MemTrustedStore, SharedTrusted, SharedUntrusted,
    SimClock, SimDiskStore,
};

/// Whether stores run raw (in-memory speed) or behind the 1999-disk
/// latency model of §9.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// No latency model: measures computational overhead (as §9.2's
    /// micro-benchmarks do).
    Raw,
    /// The paper's disks, with real sleeping: wall-clock reproduces the
    /// I/O-dominated shape of Figures 11–12.
    SimulatedDisk,
}

/// A benchmark platform: untrusted + trusted stores and their clocks.
pub struct Platform {
    pub untrusted: SharedUntrusted,
    pub untrusted_mem: Arc<MemStore>,
    pub register: Arc<MemTrustedStore>,
    pub trusted: SharedTrusted,
    pub clock: Arc<SimClock>,
    pub secret: SecretKey,
}

impl Platform {
    /// Builds platform stores for the given I/O mode.
    pub fn new(mode: IoMode) -> Platform {
        let untrusted_mem = Arc::new(MemStore::new());
        let register = Arc::new(MemTrustedStore::new(64));
        let clock = Arc::new(SimClock::new(mode == IoMode::SimulatedDisk));
        let (untrusted, trusted): (SharedUntrusted, SharedTrusted) = match mode {
            IoMode::Raw => (
                Arc::clone(&untrusted_mem) as SharedUntrusted,
                Arc::clone(&register) as SharedTrusted,
            ),
            IoMode::SimulatedDisk => (
                Arc::new(SimDiskStore::new(
                    Arc::clone(&untrusted_mem) as SharedUntrusted,
                    DiskModel::untrusted_1999(),
                    Arc::clone(&clock),
                )),
                Arc::new(SimDiskStore::new(
                    Arc::clone(&register) as SharedTrusted,
                    DiskModel::trusted_1999(),
                    Arc::clone(&clock),
                )),
            ),
        };
        Platform {
            untrusted,
            untrusted_mem,
            register,
            trusted,
            clock,
            secret: SecretKey::random(24),
        }
    }

    /// A counter backend over the trusted store (the paper's configuration:
    /// counter-based validation with Δut = 5, §9.1).
    pub fn counter_backend(&self) -> TrustedBackend {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::clone(&self.trusted))))
    }

    /// A register backend (direct hash validation).
    pub fn register_backend(&self) -> TrustedBackend {
        TrustedBackend::Register(Arc::clone(&self.trusted))
    }
}

/// The paper's chunk store configuration (§9.1): counter validation with
/// Δut = 5, Δtu = 0, fanout 64.
pub fn paper_config() -> ChunkStoreConfig {
    ChunkStoreConfig::default()
}

/// Creates a chunk store with a ready partition, returning both.
pub fn chunk_store_with_partition(
    platform: &Platform,
    config: ChunkStoreConfig,
) -> (Arc<ChunkStore>, PartitionId) {
    let store = Arc::new(
        ChunkStore::create(
            Arc::clone(&platform.untrusted),
            platform.counter_backend(),
            platform.secret.clone(),
            config,
        )
        .expect("create chunk store"),
    );
    let p = store.allocate_partition().expect("allocate partition");
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .expect("create partition");
    (store, p)
}

/// Deterministic pseudo-random bytes for workloads.
pub fn bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.push(state as u8);
    }
    out
}
