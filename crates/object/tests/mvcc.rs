//! Snapshot-isolation semantics of MVCC transactions: stable snapshots,
//! first-committer-wins conflicts, write skew (admitted by SI), deletes,
//! proof-carrying reads, and retry plumbing.

use std::any::Any;
use std::sync::Arc;

use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend, ValidationMode};
use tdb_core::{CryptoParams, PartitionId};
use tdb_crypto::{CipherKind, HashKind, SecretKey};
use tdb_object::errors::ObjectError;
use tdb_object::pickle::{StoredObject, TypeRegistry};
use tdb_object::{ObjectId, ObjectStore, ObjectStoreConfig};
use tdb_storage::{CounterOverTrusted, MemStore, MemTrustedStore, SharedUntrusted};

#[derive(Debug, PartialEq)]
struct Val(u64);

impl StoredObject for Val {
    fn type_tag(&self) -> u32 {
        7
    }
    fn pickle(&self) -> Vec<u8> {
        self.0.to_le_bytes().to_vec()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    reg.register(7, |body| {
        Ok(Arc::new(Val(u64::from_le_bytes(
            body.try_into()
                .map_err(|_| ObjectError::BadPickle("val".into()))?,
        ))))
    });
    reg
}

fn fixture(mvcc: bool) -> (Arc<ObjectStore>, PartitionId) {
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()) as SharedUntrusted,
            TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
                MemTrustedStore::new(64),
            )))),
            SecretKey::random(24),
            ChunkStoreConfig {
                fanout: 8,
                segment_size: 16384,
                validation: ValidationMode::Counter {
                    delta_ut: 5,
                    delta_tu: 0,
                },
                ..ChunkStoreConfig::default()
            },
        )
        .unwrap(),
    );
    let partition = chunks.allocate_partition().unwrap();
    chunks
        .commit(vec![CommitOp::CreatePartition {
            id: partition,
            params: CryptoParams::generate(CipherKind::Des, HashKind::Sha1),
        }])
        .unwrap();
    let store = ObjectStore::new(
        chunks,
        registry(),
        ObjectStoreConfig {
            mvcc,
            ..ObjectStoreConfig::default()
        },
    );
    (store, partition)
}

fn seed(store: &ObjectStore, p: PartitionId, v: u64) -> ObjectId {
    store.run_mvcc(|tx| tx.create(p, Arc::new(Val(v)))).unwrap()
}

#[test]
fn mvcc_disabled_by_default() {
    let (store, _) = fixture(false);
    assert!(!store.mvcc_enabled());
    assert!(matches!(
        store.begin_mvcc().map(|_| ()),
        Err(ObjectError::MvccDisabled)
    ));
    assert!(store.mvcc_stats().is_none());
}

#[test]
fn snapshots_read_a_frozen_view() {
    let (store, p) = fixture(true);
    let id = seed(&store, p, 1);

    let mut reader = store.begin_mvcc().unwrap();
    assert_eq!(reader.get::<Val>(id).unwrap().0, 1);

    // A concurrent writer commits v2 while the reader stays open.
    store.run_mvcc(|tx| tx.put(id, Arc::new(Val(2)))).unwrap();

    // The open snapshot still sees v1; a fresh one sees v2.
    assert_eq!(reader.get::<Val>(id).unwrap().0, 1);
    let mut fresh = store.begin_mvcc().unwrap();
    assert_eq!(fresh.get::<Val>(id).unwrap().0, 2);
    reader.abort();
    fresh.abort();
}

#[test]
fn lost_update_is_rejected() {
    let (store, p) = fixture(true);
    let id = seed(&store, p, 10);

    let mut t1 = store.begin_mvcc().unwrap();
    let mut t2 = store.begin_mvcc().unwrap();
    let v1 = t1.get::<Val>(id).unwrap().0;
    let v2 = t2.get::<Val>(id).unwrap().0;
    t1.put(id, Arc::new(Val(v1 + 1))).unwrap();
    t2.put(id, Arc::new(Val(v2 + 1))).unwrap();

    t1.commit().unwrap();
    // First committer won; the second must conflict, not overwrite.
    assert!(matches!(
        t2.commit(),
        Err(ObjectError::WriteConflict(c)) if c == id
    ));
    assert_eq!(
        store
            .get_untracked(id)
            .unwrap()
            .as_any()
            .downcast_ref::<Val>()
            .unwrap()
            .0,
        11
    );
    assert_eq!(store.mvcc_stats().unwrap().conflicts, 1);
}

#[test]
fn write_skew_is_admitted() {
    // SI's documented anomaly: disjoint write sets never conflict even
    // when each transaction read what the other wrote.
    let (store, p) = fixture(true);
    let x = seed(&store, p, 1);
    let y = seed(&store, p, 1);

    let mut t1 = store.begin_mvcc().unwrap();
    let mut t2 = store.begin_mvcc().unwrap();
    let saw_y = t1.get::<Val>(y).unwrap().0;
    let saw_x = t2.get::<Val>(x).unwrap().0;
    t1.put(x, Arc::new(Val(saw_y + 10))).unwrap();
    t2.put(y, Arc::new(Val(saw_x + 20))).unwrap();
    t1.commit().unwrap();
    t2.commit().unwrap();

    let mut check = store.begin_mvcc().unwrap();
    assert_eq!(check.get::<Val>(x).unwrap().0, 11);
    assert_eq!(check.get::<Val>(y).unwrap().0, 21);
    check.abort();
}

#[test]
fn deletes_are_versioned() {
    let (store, p) = fixture(true);
    let id = seed(&store, p, 5);

    let mut old = store.begin_mvcc().unwrap();
    assert_eq!(old.get::<Val>(id).unwrap().0, 5);

    store.run_mvcc(|tx| tx.delete(id)).unwrap();

    // The pre-delete snapshot still resolves the object.
    assert_eq!(old.get::<Val>(id).unwrap().0, 5);
    old.abort();
    // New snapshots observe the deletion.
    let mut fresh = store.begin_mvcc().unwrap();
    assert!(matches!(
        fresh.get::<Val>(id),
        Err(ObjectError::NotFound(n)) if n == id
    ));
    fresh.abort();
}

#[test]
fn conflicting_commit_leaves_store_untouched() {
    let (store, p) = fixture(true);
    let id = seed(&store, p, 1);
    let other = seed(&store, p, 100);

    let mut loser = store.begin_mvcc().unwrap();
    loser.put(id, Arc::new(Val(2))).unwrap();
    loser.put(other, Arc::new(Val(200))).unwrap();
    store.run_mvcc(|tx| tx.put(id, Arc::new(Val(3)))).unwrap();
    assert!(loser.commit().is_err());

    // Neither of the loser's writes landed — not even the unconflicted one.
    let mut check = store.begin_mvcc().unwrap();
    assert_eq!(check.get::<Val>(id).unwrap().0, 3);
    assert_eq!(check.get::<Val>(other).unwrap().0, 100);
    check.abort();
}

#[test]
fn run_mvcc_retries_conflicts() {
    let (store, p) = fixture(true);
    let id = seed(&store, p, 0);

    // Interleave a conflicting commit on the first attempt only.
    let mut first = true;
    store
        .run_mvcc(|tx| {
            let v = tx.get::<Val>(id)?.0;
            if first {
                first = false;
                store.run_mvcc(|inner| inner.put(id, Arc::new(Val(v + 100))))?;
            }
            tx.put(id, Arc::new(Val(v + 1)))
        })
        .unwrap();

    // The retry re-read the committed 100 and incremented it.
    let mut check = store.begin_mvcc().unwrap();
    assert_eq!(check.get::<Val>(id).unwrap().0, 101);
    check.abort();
    assert!(store.mvcc_stats().unwrap().conflicts >= 1);
}

#[test]
fn proof_reads_verify_against_the_root() {
    let (store, p) = fixture(true);
    let id = seed(&store, p, 42);

    let root = store.snapshot_root(p).unwrap();
    let mut tx = store.begin_mvcc().unwrap();
    let (val, proof) = tx.get_with_proof::<Val>(id).unwrap();
    assert_eq!(val.0, 42);
    let proof = proof.expect("current version is provable");
    assert!(proof.verify(&root));
    // The proof is bound to the record: a different root refuses it.
    let other_root = tdb_crypto::HashValue::zero(root.as_bytes().len());
    assert!(!proof.verify(&other_root));
    tx.abort();
}

#[test]
fn superseded_snapshots_fall_back_to_unproofed_reads() {
    let (store, p) = fixture(true);
    let id = seed(&store, p, 1);

    let mut old = store.begin_mvcc().unwrap();
    assert_eq!(old.get::<Val>(id).unwrap().0, 1);
    store.run_mvcc(|tx| tx.put(id, Arc::new(Val(2)))).unwrap();

    // The old snapshot's version is no longer the tree's current state:
    // the value is still correct but cannot carry a proof.
    let (val, proof) = old.get_with_proof::<Val>(id).unwrap();
    assert_eq!(val.0, 1);
    assert!(proof.is_none());
    old.abort();
    assert!(store.mvcc_stats().unwrap().proof_fallbacks >= 1);

    // A fresh snapshot proves the new version against the new root.
    let root = store.snapshot_root(p).unwrap();
    let mut fresh = store.begin_mvcc().unwrap();
    let (val, proof) = fresh.get_with_proof::<Val>(id).unwrap();
    assert_eq!(val.0, 2);
    assert!(proof.unwrap().verify(&root));
    fresh.abort();
}

#[test]
fn own_writes_read_back_without_proof() {
    let (store, p) = fixture(true);
    let id = seed(&store, p, 1);
    let mut tx = store.begin_mvcc().unwrap();
    tx.put(id, Arc::new(Val(9))).unwrap();
    let (val, proof) = tx.get_with_proof::<Val>(id).unwrap();
    assert_eq!(val.0, 9);
    assert!(proof.is_none(), "uncommitted writes cannot be proven");
    tx.commit().unwrap();
}

#[test]
fn version_chains_prune_when_snapshots_close() {
    let (store, p) = fixture(true);
    let id = seed(&store, p, 0);
    {
        let mut old = store.begin_mvcc().unwrap();
        let _ = old.get::<Val>(id).unwrap();
        for i in 1..=4 {
            store.run_mvcc(|tx| tx.put(id, Arc::new(Val(i)))).unwrap();
        }
        assert!(store.mvcc_stats().unwrap().chained_objects >= 1);
        old.abort();
    }
    // No snapshot pins history: chains collapse to the store state.
    assert_eq!(store.mvcc_stats().unwrap().chained_objects, 0);
    let mut check = store.begin_mvcc().unwrap();
    assert_eq!(check.get::<Val>(id).unwrap().0, 4);
    check.abort();
}
