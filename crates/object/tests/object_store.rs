//! Integration tests for the object store: typed transactional access,
//! no-steal buffering, atomicity, isolation, and cache behaviour.

use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend, ValidationMode};
use tdb_core::{CryptoParams, PartitionId};
use tdb_crypto::{CipherKind, HashKind, SecretKey};
use tdb_object::errors::ObjectError;
use tdb_object::pickle::{StoredObject, TypeRegistry};
use tdb_object::{ObjectId, ObjectStore, ObjectStoreConfig};
use tdb_storage::{CounterOverTrusted, MemStore, MemTrustedStore, SharedUntrusted};

// A tiny application schema: accounts and licenses.

#[derive(Debug, PartialEq)]
struct Account {
    owner: String,
    balance: i64,
}

impl StoredObject for Account {
    fn type_tag(&self) -> u32 {
        1
    }
    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.owner.len() as u32).to_le_bytes());
        out.extend_from_slice(self.owner.as_bytes());
        out.extend_from_slice(&self.balance.to_le_bytes());
        out
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_account(body: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    let n = u32::from_le_bytes(
        body.get(..4)
            .ok_or_else(|| ObjectError::BadPickle("account".into()))?
            .try_into()
            .unwrap(),
    ) as usize;
    let owner = String::from_utf8(body[4..4 + n].to_vec())
        .map_err(|_| ObjectError::BadPickle("owner".into()))?;
    let balance = i64::from_le_bytes(body[4 + n..4 + n + 8].try_into().unwrap());
    Ok(Arc::new(Account { owner, balance }))
}

#[derive(Debug, PartialEq)]
struct License {
    good: String,
    uses_left: u32,
}

impl StoredObject for License {
    fn type_tag(&self) -> u32 {
        2
    }
    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.good.len() as u32).to_le_bytes());
        out.extend_from_slice(self.good.as_bytes());
        out.extend_from_slice(&self.uses_left.to_le_bytes());
        out
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_license(body: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    let n = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
    let good = String::from_utf8(body[4..4 + n].to_vec())
        .map_err(|_| ObjectError::BadPickle("good".into()))?;
    let uses_left = u32::from_le_bytes(body[4 + n..4 + n + 4].try_into().unwrap());
    Ok(Arc::new(License { good, uses_left }))
}

fn registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    reg.register(1, unpickle_account);
    reg.register(2, unpickle_license);
    reg
}

struct Fixture {
    store: Arc<ObjectStore>,
    partition: PartitionId,
}

fn fixture() -> Fixture {
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()) as SharedUntrusted,
            TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
                MemTrustedStore::new(64),
            )))),
            SecretKey::random(24),
            ChunkStoreConfig {
                fanout: 8,
                segment_size: 16384,
                validation: ValidationMode::Counter {
                    delta_ut: 5,
                    delta_tu: 0,
                },
                ..ChunkStoreConfig::default()
            },
        )
        .unwrap(),
    );
    let partition = chunks.allocate_partition().unwrap();
    chunks
        .commit(vec![CommitOp::CreatePartition {
            id: partition,
            params: CryptoParams::generate(CipherKind::Des, HashKind::Sha1),
        }])
        .unwrap();
    let store = ObjectStore::new(
        chunks,
        registry(),
        ObjectStoreConfig {
            cache_bytes: 64 * 1024,
            lock_timeout: Duration::from_millis(100),
            ..ObjectStoreConfig::default()
        },
    );
    Fixture { store, partition }
}

#[test]
fn create_get_typed() {
    let fx = fixture();
    let mut tx = fx.store.begin();
    let id = tx
        .create(
            fx.partition,
            Arc::new(Account {
                owner: "alice".into(),
                balance: 100,
            }),
        )
        .unwrap();
    tx.commit().unwrap();

    let mut tx = fx.store.begin();
    let account = tx.get::<Account>(id).unwrap();
    assert_eq!(account.owner, "alice");
    assert_eq!(account.balance, 100);
    tx.commit().unwrap();
}

#[test]
fn type_mismatch_detected() {
    let fx = fixture();
    let mut tx = fx.store.begin();
    let id = tx
        .create(
            fx.partition,
            Arc::new(License {
                good: "song.mp3".into(),
                uses_left: 3,
            }),
        )
        .unwrap();
    tx.commit().unwrap();

    let mut tx = fx.store.begin();
    let err = tx.get::<Account>(id).unwrap_err();
    assert!(matches!(
        err,
        ObjectError::TypeMismatch { found_tag: 2, .. }
    ));
    tx.abort();
}

#[test]
fn update_and_delete() {
    let fx = fixture();
    let id = {
        let mut tx = fx.store.begin();
        let id = tx
            .create(
                fx.partition,
                Arc::new(Account {
                    owner: "bob".into(),
                    balance: 10,
                }),
            )
            .unwrap();
        tx.commit().unwrap();
        id
    };
    {
        let mut tx = fx.store.begin();
        let account = tx.get::<Account>(id).unwrap();
        tx.put(
            id,
            Arc::new(Account {
                owner: account.owner.clone(),
                balance: account.balance - 7,
            }),
        )
        .unwrap();
        tx.commit().unwrap();
    }
    {
        let mut tx = fx.store.begin();
        assert_eq!(tx.get::<Account>(id).unwrap().balance, 3);
        tx.delete(id).unwrap();
        tx.commit().unwrap();
    }
    let mut tx = fx.store.begin();
    assert!(matches!(
        tx.get::<Account>(id),
        Err(ObjectError::NotFound(_))
    ));
    tx.abort();
}

#[test]
fn abort_discards_buffered_writes() {
    let fx = fixture();
    let id = {
        let mut tx = fx.store.begin();
        let id = tx
            .create(
                fx.partition,
                Arc::new(Account {
                    owner: "carol".into(),
                    balance: 50,
                }),
            )
            .unwrap();
        tx.commit().unwrap();
        id
    };
    {
        let mut tx = fx.store.begin();
        tx.put(
            id,
            Arc::new(Account {
                owner: "carol".into(),
                balance: 0,
            }),
        )
        .unwrap();
        assert_eq!(tx.pending_writes(), 1);
        tx.abort();
    }
    let mut tx = fx.store.begin();
    assert_eq!(
        tx.get::<Account>(id).unwrap().balance,
        50,
        "abort rolled back"
    );
    tx.abort();
}

#[test]
fn transaction_sees_own_writes() {
    let fx = fixture();
    let mut tx = fx.store.begin();
    let id = tx
        .create(
            fx.partition,
            Arc::new(Account {
                owner: "dave".into(),
                balance: 1,
            }),
        )
        .unwrap();
    // Uncommitted create is visible inside the transaction.
    assert_eq!(tx.get::<Account>(id).unwrap().balance, 1);
    tx.put(
        id,
        Arc::new(Account {
            owner: "dave".into(),
            balance: 2,
        }),
    )
    .unwrap();
    assert_eq!(tx.get::<Account>(id).unwrap().balance, 2);
    tx.delete(id).unwrap();
    assert!(matches!(
        tx.get::<Account>(id),
        Err(ObjectError::NotFound(_))
    ));
    tx.commit().unwrap();
}

#[test]
fn multi_object_commit_is_atomic_across_reopen() {
    // Transfer between two accounts, then verify both sides via a fresh
    // object store over the same chunks.
    let fx = fixture();
    let (a, b) = {
        let mut tx = fx.store.begin();
        let a = tx
            .create(
                fx.partition,
                Arc::new(Account {
                    owner: "a".into(),
                    balance: 100,
                }),
            )
            .unwrap();
        let b = tx
            .create(
                fx.partition,
                Arc::new(Account {
                    owner: "b".into(),
                    balance: 0,
                }),
            )
            .unwrap();
        tx.commit().unwrap();
        (a, b)
    };
    fx.store
        .run(|tx| {
            let av = tx.get::<Account>(a)?;
            let bv = tx.get::<Account>(b)?;
            tx.put(
                a,
                Arc::new(Account {
                    owner: "a".into(),
                    balance: av.balance - 30,
                }),
            )?;
            tx.put(
                b,
                Arc::new(Account {
                    owner: "b".into(),
                    balance: bv.balance + 30,
                }),
            )?;
            Ok(())
        })
        .unwrap();

    // A second object store over the same chunk store (cold cache).
    let fresh = ObjectStore::new(
        Arc::clone(fx.store.chunks()),
        registry(),
        ObjectStoreConfig::default(),
    );
    let mut tx = fresh.begin();
    assert_eq!(tx.get::<Account>(a).unwrap().balance, 70);
    assert_eq!(tx.get::<Account>(b).unwrap().balance, 30);
    tx.abort();
}

#[test]
fn conflicting_writers_serialize_or_timeout() {
    let fx = fixture();
    let id = {
        let mut tx = fx.store.begin();
        let id = tx
            .create(
                fx.partition,
                Arc::new(Account {
                    owner: "shared".into(),
                    balance: 0,
                }),
            )
            .unwrap();
        tx.commit().unwrap();
        id
    };
    // 8 concurrent increments; timeouts retried by `run`.
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let store = Arc::clone(&fx.store);
            std::thread::spawn(move || {
                store.run(|tx| {
                    let v = tx.get::<Account>(id)?;
                    tx.put(
                        id,
                        Arc::new(Account {
                            owner: "shared".into(),
                            balance: v.balance + 1,
                        }),
                    )
                })
            })
        })
        .collect();
    let mut succeeded = 0;
    for t in threads {
        if t.join().unwrap().is_ok() {
            succeeded += 1;
        }
    }
    let mut tx = fx.store.begin();
    let v = tx.get::<Account>(id).unwrap();
    tx.abort();
    assert_eq!(
        v.balance as usize, succeeded,
        "each successful transaction incremented exactly once"
    );
    assert!(succeeded >= 1);
}

#[test]
fn cache_serves_repeat_reads() {
    let fx = fixture();
    let id = {
        let mut tx = fx.store.begin();
        let id = tx
            .create(
                fx.partition,
                Arc::new(Account {
                    owner: "hot".into(),
                    balance: 9,
                }),
            )
            .unwrap();
        tx.commit().unwrap();
        id
    };
    for _ in 0..10 {
        let mut tx = fx.store.begin();
        let _ = tx.get::<Account>(id).unwrap();
        tx.abort();
    }
    let (hits, _misses) = fx.store.cache_stats();
    assert!(hits >= 9, "repeat reads served from cache, hits={hits}");
}

#[test]
fn untracked_read_and_invalidate() {
    let fx = fixture();
    let id = {
        let mut tx = fx.store.begin();
        let id = tx
            .create(
                fx.partition,
                Arc::new(License {
                    good: "movie".into(),
                    uses_left: 1,
                }),
            )
            .unwrap();
        tx.commit().unwrap();
        id
    };
    let obj = fx.store.get_untracked(id).unwrap();
    assert_eq!(obj.type_tag(), 2);
    fx.store.invalidate_cache();
    let obj = fx.store.get_untracked(id).unwrap();
    assert_eq!(obj.type_tag(), 2);
}

#[test]
fn use_after_finish_rejected() {
    let fx = fixture();
    let tx = fx.store.begin();
    tx.commit().unwrap();
    // The moved-out commit consumes tx; create a fresh one and abort it,
    // then check ObjectId helpers stay consistent.
    let id = ObjectId::from_parts(fx.partition, 5);
    assert_eq!(id.partition(), fx.partition);
    assert_eq!(id.rank(), 5);
}

#[test]
fn put_on_missing_object_fails() {
    let fx = fixture();
    let mut tx = fx.store.begin();
    let bogus = ObjectId::from_parts(fx.partition, 424242);
    let err = tx
        .put(
            bogus,
            Arc::new(Account {
                owner: "ghost".into(),
                balance: 0,
            }),
        )
        .unwrap_err();
    assert!(matches!(err, ObjectError::NotFound(_)), "got {err:?}");
    tx.abort();
}

// ---------------------------------------------------------------------------
// Steal buffering (paper §10).
// ---------------------------------------------------------------------------

fn steal_fixture(threshold: usize) -> Fixture {
    let fx = fixture();
    let store = ObjectStore::new(
        Arc::clone(fx.store.chunks()),
        registry(),
        ObjectStoreConfig {
            cache_bytes: 64 * 1024,
            lock_timeout: Duration::from_millis(100),
            steal_threshold_bytes: threshold,
            ..ObjectStoreConfig::default()
        },
    );
    Fixture {
        store,
        partition: fx.partition,
    }
}

#[test]
fn large_transaction_spills_and_commits() {
    // A transaction mutating far more than the steal threshold: dirty
    // objects spill to the chunk store mid-transaction, and the commit
    // still applies everything atomically.
    let fx = steal_fixture(4 * 1024);
    let mut tx = fx.store.begin();
    let mut ids = Vec::new();
    for i in 0..40u32 {
        let id = tx
            .create(
                fx.partition,
                Arc::new(Account {
                    owner: format!("bulk-{i}"),
                    balance: i64::from(i),
                }),
            )
            .unwrap();
        ids.push(id);
        // Pad the pickled size by writing a long owner string.
        tx.put(
            id,
            Arc::new(Account {
                owner: format!("bulk-{i}-{}", "x".repeat(400)),
                balance: i64::from(i),
            }),
        )
        .unwrap();
    }
    assert!(tx.spilled_writes() > 0, "nothing was stolen");
    tx.commit().unwrap();

    let mut tx = fx.store.begin();
    for (i, id) in ids.iter().enumerate() {
        let account = tx.get::<Account>(*id).unwrap();
        assert_eq!(account.balance, i as i64);
        assert!(account.owner.starts_with(&format!("bulk-{i}-")));
    }
    tx.abort();
}

#[test]
fn spilled_writes_visible_inside_transaction() {
    let fx = steal_fixture(512);
    let mut tx = fx.store.begin();
    let id = tx
        .create(
            fx.partition,
            Arc::new(Account {
                owner: "spillme".into(),
                balance: 7,
            }),
        )
        .unwrap();
    // Force spilling with more writes.
    for i in 0..10u32 {
        tx.create(
            fx.partition,
            Arc::new(Account {
                owner: format!("filler-{}-{}", i, "y".repeat(200)),
                balance: 0,
            }),
        )
        .unwrap();
    }
    assert!(tx.spilled_writes() > 0);
    // Reads see the spilled (uncommitted) value.
    let account = tx.get::<Account>(id).unwrap();
    assert_eq!(account.owner, "spillme");
    assert_eq!(account.balance, 7);
    tx.commit().unwrap();
}

#[test]
fn aborted_spills_leave_no_state() {
    let fx = steal_fixture(256);
    let id = {
        let mut tx = fx.store.begin();
        let id = tx
            .create(
                fx.partition,
                Arc::new(Account {
                    owner: "stable".into(),
                    balance: 1,
                }),
            )
            .unwrap();
        tx.commit().unwrap();
        id
    };
    {
        let mut tx = fx.store.begin();
        for i in 0..8u32 {
            tx.put(
                id,
                Arc::new(Account {
                    owner: format!("doomed-{}-{}", i, "z".repeat(150)),
                    balance: -1,
                }),
            )
            .unwrap();
        }
        assert!(tx.spilled_writes() > 0 || tx.pending_writes() > 0);
        tx.abort();
    }
    let mut tx = fx.store.begin();
    let account = tx.get::<Account>(id).unwrap();
    assert_eq!(account.owner, "stable");
    assert_eq!(account.balance, 1);
    tx.abort();
}

#[test]
fn superseded_and_deleted_spills_are_reclaimed() {
    // Spill an object, overwrite it (superseding the spill), spill again,
    // then delete it: all scratch chunks must be reclaimed and the final
    // state must be the delete.
    let fx = steal_fixture(300);
    let id = {
        let mut tx = fx.store.begin();
        let id = tx
            .create(
                fx.partition,
                Arc::new(Account {
                    owner: "victim".into(),
                    balance: 0,
                }),
            )
            .unwrap();
        tx.commit().unwrap();
        id
    };
    let mut tx = fx.store.begin();
    for round in 0..6u32 {
        tx.put(
            id,
            Arc::new(Account {
                owner: format!("round-{round}-{}", "p".repeat(180)),
                balance: i64::from(round),
            }),
        )
        .unwrap();
    }
    // At least one spill must have been superseded by a later write.
    assert!(tx.pending_writes() >= 6);
    tx.delete(id).unwrap();
    tx.commit().unwrap();

    let mut tx = fx.store.begin();
    assert!(matches!(
        tx.get::<Account>(id),
        Err(ObjectError::NotFound(_))
    ));
    tx.abort();
}

#[test]
fn spill_roundtrip_through_scratch_preserves_types() {
    // A spilled object read back inside the transaction must still
    // type-check and downcast correctly.
    let fx = steal_fixture(64);
    let mut tx = fx.store.begin();
    let license = tx
        .create(
            fx.partition,
            Arc::new(License {
                good: format!("long-title-{}", "t".repeat(120)),
                uses_left: 9,
            }),
        )
        .unwrap();
    let account = tx
        .create(
            fx.partition,
            Arc::new(Account {
                owner: format!("owner-{}", "o".repeat(120)),
                balance: 5,
            }),
        )
        .unwrap();
    assert!(tx.spilled_writes() > 0);
    // Wrong-type reads of spilled objects still fail cleanly.
    assert!(matches!(
        tx.get::<Account>(license),
        Err(ObjectError::TypeMismatch { .. })
    ));
    assert_eq!(tx.get::<License>(license).unwrap().uses_left, 9);
    assert_eq!(tx.get::<Account>(account).unwrap().balance, 5);
    tx.commit().unwrap();
}
