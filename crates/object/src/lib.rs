#![warn(missing_docs)]

//! # tdb-object — the TDB object store (§7)
//!
//! "The *object store* adds safety against errors in application programs.
//! It provides type-safe and transactional access to a set of objects."
//!
//! Layered directly on the chunk store, this crate provides:
//!
//! - application-defined pickling with a type registry and run-time type
//!   checking ([`pickle`]);
//! - each object stored in its own chunk (the paper's choice: smaller
//!   commit volume and a simpler cache at the cost of inter-object
//!   clustering, which the cache makes unimportant);
//! - a byte-bounded cache of decrypted, validated, unpickled objects
//!   ([`cache`]);
//! - transactions with two-phase shared/exclusive locking and
//!   timeout-based deadlock breaking ([`locks`]), no-steal buffering of
//!   dirty objects, and atomic group commit through the chunk store;
//! - optional snapshot-isolation MVCC transactions ([`mvcc`]) with
//!   first-committer-wins conflict detection and client-verifiable
//!   proof-carrying reads.

pub mod cache;
pub mod errors;
pub mod locks;
pub mod mvcc;
pub mod pickle;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use tdb_core::metrics::{self, modules};
use tdb_core::store::{ChunkStore, CommitOp};
use tdb_core::{ChunkId, PartitionId};

use cache::ShardedObjectCache;
use errors::{ObjectError, Result};
use locks::{LockManager, LockMode, TxId};
use mvcc::MvccManager;
pub use mvcc::{MvccStats, MvccTx, VerifiedRead};
use pickle::{downcast, StoredObject, TypeRegistry};

/// A stable object name: the chunk id holding the object's pickle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub ChunkId);

impl ObjectId {
    /// The partition the object lives in.
    pub fn partition(&self) -> PartitionId {
        self.0.partition
    }

    /// The object's data rank within its partition.
    pub fn rank(&self) -> u64 {
        self.0.pos.rank
    }

    /// Rebuilds an object id from its partition and rank (e.g. after
    /// storing a reference inside another object).
    pub fn from_parts(partition: PartitionId, rank: u64) -> ObjectId {
        ObjectId(ChunkId::data(partition, rank))
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj({})", self.0)
    }
}

/// Object store configuration.
#[derive(Debug, Clone)]
pub struct ObjectStoreConfig {
    /// Byte budget for the object cache (the paper ran with 4 MB of total
    /// cache, §9.1).
    pub cache_bytes: usize,
    /// Number of independently locked cache shards (rounded up to a power
    /// of two; the byte budget splits across them). `1` restores the old
    /// single-lock cache.
    pub cache_shards: usize,
    /// Lock acquisition timeout — the deadlock breaker (§7).
    pub lock_timeout: Duration,
    /// Steal buffering (paper §10): when a transaction's in-memory dirty
    /// objects exceed this many pickled bytes, the oldest are spilled —
    /// encrypted and validated — to a scratch partition of the chunk store
    /// and reloaded at commit. `usize::MAX` disables stealing (the paper's
    /// default no-steal policy).
    pub steal_threshold_bytes: usize,
    /// Enables snapshot-isolation MVCC transactions ([`ObjectStore::begin_mvcc`]).
    /// Off by default: the paper's object store is single-writer two-phase
    /// locking, and the off path is byte-for-byte unchanged.
    pub mvcc: bool,
}

impl Default for ObjectStoreConfig {
    fn default() -> Self {
        ObjectStoreConfig {
            cache_bytes: 4 * 1024 * 1024,
            cache_shards: 8,
            lock_timeout: Duration::from_millis(500),
            steal_threshold_bytes: usize::MAX,
            mvcc: false,
        }
    }
}

/// The object store.
///
/// Always lives behind an `Arc` ([`ObjectStore::new`] returns one): open
/// transactions hold an owned handle to the store, so a [`Tx`] or
/// [`MvccTx`] can outlive the borrow it was begun from — the shape a
/// network session needs, where a transaction spans many requests.
pub struct ObjectStore {
    /// Self-reference so `begin(&self)` can mint owned transactions.
    me: Weak<ObjectStore>,
    chunks: Arc<ChunkStore>,
    registry: TypeRegistry,
    cache: ShardedObjectCache,
    locks: LockManager,
    next_tx: AtomicU64,
    steal_threshold: usize,
    /// Scratch partition for spilled (stolen) dirty objects, created
    /// lazily and reclaimed on drop.
    spill: Mutex<Option<PartitionId>>,
    /// MVCC coordinator, present when the `mvcc` knob is on.
    mvcc: Option<MvccManager>,
}

impl ObjectStore {
    /// Wraps a chunk store with the given type registry.
    pub fn new(
        chunks: Arc<ChunkStore>,
        registry: TypeRegistry,
        config: ObjectStoreConfig,
    ) -> Arc<ObjectStore> {
        Arc::new_cyclic(|me| ObjectStore {
            me: me.clone(),
            chunks,
            registry,
            cache: ShardedObjectCache::new(config.cache_bytes, config.cache_shards),
            locks: LockManager::new(config.lock_timeout),
            next_tx: AtomicU64::new(1),
            steal_threshold: config.steal_threshold_bytes,
            spill: Mutex::new(None),
            mvcc: config.mvcc.then(MvccManager::new),
        })
    }

    /// An owned handle to this store (upgrades the cyclic self-reference).
    fn arc(&self) -> Arc<ObjectStore> {
        self.me
            .upgrade()
            .expect("ObjectStore::new returns an Arc, so self is reachable")
    }

    /// The scratch partition for spilled dirty objects, created on first
    /// use with its own key.
    fn spill_partition(&self) -> Result<PartitionId> {
        let mut spill = self.spill.lock();
        if let Some(p) = *spill {
            return Ok(p);
        }
        let p = self.chunks.allocate_partition()?;
        self.chunks.commit(vec![CommitOp::CreatePartition {
            id: p,
            params: tdb_core::CryptoParams::generate(
                tdb_crypto::CipherKind::Aes128,
                tdb_crypto::HashKind::Sha256,
            ),
        }])?;
        *spill = Some(p);
        Ok(p)
    }

    /// The underlying chunk store.
    pub fn chunks(&self) -> &Arc<ChunkStore> {
        &self.chunks
    }

    /// Begins a transaction. The returned [`Tx`] owns a handle to the
    /// store and may outlive this borrow (e.g. parked in a session
    /// between network requests).
    pub fn begin(&self) -> Tx {
        let _t = metrics::span(modules::OBJECT_STORE);
        Tx {
            store: self.arc(),
            id: self.next_tx.fetch_add(1, Ordering::Relaxed),
            writes: Vec::new(),
            buffered_bytes: 0,
            finished: false,
        }
    }

    /// Runs `f` inside a transaction, committing on `Ok` and aborting on
    /// `Err`. Lock timeouts are retried up to 3 times.
    ///
    /// # Errors
    ///
    /// Propagates the closure's error or commit failures.
    pub fn run<R>(&self, mut f: impl FnMut(&mut Tx) -> Result<R>) -> Result<R> {
        let mut attempts = 0;
        loop {
            let mut tx = self.begin();
            match f(&mut tx) {
                Ok(value) => {
                    tx.commit()?;
                    return Ok(value);
                }
                Err(ObjectError::LockTimeout(id)) if attempts < 3 => {
                    tx.abort();
                    attempts += 1;
                    let _ = id;
                }
                Err(e) => {
                    tx.abort();
                    return Err(e);
                }
            }
        }
    }

    /// True when MVCC transactions are enabled.
    pub fn mvcc_enabled(&self) -> bool {
        self.mvcc.is_some()
    }

    /// Begins a snapshot-isolation MVCC transaction.
    ///
    /// # Errors
    ///
    /// [`ObjectError::MvccDisabled`] unless the store was built with
    /// [`ObjectStoreConfig::mvcc`].
    pub fn begin_mvcc(&self) -> Result<MvccTx> {
        let _t = metrics::span(modules::OBJECT_STORE);
        if self.mvcc.is_none() {
            return Err(ObjectError::MvccDisabled);
        }
        Ok(MvccTx::begin(self.arc()))
    }

    /// Runs `f` inside an MVCC transaction, committing on `Ok` and
    /// aborting on `Err`. Write conflicts restart the transaction on a
    /// fresh snapshot, up to 8 attempts.
    ///
    /// # Errors
    ///
    /// Propagates the closure's error, commit failures, or the final
    /// [`ObjectError::WriteConflict`] once retries are exhausted.
    pub fn run_mvcc<R>(&self, mut f: impl FnMut(&mut MvccTx) -> Result<R>) -> Result<R> {
        let mut attempts = 0;
        loop {
            let mut tx = self.begin_mvcc()?;
            match f(&mut tx).and_then(|value| tx.commit().map(|()| value)) {
                Err(ObjectError::WriteConflict(_)) if attempts < 8 => attempts += 1,
                other => return other,
            }
        }
    }

    /// MVCC counters, when enabled.
    pub fn mvcc_stats(&self) -> Option<MvccStats> {
        self.mvcc.as_ref().map(MvccManager::stats)
    }

    /// The partition's current committed root digest — the trust anchor a
    /// client pins to verify [`VerifiedRead`]s.
    ///
    /// # Errors
    ///
    /// Fails if the partition does not exist or the store is failed.
    pub fn snapshot_root(&self, partition: PartitionId) -> Result<tdb_crypto::HashValue> {
        Ok(self.chunks.snapshot_root(partition)?)
    }

    /// (hits, misses) of the object cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Empties the object cache (used after restores and by benchmarks that
    /// need a cold cache).
    pub fn invalidate_cache(&self) {
        self.cache.clear();
    }

    /// Reads an object bypassing transactions (validated, cached). Useful
    /// for read-only inspection; transactional code should use [`Tx::get`].
    ///
    /// # Errors
    ///
    /// Fails if the object is missing, fails validation, or has an
    /// unregistered type.
    pub fn get_untracked(&self, id: ObjectId) -> Result<Arc<dyn StoredObject>> {
        let _t = metrics::span(modules::OBJECT_STORE);
        self.load(id)
    }

    /// Unpickles a raw record (type tag + pickle) against this store's
    /// type registry. This is how records arriving over a wire become
    /// typed objects: the server-side registry is the schema authority.
    ///
    /// # Errors
    ///
    /// Fails on unknown type tags or malformed pickles.
    pub fn unpickle_record(&self, record: &[u8]) -> Result<Arc<dyn StoredObject>> {
        self.registry.unpickle(record)
    }

    fn load(&self, id: ObjectId) -> Result<Arc<dyn StoredObject>> {
        if let Some(obj) = self.cache.get(id) {
            return Ok(obj);
        }
        let record = match self.chunks.read(id.0) {
            Ok(r) => r,
            Err(tdb_core::CoreError::NotAllocated(_)) | Err(tdb_core::CoreError::NotWritten(_)) => {
                return Err(ObjectError::NotFound(id))
            }
            Err(e) => return Err(e.into()),
        };
        let size = record.len();
        let obj = self.registry.unpickle(&record)?;
        self.cache.put(id, Arc::clone(&obj), size);
        Ok(obj)
    }
}

impl Drop for ObjectStore {
    fn drop(&mut self) {
        // Best-effort reclamation of the scratch partition. A crash leaks
        // it for the session; it holds only ciphertext of uncommitted
        // state and is reclaimed by any later recreation path.
        if let Some(p) = *self.spill.lock() {
            let _ = self
                .chunks
                .commit(vec![CommitOp::DeallocPartition { id: p }]);
        }
    }
}

impl fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectStore").finish_non_exhaustive()
    }
}

/// A buffered write within a transaction.
enum Write {
    Put(Arc<dyn StoredObject>),
    /// A dirty object spilled to the chunk store (steal buffering, §10):
    /// the pickled record lives encrypted+validated in the scratch
    /// partition until commit.
    Spilled {
        chunk: tdb_core::ChunkId,
    },
    Delete,
}

/// An open transaction: two-phase locked, no-steal buffered.
///
/// Owns its store handle, so it is `'static` and can be parked in a
/// session object across network requests.
pub struct Tx {
    store: Arc<ObjectStore>,
    id: TxId,
    /// Ordered buffered writes (last write to an id wins).
    writes: Vec<(ObjectId, Write)>,
    /// Pickled bytes currently buffered in memory (drives stealing).
    buffered_bytes: usize,
    finished: bool,
}

impl Tx {
    fn check_open(&self) -> Result<()> {
        if self.finished {
            Err(ObjectError::TxFinished)
        } else {
            Ok(())
        }
    }

    fn local(&self, id: ObjectId) -> Option<&Write> {
        self.writes
            .iter()
            .rev()
            .find(|(i, _)| *i == id)
            .map(|(_, w)| w)
    }

    /// Creates a new object in `partition`, returning its id.
    ///
    /// # Errors
    ///
    /// Fails if the partition does not exist.
    pub fn create(
        &mut self,
        partition: PartitionId,
        object: Arc<dyn StoredObject>,
    ) -> Result<ObjectId> {
        let _t = metrics::span(modules::OBJECT_STORE);
        self.check_open()?;
        let chunk = self.store.chunks.allocate_chunk(partition)?;
        let id = ObjectId(chunk);
        self.store.locks.acquire(self.id, id, LockMode::Exclusive)?;
        self.buffered_bytes += object.pickle().len();
        self.writes.push((id, Write::Put(object)));
        self.maybe_steal()?;
        Ok(id)
    }

    /// Reads an object with a shared lock, checking its type.
    ///
    /// # Errors
    ///
    /// Fails on missing objects, lock timeout, or type mismatch.
    pub fn get<T: StoredObject>(&mut self, id: ObjectId) -> Result<Arc<T>> {
        downcast(self.get_dyn(id)?)
    }

    /// Reads an object under an **exclusive** lock, for read-modify-write
    /// sequences. Taking the write lock up front avoids the classic
    /// shared-to-exclusive upgrade deadlock when two transactions race on
    /// the same object (both hold shared, both stall upgrading, and only
    /// the §7 timeout breaks them).
    ///
    /// # Errors
    ///
    /// Fails on missing objects, lock timeout, or type mismatch.
    pub fn get_for_update<T: StoredObject>(&mut self, id: ObjectId) -> Result<Arc<T>> {
        self.check_open()?;
        self.store.locks.acquire(self.id, id, LockMode::Exclusive)?;
        downcast(self.get_dyn(id)?)
    }

    /// Reads an object with a shared lock, dynamically typed.
    ///
    /// # Errors
    ///
    /// Fails on missing objects or lock timeout.
    pub fn get_dyn(&mut self, id: ObjectId) -> Result<Arc<dyn StoredObject>> {
        let _t = metrics::span(modules::OBJECT_STORE);
        self.check_open()?;
        self.store.locks.acquire(self.id, id, LockMode::Shared)?;
        match self.local(id) {
            Some(Write::Put(obj)) => Ok(Arc::clone(obj)),
            Some(Write::Spilled { chunk }) => {
                let record = self.store.chunks.read(*chunk)?;
                self.store.registry.unpickle(&record)
            }
            Some(Write::Delete) => Err(ObjectError::NotFound(id)),
            None => self.store.load(id),
        }
    }

    /// Replaces an object's state (exclusive lock; buffered until commit —
    /// the no-steal policy keeps dirty objects out of the persistent store
    /// until their transaction commits).
    ///
    /// # Errors
    ///
    /// Fails on lock timeout or if the object does not exist.
    pub fn put(&mut self, id: ObjectId, object: Arc<dyn StoredObject>) -> Result<()> {
        let _t = metrics::span(modules::OBJECT_STORE);
        self.check_open()?;
        self.store.locks.acquire(self.id, id, LockMode::Exclusive)?;
        // The object must exist (locally created, or stored).
        if self.local(id).is_none() {
            self.store.load(id)?;
        } else if matches!(self.local(id), Some(Write::Delete)) {
            return Err(ObjectError::NotFound(id));
        }
        self.buffered_bytes += object.pickle().len();
        self.writes.push((id, Write::Put(object)));
        self.maybe_steal()?;
        Ok(())
    }

    /// Deletes an object (exclusive lock; buffered until commit).
    ///
    /// # Errors
    ///
    /// Fails on lock timeout or if the object does not exist.
    pub fn delete(&mut self, id: ObjectId) -> Result<()> {
        let _t = metrics::span(modules::OBJECT_STORE);
        self.check_open()?;
        self.store.locks.acquire(self.id, id, LockMode::Exclusive)?;
        if self.local(id).is_none() {
            self.store.load(id)?;
        } else if matches!(self.local(id), Some(Write::Delete)) {
            return Err(ObjectError::NotFound(id));
        }
        self.writes.push((id, Write::Delete));
        Ok(())
    }

    /// Number of buffered writes.
    pub fn pending_writes(&self) -> usize {
        self.writes.len()
    }

    /// Number of writes currently spilled to the chunk store.
    pub fn spilled_writes(&self) -> usize {
        self.writes
            .iter()
            .filter(|(_, w)| matches!(w, Write::Spilled { .. }))
            .count()
    }

    /// Steal buffering (§10): when the in-memory dirty volume exceeds the
    /// threshold, spill buffered puts — oldest first — to the scratch
    /// partition, in one chunk-store commit.
    fn maybe_steal(&mut self) -> Result<()> {
        if self.buffered_bytes <= self.store.steal_threshold {
            return Ok(());
        }
        let spill_partition = self.store.spill_partition()?;
        // Spill the *latest* write of each id, oldest ids first, until the
        // in-memory volume halves (earlier superseded writes of the same id
        // are dead weight and simply dropped from accounting).
        let target = self.store.steal_threshold / 2;
        let mut ops = Vec::new();
        let mut planned: Vec<(usize, tdb_core::ChunkId, usize)> = Vec::new();
        let ids_in_order: Vec<ObjectId> = {
            let mut seen = Vec::new();
            for (id, _) in &self.writes {
                if !seen.contains(id) {
                    seen.push(*id);
                }
            }
            seen
        };
        let mut remaining = self.buffered_bytes;
        for id in ids_in_order {
            if remaining <= target {
                break;
            }
            let last_index = self
                .writes
                .iter()
                .rposition(|(i, _)| *i == id)
                .expect("id came from writes");
            if let Write::Put(obj) = &self.writes[last_index].1 {
                let record = pickle::TypeRegistry::pickle(obj.as_ref());
                let size = record.len();
                let chunk = self.store.chunks.allocate_chunk(spill_partition)?;
                ops.push(CommitOp::WriteChunk {
                    id: chunk,
                    bytes: record,
                });
                planned.push((last_index, chunk, size));
                remaining = remaining.saturating_sub(size);
            }
        }
        if ops.is_empty() {
            return Ok(());
        }
        self.store.chunks.commit(ops)?;
        for (index, chunk, size) in planned {
            self.writes[index].1 = Write::Spilled { chunk };
            self.buffered_bytes = self.buffered_bytes.saturating_sub(size);
        }
        Ok(())
    }

    /// Commits: pickles every dirty object, applies one atomic chunk-store
    /// commit, installs results in the cache, and releases all locks.
    ///
    /// # Errors
    ///
    /// On failure the transaction is rolled back (nothing was applied) and
    /// locks are released.
    pub fn commit(mut self) -> Result<()> {
        let _t = metrics::span(modules::OBJECT_STORE);
        self.check_open()?;
        self.finished = true;

        // Net effect per object, in first-touch order.
        let mut net: Vec<(ObjectId, &Write)> = Vec::new();
        for (id, w) in &self.writes {
            if let Some(slot) = net.iter_mut().find(|(i, _)| i == id) {
                slot.1 = w;
            } else {
                net.push((*id, w));
            }
        }
        if net.is_empty() {
            self.store.locks.release_all(self.id);
            return Ok(());
        }

        let mut ops = Vec::with_capacity(net.len());
        let mut spilled_records: Vec<(ObjectId, Vec<u8>)> = Vec::new();
        for (id, w) in &net {
            match w {
                Write::Put(obj) => ops.push(CommitOp::WriteChunk {
                    id: id.0,
                    bytes: TypeRegistry::pickle(obj.as_ref()),
                }),
                Write::Spilled { chunk } => {
                    // Reload the stolen record and fold it into the same
                    // atomic commit; the scratch chunk is reclaimed with it.
                    let record = self.store.chunks.read(*chunk)?;
                    ops.push(CommitOp::WriteChunk {
                        id: id.0,
                        bytes: record.clone(),
                    });
                    ops.push(CommitOp::DeallocChunk { id: *chunk });
                    spilled_records.push((*id, record));
                }
                Write::Delete => {
                    // Deleting an object created in this same transaction
                    // would dealloc an unwritten chunk; that is legal.
                    ops.push(CommitOp::DeallocChunk { id: id.0 });
                }
            }
        }
        // Superseded spills (an id spilled, then overwritten in memory)
        // also need their scratch chunks reclaimed.
        for (id, w) in &self.writes {
            if let Write::Spilled { chunk } = w {
                let is_net = net
                    .iter()
                    .any(|(i, nw)| i == id && std::ptr::eq(*nw as *const Write, w as *const Write));
                if !is_net {
                    ops.push(CommitOp::DeallocChunk { id: *chunk });
                }
            }
        }
        let result = self.store.chunks.commit(ops);
        if result.is_ok() {
            let cache = &self.store.cache;
            for (id, w) in &net {
                match w {
                    Write::Put(obj) => {
                        let size = obj.pickle().len() + 4;
                        cache.put(*id, Arc::clone(obj), size);
                    }
                    Write::Spilled { .. } => {
                        if let Some((_, record)) = spilled_records.iter().find(|(i, _)| i == id) {
                            if let Ok(obj) = self.store.registry.unpickle(record) {
                                cache.put(*id, obj, record.len());
                            }
                        }
                    }
                    Write::Delete => cache.remove(*id),
                }
            }
        }
        self.store.locks.release_all(self.id);
        result.map_err(Into::into)
    }

    /// Aborts: drops buffered writes (reclaiming any spilled scratch
    /// chunks) and releases all locks.
    pub fn abort(mut self) {
        let _t = metrics::span(modules::OBJECT_STORE);
        self.finished = true;
        let reclaim: Vec<CommitOp> = self
            .writes
            .iter()
            .filter_map(|(_, w)| match w {
                Write::Spilled { chunk } => Some(CommitOp::DeallocChunk { id: *chunk }),
                _ => None,
            })
            .collect();
        if !reclaim.is_empty() {
            // Best effort: a failure here leaks scratch chunks, which the
            // cleaner treats as any other garbage once the partition drops.
            let _ = self.store.chunks.commit(reclaim);
        }
        self.writes.clear();
        self.store.locks.release_all(self.id);
    }
}

impl Drop for Tx {
    fn drop(&mut self) {
        if !self.finished {
            // An abandoned transaction aborts implicitly.
            self.store.locks.release_all(self.id);
        }
    }
}

/// The common transactional surface of [`Tx`] (two-phase locking) and
/// [`MvccTx`] (snapshot isolation). Code layered on the object store —
/// collections, catalogs — takes `&mut impl Transactional` and runs
/// unchanged under either concurrency control scheme.
pub trait Transactional {
    /// Creates a new object in `partition`, returning its id.
    ///
    /// # Errors
    ///
    /// Fails if the partition does not exist.
    fn create(&mut self, partition: PartitionId, object: Arc<dyn StoredObject>)
        -> Result<ObjectId>;

    /// Reads an object, dynamically typed.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing (at the transaction's view) or on
    /// lock timeout.
    fn get_dyn(&mut self, id: ObjectId) -> Result<Arc<dyn StoredObject>>;

    /// Reads an object for a read-modify-write sequence: an exclusive
    /// lock under two-phase locking, a plain snapshot read under MVCC
    /// (the write conflict surfaces at commit).
    ///
    /// # Errors
    ///
    /// Fails like [`Transactional::get`].
    fn get_for_update<T: StoredObject>(&mut self, id: ObjectId) -> Result<Arc<T>>;

    /// Replaces an object's state (buffered until commit).
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist or on lock timeout.
    fn put(&mut self, id: ObjectId, object: Arc<dyn StoredObject>) -> Result<()>;

    /// Deletes an object (buffered until commit).
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist or on lock timeout.
    fn delete(&mut self, id: ObjectId) -> Result<()>;

    /// Reads an object, checking its type.
    ///
    /// # Errors
    ///
    /// Fails like [`Transactional::get_dyn`], or on type mismatch.
    fn get<T: StoredObject>(&mut self, id: ObjectId) -> Result<Arc<T>> {
        downcast(self.get_dyn(id)?)
    }
}

impl Transactional for Tx {
    fn create(
        &mut self,
        partition: PartitionId,
        object: Arc<dyn StoredObject>,
    ) -> Result<ObjectId> {
        Tx::create(self, partition, object)
    }

    fn get_dyn(&mut self, id: ObjectId) -> Result<Arc<dyn StoredObject>> {
        Tx::get_dyn(self, id)
    }

    fn get_for_update<T: StoredObject>(&mut self, id: ObjectId) -> Result<Arc<T>> {
        Tx::get_for_update(self, id)
    }

    fn put(&mut self, id: ObjectId, object: Arc<dyn StoredObject>) -> Result<()> {
        Tx::put(self, id, object)
    }

    fn delete(&mut self, id: ObjectId) -> Result<()> {
        Tx::delete(self, id)
    }
}
