//! Error types for the object store.
//!
//! Like [`tdb_core::CoreError`], every variant carries a stable numeric
//! code ([`ObjectError::code`], range 200–299) and a lossless wire form so
//! server-side faults reach remote clients as the same typed error. Never
//! renumber an existing variant.

use std::fmt;

use tdb_core::codec::{Dec, Enc};
use tdb_core::CoreError;

use crate::ObjectId;

/// Errors produced by the object store.
#[derive(Debug)]
pub enum ObjectError {
    /// The chunk store failed (includes tamper detection).
    Core(tdb_core::CoreError),
    /// The object does not exist.
    NotFound(ObjectId),
    /// An unpickled record carried an unregistered type tag.
    UnknownType(u32),
    /// The record could not be unpickled.
    BadPickle(String),
    /// The stored object has a different type than the caller expected.
    TypeMismatch {
        /// The Rust type the caller asked for (owned so the error can be
        /// reconstructed from its wire form).
        expected: String,
        /// The stored type tag.
        found_tag: u32,
    },
    /// A lock could not be acquired within the timeout. The paper breaks
    /// deadlocks with timeouts (§7); the transaction should abort and retry.
    LockTimeout(ObjectId),
    /// First-committer-wins: another transaction committed this object
    /// after the failing transaction's snapshot. Retry the transaction.
    WriteConflict(ObjectId),
    /// An MVCC transaction was requested but the store was built without
    /// the `mvcc` knob.
    MvccDisabled,
    /// The transaction was already finished.
    TxFinished,
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::Core(e) => write!(f, "chunk store error: {e}"),
            ObjectError::NotFound(id) => write!(f, "object {id} not found"),
            ObjectError::UnknownType(tag) => write!(f, "unknown type tag {tag}"),
            ObjectError::BadPickle(msg) => write!(f, "malformed pickle: {msg}"),
            ObjectError::TypeMismatch {
                expected,
                found_tag,
            } => {
                write!(
                    f,
                    "type mismatch: expected {expected}, stored tag {found_tag}"
                )
            }
            ObjectError::LockTimeout(id) => {
                write!(
                    f,
                    "lock timeout on {id} (possible deadlock; abort and retry)"
                )
            }
            ObjectError::WriteConflict(id) => {
                write!(
                    f,
                    "write conflict on {id}: a newer version committed after this snapshot"
                )
            }
            ObjectError::MvccDisabled => {
                write!(f, "mvcc transactions are disabled for this store")
            }
            ObjectError::TxFinished => write!(f, "transaction already committed or aborted"),
        }
    }
}

impl std::error::Error for ObjectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObjectError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tdb_core::CoreError> for ObjectError {
    fn from(e: tdb_core::CoreError) -> Self {
        ObjectError::Core(e)
    }
}

impl ObjectError {
    /// True when the underlying cause is detected tampering.
    pub fn is_tamper(&self) -> bool {
        matches!(self, ObjectError::Core(e) if e.is_tamper())
    }

    /// The stable numeric code of this error. Object-layer codes occupy
    /// 200–299; a wrapped [`CoreError`] keeps its own code nested after
    /// the `200` envelope.
    pub fn code(&self) -> u16 {
        match self {
            ObjectError::Core(_) => 200,
            ObjectError::NotFound(_) => 201,
            ObjectError::UnknownType(_) => 202,
            ObjectError::BadPickle(_) => 203,
            ObjectError::TypeMismatch { .. } => 204,
            ObjectError::LockTimeout(_) => 205,
            ObjectError::WriteConflict(_) => 206,
            ObjectError::MvccDisabled => 207,
            ObjectError::TxFinished => 208,
        }
    }

    /// Appends the lossless wire form: stable code, then variant fields.
    pub fn encode_wire(&self, e: &mut Enc) {
        e.u16(self.code());
        match self {
            ObjectError::Core(err) => err.encode_wire(e),
            ObjectError::NotFound(id)
            | ObjectError::LockTimeout(id)
            | ObjectError::WriteConflict(id) => {
                e.u32(id.partition().0);
                e.u64(id.rank());
            }
            ObjectError::UnknownType(tag) => {
                e.u32(*tag);
            }
            ObjectError::BadPickle(msg) => {
                e.str(msg);
            }
            ObjectError::TypeMismatch {
                expected,
                found_tag,
            } => {
                e.str(expected);
                e.u32(*found_tag);
            }
            ObjectError::MvccDisabled | ObjectError::TxFinished => {}
        }
    }

    /// Decodes one error from its wire form.
    ///
    /// # Errors
    ///
    /// Fails with [`ObjectError::BadPickle`] on truncation or unknown codes.
    pub fn decode_wire(d: &mut Dec) -> Result<ObjectError> {
        let bad = |e: CoreError| ObjectError::BadPickle(format!("error wire form: {e}"));
        let code = d.u16().map_err(bad)?;
        Ok(match code {
            200 => ObjectError::Core(CoreError::decode_wire(d).map_err(bad)?),
            201 | 205 | 206 => {
                let partition = tdb_core::PartitionId(d.u32().map_err(bad)?);
                let id = ObjectId::from_parts(partition, d.u64().map_err(bad)?);
                match code {
                    201 => ObjectError::NotFound(id),
                    205 => ObjectError::LockTimeout(id),
                    _ => ObjectError::WriteConflict(id),
                }
            }
            202 => ObjectError::UnknownType(d.u32().map_err(bad)?),
            203 => ObjectError::BadPickle(d.str().map_err(bad)?),
            204 => ObjectError::TypeMismatch {
                expected: d.str().map_err(bad)?,
                found_tag: d.u32().map_err(bad)?,
            },
            207 => ObjectError::MvccDisabled,
            208 => ObjectError::TxFinished,
            code => {
                return Err(ObjectError::BadPickle(format!(
                    "unknown object-error wire code {code}"
                )))
            }
        })
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ObjectError>;

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::PartitionId;

    #[test]
    fn wire_round_trip_preserves_code_and_display() {
        let id = ObjectId::from_parts(PartitionId(2), 17);
        let catalog = vec![
            ObjectError::Core(CoreError::OutOfSpace),
            ObjectError::Core(CoreError::TamperDetected(
                tdb_core::TamperKind::LogHashMismatch,
            )),
            ObjectError::NotFound(id),
            ObjectError::UnknownType(901),
            ObjectError::BadPickle("truncated".into()),
            ObjectError::TypeMismatch {
                expected: "bank::Account".into(),
                found_tag: 7,
            },
            ObjectError::LockTimeout(id),
            ObjectError::WriteConflict(id),
            ObjectError::MvccDisabled,
            ObjectError::TxFinished,
        ];
        for err in catalog {
            let mut e = Enc::new();
            err.encode_wire(&mut e);
            let buf = e.finish();
            let mut d = Dec::new(&buf);
            let back = ObjectError::decode_wire(&mut d).expect("decode");
            assert_eq!(d.remaining(), 0, "{err}");
            assert_eq!(back.code(), err.code(), "{err}");
            assert_eq!(back.to_string(), err.to_string());
            assert_eq!(back.is_tamper(), err.is_tamper(), "{err}");
        }
    }

    #[test]
    fn unknown_code_rejected() {
        let mut e = Enc::new();
        e.u16(999);
        let buf = e.finish();
        assert!(ObjectError::decode_wire(&mut Dec::new(&buf)).is_err());
    }
}
