//! Error types for the object store.

use std::fmt;

use crate::ObjectId;

/// Errors produced by the object store.
#[derive(Debug)]
pub enum ObjectError {
    /// The chunk store failed (includes tamper detection).
    Core(tdb_core::CoreError),
    /// The object does not exist.
    NotFound(ObjectId),
    /// An unpickled record carried an unregistered type tag.
    UnknownType(u32),
    /// The record could not be unpickled.
    BadPickle(String),
    /// The stored object has a different type than the caller expected.
    TypeMismatch {
        /// The Rust type the caller asked for.
        expected: &'static str,
        /// The stored type tag.
        found_tag: u32,
    },
    /// A lock could not be acquired within the timeout. The paper breaks
    /// deadlocks with timeouts (§7); the transaction should abort and retry.
    LockTimeout(ObjectId),
    /// First-committer-wins: another transaction committed this object
    /// after the failing transaction's snapshot. Retry the transaction.
    WriteConflict(ObjectId),
    /// An MVCC transaction was requested but the store was built without
    /// the `mvcc` knob.
    MvccDisabled,
    /// The transaction was already finished.
    TxFinished,
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::Core(e) => write!(f, "chunk store error: {e}"),
            ObjectError::NotFound(id) => write!(f, "object {id} not found"),
            ObjectError::UnknownType(tag) => write!(f, "unknown type tag {tag}"),
            ObjectError::BadPickle(msg) => write!(f, "malformed pickle: {msg}"),
            ObjectError::TypeMismatch {
                expected,
                found_tag,
            } => {
                write!(
                    f,
                    "type mismatch: expected {expected}, stored tag {found_tag}"
                )
            }
            ObjectError::LockTimeout(id) => {
                write!(
                    f,
                    "lock timeout on {id} (possible deadlock; abort and retry)"
                )
            }
            ObjectError::WriteConflict(id) => {
                write!(
                    f,
                    "write conflict on {id}: a newer version committed after this snapshot"
                )
            }
            ObjectError::MvccDisabled => {
                write!(f, "mvcc transactions are disabled for this store")
            }
            ObjectError::TxFinished => write!(f, "transaction already committed or aborted"),
        }
    }
}

impl std::error::Error for ObjectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObjectError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tdb_core::CoreError> for ObjectError {
    fn from(e: tdb_core::CoreError) -> Self {
        ObjectError::Core(e)
    }
}

impl ObjectError {
    /// True when the underlying cause is detected tampering.
    pub fn is_tamper(&self) -> bool {
        matches!(self, ObjectError::Core(e) if e.is_tamper())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ObjectError>;
