//! The object cache (§7).
//!
//! "The object store keeps a cache of frequently-used or dirty objects.
//! Caching data at this level is beneficial because the data is decrypted,
//! validated, and unpickled." Only committed objects live here; a
//! transaction's dirty objects are buffered in the transaction itself until
//! commit (the paper's no-steal policy, §2.2) and installed here on commit.

use std::collections::HashMap;
use std::sync::Arc;

use crate::pickle::StoredObject;
use crate::ObjectId;

struct CacheSlot {
    object: Arc<dyn StoredObject>,
    /// Approximate bytes (pickled size) for the byte-budget accounting.
    size: usize,
    last_used: u64,
}

/// A byte-bounded LRU cache of decoded objects.
pub struct ObjectCache {
    slots: HashMap<ObjectId, CacheSlot>,
    capacity_bytes: usize,
    used_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ObjectCache {
    /// Creates a cache bounded to roughly `capacity_bytes` of pickled data
    /// (the paper's experiments bound "the total size of TDB caches" to
    /// 4 MB, §9.1).
    pub fn new(capacity_bytes: usize) -> ObjectCache {
        ObjectCache {
            slots: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up an object, refreshing its recency.
    pub fn get(&mut self, id: ObjectId) -> Option<Arc<dyn StoredObject>> {
        self.tick += 1;
        let tick = self.tick;
        match self.slots.get_mut(&id) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits += 1;
                Some(Arc::clone(&slot.object))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs (or replaces) an object, evicting LRU entries past the
    /// byte budget.
    pub fn put(&mut self, id: ObjectId, object: Arc<dyn StoredObject>, size: usize) {
        self.tick += 1;
        if let Some(old) = self.slots.insert(
            id,
            CacheSlot {
                object,
                size,
                last_used: self.tick,
            },
        ) {
            self.used_bytes -= old.size;
        }
        self.used_bytes += size;
        while self.used_bytes > self.capacity_bytes && self.slots.len() > 1 {
            let victim = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty");
            if victim == id {
                break;
            }
            if let Some(slot) = self.slots.remove(&victim) {
                self.used_bytes -= slot.size;
            }
        }
    }

    /// Drops an object (deleted or its partition restored).
    pub fn remove(&mut self, id: ObjectId) {
        if let Some(slot) = self.slots.remove(&id) {
            self.used_bytes -= slot.size;
        }
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.used_bytes = 0;
    }

    /// Cached object count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Approximate cached bytes.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use tdb_core::{ChunkId, PartitionId};

    struct Blob(Vec<u8>);
    impl StoredObject for Blob {
        fn type_tag(&self) -> u32 {
            9
        }
        fn pickle(&self) -> Vec<u8> {
            self.0.clone()
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId(ChunkId::data(PartitionId(1), n))
    }

    #[test]
    fn put_get_replace() {
        let mut c = ObjectCache::new(1000);
        c.put(oid(1), Arc::new(Blob(vec![1; 100])), 100);
        assert!(c.get(oid(1)).is_some());
        assert_eq!(c.used_bytes(), 100);
        c.put(oid(1), Arc::new(Blob(vec![2; 50])), 50);
        assert_eq!(c.used_bytes(), 50);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_by_bytes() {
        let mut c = ObjectCache::new(250);
        c.put(oid(1), Arc::new(Blob(vec![0; 100])), 100);
        c.put(oid(2), Arc::new(Blob(vec![0; 100])), 100);
        let _ = c.get(oid(1)); // 2 becomes LRU.
        c.put(oid(3), Arc::new(Blob(vec![0; 100])), 100);
        assert!(c.get(oid(1)).is_some());
        assert!(c.get(oid(2)).is_none(), "LRU entry evicted");
        assert!(c.get(oid(3)).is_some());
        assert!(c.used_bytes() <= 250);
    }

    #[test]
    fn remove_and_clear() {
        let mut c = ObjectCache::new(1000);
        c.put(oid(1), Arc::new(Blob(vec![0; 10])), 10);
        c.remove(oid(1));
        assert!(c.is_empty());
        c.put(oid(2), Arc::new(Blob(vec![0; 10])), 10);
        c.clear();
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn hit_miss_stats() {
        let mut c = ObjectCache::new(1000);
        c.put(oid(1), Arc::new(Blob(vec![0; 10])), 10);
        let _ = c.get(oid(1));
        let _ = c.get(oid(2));
        assert_eq!(c.stats(), (1, 1));
    }
}
