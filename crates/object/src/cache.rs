//! The object cache (§7).
//!
//! "The object store keeps a cache of frequently-used or dirty objects.
//! Caching data at this level is beneficial because the data is decrypted,
//! validated, and unpickled." Only committed objects live here; a
//! transaction's dirty objects are buffered in the transaction itself until
//! commit (the paper's no-steal policy, §2.2) and installed here on commit.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::pickle::StoredObject;
use crate::ObjectId;

struct CacheSlot {
    object: Arc<dyn StoredObject>,
    /// Approximate bytes (pickled size) for the byte-budget accounting.
    size: usize,
    last_used: u64,
}

/// A byte-bounded LRU cache of decoded objects.
pub struct ObjectCache {
    slots: HashMap<ObjectId, CacheSlot>,
    capacity_bytes: usize,
    used_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ObjectCache {
    /// Creates a cache bounded to roughly `capacity_bytes` of pickled data
    /// (the paper's experiments bound "the total size of TDB caches" to
    /// 4 MB, §9.1).
    pub fn new(capacity_bytes: usize) -> ObjectCache {
        ObjectCache {
            slots: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up an object, refreshing its recency.
    pub fn get(&mut self, id: ObjectId) -> Option<Arc<dyn StoredObject>> {
        self.tick += 1;
        let tick = self.tick;
        match self.slots.get_mut(&id) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits += 1;
                Some(Arc::clone(&slot.object))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs (or replaces) an object, evicting LRU entries past the
    /// byte budget.
    pub fn put(&mut self, id: ObjectId, object: Arc<dyn StoredObject>, size: usize) {
        self.tick += 1;
        if let Some(old) = self.slots.insert(
            id,
            CacheSlot {
                object,
                size,
                last_used: self.tick,
            },
        ) {
            self.used_bytes -= old.size;
        }
        self.used_bytes += size;
        while self.used_bytes > self.capacity_bytes && self.slots.len() > 1 {
            let victim = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty");
            if victim == id {
                break;
            }
            if let Some(slot) = self.slots.remove(&victim) {
                self.used_bytes -= slot.size;
            }
        }
    }

    /// Drops an object (deleted or its partition restored).
    pub fn remove(&mut self, id: ObjectId) {
        if let Some(slot) = self.slots.remove(&id) {
            self.used_bytes -= slot.size;
        }
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.used_bytes = 0;
    }

    /// Cached object count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Approximate cached bytes.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// A sharded wrapper over [`ObjectCache`]: the byte budget splits evenly
/// across `shards` independently locked caches, so concurrent readers of
/// distinct objects don't serialize on one cache lock. One shard degrades
/// to the old single-lock behavior.
pub struct ShardedObjectCache {
    shards: Vec<Mutex<ObjectCache>>,
    mask: usize,
}

impl ShardedObjectCache {
    /// Splits `capacity_bytes` across `shards` (rounded up to a power of
    /// two, min 1) LRU caches.
    pub fn new(capacity_bytes: usize, shards: usize) -> ShardedObjectCache {
        let n = shards.max(1).next_power_of_two();
        let per_shard = (capacity_bytes / n).max(1);
        ShardedObjectCache {
            shards: (0..n)
                .map(|_| Mutex::new(ObjectCache::new(per_shard)))
                .collect(),
            mask: n - 1,
        }
    }

    fn shard(&self, id: ObjectId) -> &Mutex<ObjectCache> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        id.0.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Looks up an object, refreshing its recency in its shard.
    pub fn get(&self, id: ObjectId) -> Option<Arc<dyn StoredObject>> {
        self.shard(id).lock().get(id)
    }

    /// Installs (or replaces) an object; eviction is per-shard.
    pub fn put(&self, id: ObjectId, object: Arc<dyn StoredObject>, size: usize) {
        self.shard(id).lock().put(id, object, size);
    }

    /// Drops an object.
    pub fn remove(&self, id: ObjectId) {
        self.shard(id).lock().remove(id);
    }

    /// Empties every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Total cached object count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total approximate cached bytes.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Aggregated (hits, misses) across shards.
    pub fn stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            let (sh, sm) = s.lock().stats();
            (h + sh, m + sm)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use tdb_core::{ChunkId, PartitionId};

    struct Blob(Vec<u8>);
    impl StoredObject for Blob {
        fn type_tag(&self) -> u32 {
            9
        }
        fn pickle(&self) -> Vec<u8> {
            self.0.clone()
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId(ChunkId::data(PartitionId(1), n))
    }

    #[test]
    fn put_get_replace() {
        let mut c = ObjectCache::new(1000);
        c.put(oid(1), Arc::new(Blob(vec![1; 100])), 100);
        assert!(c.get(oid(1)).is_some());
        assert_eq!(c.used_bytes(), 100);
        c.put(oid(1), Arc::new(Blob(vec![2; 50])), 50);
        assert_eq!(c.used_bytes(), 50);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_by_bytes() {
        let mut c = ObjectCache::new(250);
        c.put(oid(1), Arc::new(Blob(vec![0; 100])), 100);
        c.put(oid(2), Arc::new(Blob(vec![0; 100])), 100);
        let _ = c.get(oid(1)); // 2 becomes LRU.
        c.put(oid(3), Arc::new(Blob(vec![0; 100])), 100);
        assert!(c.get(oid(1)).is_some());
        assert!(c.get(oid(2)).is_none(), "LRU entry evicted");
        assert!(c.get(oid(3)).is_some());
        assert!(c.used_bytes() <= 250);
    }

    #[test]
    fn remove_and_clear() {
        let mut c = ObjectCache::new(1000);
        c.put(oid(1), Arc::new(Blob(vec![0; 10])), 10);
        c.remove(oid(1));
        assert!(c.is_empty());
        c.put(oid(2), Arc::new(Blob(vec![0; 10])), 10);
        c.clear();
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn hit_miss_stats() {
        let mut c = ObjectCache::new(1000);
        c.put(oid(1), Arc::new(Blob(vec![0; 10])), 10);
        let _ = c.get(oid(1));
        let _ = c.get(oid(2));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn sharded_cache_routes_and_aggregates() {
        let c = ShardedObjectCache::new(64 * 1024, 8);
        for n in 0..32 {
            c.put(oid(n), Arc::new(Blob(vec![0; 10])), 10);
        }
        assert_eq!(c.len(), 32);
        assert_eq!(c.used_bytes(), 320);
        for n in 0..32 {
            assert!(c.get(oid(n)).is_some(), "object {n} routed consistently");
        }
        let _ = c.get(oid(1000));
        assert_eq!(c.stats(), (32, 1));
        c.remove(oid(0));
        assert_eq!(c.len(), 31);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_cache_is_concurrently_usable() {
        let c = Arc::new(ShardedObjectCache::new(1024 * 1024, 8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for n in 0..128 {
                        let id = oid(t * 1000 + n);
                        c.put(id, Arc::new(Blob(vec![0; 16])), 16);
                        assert!(c.get(id).is_some());
                    }
                });
            }
        });
        assert_eq!(c.len(), 4 * 128);
    }
}
