//! Snapshot-isolation MVCC transactions over the object store.
//!
//! The paper's object layer serializes writers with two-phase locking (§7);
//! this module adds the many-writer alternative the ROADMAP names: each
//! transaction is pinned to the *commit sequence number* (csn) of the last
//! committed transaction at begin time and reads the newest version of
//! every object with csn ≤ its snapshot. Writers never block readers.
//!
//! **Versioning.** Committed versions form in-memory *version chains*
//! per object. A chain starts with a *base* entry (csn 0) capturing the
//! object's committed state before its first MVCC overwrite, so older
//! snapshots keep reading the pre-image; publishes append newer entries.
//! Objects with no chain are served from the shared cache / chunk store —
//! their committed state has not diverged from any live snapshot's view.
//! Chains are pruned against the oldest active snapshot and disappear
//! entirely once only the current version remains, so memory tracks write
//! activity, not database size. Chains are volatile: recovery rebuilds
//! nothing because the chunk store holds exactly the committed state.
//!
//! **Commit protocol (first-committer-wins).**
//! 1. *Prepare* (manager lock): every written object is checked — a write
//!    lock held by an in-flight committer, or a chain entry newer than the
//!    snapshot, is a [`ObjectError::WriteConflict`]. Passing objects are
//!    write-locked.
//! 2. *Base capture* (no lock): objects without a chain load their current
//!    committed value; the write locks keep it stable.
//! 3. *Chunk commit* (no lock): one atomic [`ChunkStore`] commit — with
//!    group commit enabled, concurrent transactional commits batch and
//!    share flushes exactly like raw commits.
//! 4. *Publish* (manager lock): the csn is assigned (`committed_csn + 1`,
//!    so visibility advances contiguously), versions append to their
//!    chains, write locks release, the shared cache updates.
//!
//! Readers consult chains before the chunk store, and base entries are
//! installed *before* the chunk commit, so a reader can never observe a
//! committed-but-unpublished value: between steps 3 and 4 the chain still
//! serves the pre-image.
//!
//! **Verifiable reads.** [`MvccTx::get_with_proof`] returns the object
//! plus a [`VerifiedRead`] — the exact stored record and its Merkle path
//! ([`ReadProof`]) to the partition's root digest — whenever the snapshot's
//! version is still the current committed version (the tree can only prove
//! current state). A client holding the root digest from
//! [`crate::ObjectStore::snapshot_root`] verifies with no keys and no
//! store access.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use tdb_core::proof::{verify_read_proof, ReadProof};
use tdb_core::store::CommitOp;
use tdb_core::PartitionId;
use tdb_crypto::HashValue;

use crate::cache::ShardedObjectCache;
use crate::errors::{ObjectError, Result};
use crate::pickle::{downcast, StoredObject, TypeRegistry};
use crate::{ObjectId, ObjectStore, Transactional};

/// One committed version of an object. `value: None` records deletion (or
/// pre-creation absence), so chains distinguish "deleted at csn" from
/// "never chained".
struct ChainEntry {
    csn: u64,
    value: Option<Arc<dyn StoredObject>>,
}

/// Aggregate MVCC counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct MvccStats {
    /// Transactions committed with at least one write.
    pub committed: u64,
    /// Commits refused by first-committer-wins conflict detection.
    pub conflicts: u64,
    /// Snapshots opened (transactions begun).
    pub snapshots: u64,
    /// Objects currently carrying a version chain.
    pub chained_objects: u64,
    /// Proof requests served without a proof because the snapshot's
    /// version was superseded or a commit was in flight.
    pub proof_fallbacks: u64,
}

#[derive(Default)]
struct MvccState {
    /// Highest published csn; new snapshots pin here.
    committed_csn: u64,
    /// Active snapshot refcounts: snapshot csn → open transactions.
    active: BTreeMap<u64, usize>,
    /// Version chains, ascending csn. Invariant: every chain holds an
    /// entry with csn ≤ the oldest active snapshot.
    chains: HashMap<ObjectId, Vec<ChainEntry>>,
    /// Objects an in-flight committer has claimed (prepare → publish).
    write_locks: HashSet<ObjectId>,
    stats: MvccStats,
}

/// The MVCC coordinator: one per object store when `mvcc` is enabled.
pub(crate) struct MvccManager {
    state: Mutex<MvccState>,
}

enum ChainRead {
    /// The chain resolves the snapshot's view (`None` = absent).
    Hit(Option<Arc<dyn StoredObject>>),
    /// No chain: the committed store state is the snapshot's view.
    Miss,
}

impl MvccManager {
    pub(crate) fn new() -> MvccManager {
        MvccManager {
            state: Mutex::new(MvccState::default()),
        }
    }

    fn begin_snapshot(&self) -> u64 {
        let mut s = self.state.lock();
        let snap = s.committed_csn;
        *s.active.entry(snap).or_insert(0) += 1;
        s.stats.snapshots += 1;
        snap
    }

    fn end_snapshot(&self, snapshot: u64) {
        let mut s = self.state.lock();
        if let Some(count) = s.active.get_mut(&snapshot) {
            *count -= 1;
            if *count == 0 {
                s.active.remove(&snapshot);
            }
        }
        Self::prune(&mut s);
    }

    fn chain_read(&self, id: ObjectId, snapshot: u64) -> ChainRead {
        let s = self.state.lock();
        match s.chains.get(&id) {
            Some(chain) => {
                let entry = chain
                    .iter()
                    .rev()
                    .find(|e| e.csn <= snapshot)
                    .expect("chain invariant: an entry at or below every active snapshot");
                ChainRead::Hit(entry.value.clone())
            }
            None => ChainRead::Miss,
        }
    }

    /// True when the chunk store's current bytes for `id` *are* the
    /// snapshot's version: no newer chain entry, no in-flight committer.
    fn provable(&self, id: ObjectId, snapshot: u64) -> bool {
        let s = self.state.lock();
        if s.write_locks.contains(&id) {
            return false;
        }
        s.chains
            .get(&id)
            .and_then(|c| c.last())
            .is_none_or(|last| last.csn <= snapshot)
    }

    fn note_proof_fallback(&self) {
        self.state.lock().stats.proof_fallbacks += 1;
    }

    /// First-committer-wins check and write-lock acquisition. Returns the
    /// objects that need a base entry captured (no chain yet).
    fn prepare(
        &self,
        writes: &[(ObjectId, Option<Arc<dyn StoredObject>>)],
        created: &HashSet<ObjectId>,
        snapshot: u64,
    ) -> Result<Vec<ObjectId>> {
        let mut s = self.state.lock();
        for (id, _) in writes {
            if s.write_locks.contains(id) {
                s.stats.conflicts += 1;
                return Err(ObjectError::WriteConflict(*id));
            }
            if created.contains(id) {
                // Freshly allocated ranks cannot have been written by a
                // concurrent committer.
                continue;
            }
            if let Some(last) = s.chains.get(id).and_then(|c| c.last()) {
                if last.csn > snapshot {
                    s.stats.conflicts += 1;
                    return Err(ObjectError::WriteConflict(*id));
                }
            }
        }
        let mut need_base = Vec::new();
        for (id, _) in writes {
            s.write_locks.insert(*id);
            if !s.chains.contains_key(id) {
                need_base.push(*id);
            }
        }
        Ok(need_base)
    }

    /// Installs base entries (csn 0) for objects about to diverge, so
    /// readers keep resolving the pre-image while the chunk commit is in
    /// flight. The caller holds the write locks, so `bases` are stable.
    fn install_bases(&self, bases: Vec<(ObjectId, Option<Arc<dyn StoredObject>>)>) {
        let mut s = self.state.lock();
        for (id, value) in bases {
            s.chains
                .entry(id)
                .or_insert_with(|| vec![ChainEntry { csn: 0, value }]);
        }
        s.stats.chained_objects = s.chains.len() as u64;
    }

    /// Publishes a successful commit: assigns the next contiguous csn,
    /// appends versions, releases write locks, refreshes the shared cache.
    fn publish(
        &self,
        writes: Vec<(ObjectId, Option<Arc<dyn StoredObject>>)>,
        sizes: &[usize],
        cache: &ShardedObjectCache,
    ) {
        let mut s = self.state.lock();
        let csn = s.committed_csn + 1;
        s.committed_csn = csn;
        for ((id, value), size) in writes.into_iter().zip(sizes) {
            match &value {
                Some(obj) => cache.put(id, Arc::clone(obj), *size),
                None => cache.remove(id),
            }
            s.write_locks.remove(&id);
            s.chains
                .entry(id)
                .or_default()
                .push(ChainEntry { csn, value });
        }
        s.stats.committed += 1;
        Self::prune(&mut s);
    }

    /// Releases write locks after a failed or abandoned commit. Base
    /// entries installed for this commit stay: they mirror the committed
    /// state and pruning reclaims them.
    fn release(&self, writes: &[(ObjectId, Option<Arc<dyn StoredObject>>)]) {
        let mut s = self.state.lock();
        for (id, _) in writes {
            s.write_locks.remove(id);
        }
        Self::prune(&mut s);
    }

    /// Drops chain entries no active snapshot can reach, and whole chains
    /// that only mirror the current committed state.
    fn prune(s: &mut MvccState) {
        let oldest = s.active.keys().next().copied().unwrap_or(s.committed_csn);
        let MvccState {
            chains,
            write_locks,
            ..
        } = s;
        chains.retain(|id, chain| {
            let keep_from = chain.iter().rposition(|e| e.csn <= oldest).unwrap_or(0);
            chain.drain(..keep_from);
            chain.len() > 1 || write_locks.contains(id)
        });
        s.stats.chained_objects = s.chains.len() as u64;
    }

    pub(crate) fn stats(&self) -> MvccStats {
        self.state.lock().stats
    }
}

/// A proof-carrying read: the exact stored record plus its Merkle path.
///
/// Ship `record` and `proof` to a client that pinned the partition's root
/// digest; [`VerifiedRead::verify`] (or [`verify_read_proof`] directly)
/// checks membership with no keys and no store access.
#[derive(Debug, Clone)]
pub struct VerifiedRead {
    /// The stored record (type tag + pickle) the proof vouches for.
    pub record: Vec<u8>,
    /// Merkle path from the record to the partition root digest.
    pub proof: ReadProof,
}

impl VerifiedRead {
    /// Checks the record against a trusted root digest.
    pub fn verify(&self, root: &HashValue) -> bool {
        verify_read_proof(&self.proof, &self.record, root)
    }
}

/// A snapshot-isolation transaction.
///
/// Reads resolve against the snapshot pinned at [`ObjectStore::begin_mvcc`]
/// time; writes buffer locally and commit atomically with
/// first-committer-wins conflict detection. Unlike [`crate::Tx`], no locks
/// are taken during the transaction — conflicts surface at commit as
/// [`ObjectError::WriteConflict`], and the transaction should retry
/// ([`ObjectStore::run_mvcc`] does).
pub struct MvccTx {
    store: Arc<ObjectStore>,
    snapshot: u64,
    /// Ordered buffered writes (last write to an id wins); `None` deletes.
    writes: Vec<(ObjectId, Option<Arc<dyn StoredObject>>)>,
    /// Ids allocated by this transaction (exempt from conflict checks).
    created: HashSet<ObjectId>,
    finished: bool,
}

impl MvccTx {
    pub(crate) fn begin(store: Arc<ObjectStore>) -> MvccTx {
        let snapshot = store
            .mvcc
            .as_ref()
            .expect("begin_mvcc checked the knob")
            .begin_snapshot();
        MvccTx {
            store,
            snapshot,
            writes: Vec::new(),
            created: HashSet::new(),
            finished: false,
        }
    }

    fn mgr(&self) -> &MvccManager {
        self.store
            .mvcc
            .as_ref()
            .expect("MvccTx exists only when mvcc is enabled")
    }

    fn check_open(&self) -> Result<()> {
        if self.finished {
            Err(ObjectError::TxFinished)
        } else {
            Ok(())
        }
    }

    fn local(&self, id: ObjectId) -> Option<&Option<Arc<dyn StoredObject>>> {
        self.writes
            .iter()
            .rev()
            .find(|(i, _)| *i == id)
            .map(|(_, w)| w)
    }

    /// The commit sequence number this transaction reads at.
    pub fn snapshot(&self) -> u64 {
        self.snapshot
    }

    /// Number of buffered writes.
    pub fn pending_writes(&self) -> usize {
        self.writes.len()
    }

    /// Creates a new object in `partition`, returning its id.
    ///
    /// # Errors
    ///
    /// Fails if the partition does not exist.
    pub fn create(
        &mut self,
        partition: PartitionId,
        object: Arc<dyn StoredObject>,
    ) -> Result<ObjectId> {
        let _t = tdb_core::metrics::span(tdb_core::metrics::modules::OBJECT_STORE);
        self.check_open()?;
        let chunk = self.store.chunks.allocate_chunk(partition)?;
        let id = ObjectId(chunk);
        self.created.insert(id);
        self.writes.push((id, Some(object)));
        Ok(id)
    }

    /// Reads an object at the transaction's snapshot, checking its type.
    ///
    /// # Errors
    ///
    /// Fails if the object is absent at the snapshot or the type differs.
    pub fn get<T: StoredObject>(&mut self, id: ObjectId) -> Result<Arc<T>> {
        downcast(self.get_dyn(id)?)
    }

    /// Reads an object at the transaction's snapshot, dynamically typed.
    ///
    /// # Errors
    ///
    /// Fails if the object is absent at the snapshot.
    pub fn get_dyn(&mut self, id: ObjectId) -> Result<Arc<dyn StoredObject>> {
        let _t = tdb_core::metrics::span(tdb_core::metrics::modules::OBJECT_STORE);
        self.check_open()?;
        if let Some(w) = self.local(id) {
            return w.clone().ok_or(ObjectError::NotFound(id));
        }
        match self.mgr().chain_read(id, self.snapshot) {
            ChainRead::Hit(Some(obj)) => Ok(obj),
            ChainRead::Hit(None) => Err(ObjectError::NotFound(id)),
            ChainRead::Miss => self.store.load(id),
        }
    }

    /// Reads an object and, when possible, a client-verifiable proof of
    /// its membership in the committed Merkle tree.
    ///
    /// Returns `None` for the proof when the snapshot's version has been
    /// superseded by a newer commit, a commit on the object is in flight,
    /// or the object carries uncommitted local writes — the tree can only
    /// prove *current* committed state. The read value is correct either
    /// way.
    ///
    /// # Errors
    ///
    /// Fails like [`MvccTx::get`].
    pub fn get_with_proof<T: StoredObject>(
        &mut self,
        id: ObjectId,
    ) -> Result<(Arc<T>, Option<VerifiedRead>)> {
        let (obj, proof) = self.get_with_proof_dyn(id)?;
        Ok((downcast(obj)?, proof))
    }

    /// Dynamically-typed [`MvccTx::get_with_proof`] — the form the
    /// command layer uses, where the record crosses a wire untyped.
    ///
    /// # Errors
    ///
    /// Fails like [`MvccTx::get_dyn`].
    pub fn get_with_proof_dyn(
        &mut self,
        id: ObjectId,
    ) -> Result<(Arc<dyn StoredObject>, Option<VerifiedRead>)> {
        let _t = tdb_core::metrics::span(tdb_core::metrics::modules::OBJECT_STORE);
        self.check_open()?;
        if self.local(id).is_none() && self.mgr().provable(id, self.snapshot) {
            match self.store.chunks.read_with_proof(id.0) {
                Ok((record, proof)) => {
                    // Re-check after the read: a commit may have published
                    // between the provability check and the store read, in
                    // which case the bytes are newer than the snapshot.
                    if self.mgr().provable(id, self.snapshot) {
                        let obj = self.store.registry.unpickle(&record)?;
                        return Ok((obj, Some(VerifiedRead { record, proof })));
                    }
                }
                Err(tdb_core::CoreError::NotAllocated(_))
                | Err(tdb_core::CoreError::NotWritten(_)) => {
                    // Fall through: the chain path reports absence with the
                    // canonical error.
                }
                Err(e) => return Err(e.into()),
            }
        }
        self.mgr().note_proof_fallback();
        Ok((self.get_dyn(id)?, None))
    }

    fn exists_at_snapshot(&mut self, id: ObjectId) -> Result<bool> {
        match self.get_dyn(id) {
            Ok(_) => Ok(true),
            Err(ObjectError::NotFound(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Replaces an object's state (buffered until commit).
    ///
    /// # Errors
    ///
    /// Fails if the object is absent at the snapshot.
    pub fn put(&mut self, id: ObjectId, object: Arc<dyn StoredObject>) -> Result<()> {
        let _t = tdb_core::metrics::span(tdb_core::metrics::modules::OBJECT_STORE);
        self.check_open()?;
        if !self.exists_at_snapshot(id)? {
            return Err(ObjectError::NotFound(id));
        }
        self.writes.push((id, Some(object)));
        Ok(())
    }

    /// Deletes an object (buffered until commit).
    ///
    /// # Errors
    ///
    /// Fails if the object is absent at the snapshot.
    pub fn delete(&mut self, id: ObjectId) -> Result<()> {
        let _t = tdb_core::metrics::span(tdb_core::metrics::modules::OBJECT_STORE);
        self.check_open()?;
        if !self.exists_at_snapshot(id)? {
            return Err(ObjectError::NotFound(id));
        }
        self.writes.push((id, None));
        Ok(())
    }

    /// Commits under first-committer-wins snapshot isolation.
    ///
    /// # Errors
    ///
    /// [`ObjectError::WriteConflict`] when another transaction committed a
    /// written object after this one's snapshot (retry); chunk-store
    /// failures roll back with nothing applied.
    pub fn commit(mut self) -> Result<()> {
        let _t = tdb_core::metrics::span(tdb_core::metrics::modules::OBJECT_STORE);
        self.check_open()?;
        self.finished = true;

        // Net effect per object, in first-touch order.
        let mut net: Vec<(ObjectId, Option<Arc<dyn StoredObject>>)> = Vec::new();
        for (id, w) in std::mem::take(&mut self.writes) {
            if let Some(slot) = net.iter_mut().find(|(i, _)| *i == id) {
                slot.1 = w;
            } else {
                net.push((id, w));
            }
        }
        let mgr = self.mgr();
        if net.is_empty() {
            mgr.end_snapshot(self.snapshot);
            return Ok(());
        }

        // 1. Conflict check + write locks.
        let need_base = match mgr.prepare(&net, &self.created, self.snapshot) {
            Ok(need) => need,
            Err(e) => {
                mgr.end_snapshot(self.snapshot);
                return Err(e);
            }
        };

        // 2. Base capture: stable under our write locks.
        let mut bases = Vec::with_capacity(need_base.len());
        for id in need_base {
            let base = if self.created.contains(&id) {
                None
            } else {
                match self.store.load(id) {
                    Ok(obj) => Some(obj),
                    Err(ObjectError::NotFound(_)) => None,
                    Err(e) => {
                        mgr.release(&net);
                        mgr.end_snapshot(self.snapshot);
                        return Err(e);
                    }
                }
            };
            bases.push((id, base));
        }
        mgr.install_bases(bases);

        // 3. One atomic chunk-store commit; concurrent transactional
        // commits batch through the group-commit leader.
        let mut ops = Vec::with_capacity(net.len());
        let mut sizes = Vec::with_capacity(net.len());
        for (id, w) in &net {
            match w {
                Some(obj) => {
                    let record = TypeRegistry::pickle(obj.as_ref());
                    sizes.push(record.len());
                    ops.push(CommitOp::WriteChunk {
                        id: id.0,
                        bytes: record,
                    });
                }
                None => {
                    sizes.push(0);
                    ops.push(CommitOp::DeallocChunk { id: id.0 });
                }
            }
        }
        match self.store.chunks.commit(ops) {
            Ok(()) => {
                // 4. Publish: csn assignment and visibility, atomically.
                mgr.publish(net, &sizes, &self.store.cache);
                mgr.end_snapshot(self.snapshot);
                Ok(())
            }
            Err(e) => {
                mgr.release(&net);
                mgr.end_snapshot(self.snapshot);
                Err(e.into())
            }
        }
    }

    /// Aborts: drops buffered writes and releases the snapshot.
    pub fn abort(mut self) {
        self.finished = true;
        self.writes.clear();
        self.mgr().end_snapshot(self.snapshot);
    }
}

impl Drop for MvccTx {
    fn drop(&mut self) {
        if !self.finished {
            self.mgr().end_snapshot(self.snapshot);
        }
    }
}

impl Transactional for MvccTx {
    fn create(
        &mut self,
        partition: PartitionId,
        object: Arc<dyn StoredObject>,
    ) -> Result<ObjectId> {
        MvccTx::create(self, partition, object)
    }

    fn get_dyn(&mut self, id: ObjectId) -> Result<Arc<dyn StoredObject>> {
        MvccTx::get_dyn(self, id)
    }

    fn get_for_update<T: StoredObject>(&mut self, id: ObjectId) -> Result<Arc<T>> {
        // MVCC takes no read locks; write conflicts surface at commit.
        MvccTx::get(self, id)
    }

    fn put(&mut self, id: ObjectId, object: Arc<dyn StoredObject>) -> Result<()> {
        MvccTx::put(self, id, object)
    }

    fn delete(&mut self, id: ObjectId) -> Result<()> {
        MvccTx::delete(self, id)
    }
}
