//! Pickling and the type registry (§2.2, §7).
//!
//! "TDB stores abstract objects that the application can access without
//! explicitly invoking encryption, validation, and pickling. TDB pickles
//! objects using application-provided methods so the stored representation
//! is compact and portable." The object store also "adds safety against
//! errors in application programs" via type checking: every stored object
//! carries a type tag that is checked on unpickling.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use crate::errors::{ObjectError, Result};

/// An application object storable in the object store.
///
/// Implementations provide the pickling method; unpickling is registered
/// with the [`TypeRegistry`]. Objects are stored and cached as immutable
/// values — an update replaces the whole object.
pub trait StoredObject: Send + Sync + 'static {
    /// A small application-chosen tag identifying the concrete type.
    fn type_tag(&self) -> u32;

    /// Serializes the object compactly.
    fn pickle(&self) -> Vec<u8>;

    /// Upcast hook for downcasting on reads.
    fn as_any(&self) -> &dyn Any;
}

/// A function that unpickles bytes into an object of one registered type.
pub type Unpickler = fn(&[u8]) -> Result<Arc<dyn StoredObject>>;

/// Maps type tags to unpicklers.
#[derive(Default)]
pub struct TypeRegistry {
    unpicklers: HashMap<u32, Unpickler>,
}

impl TypeRegistry {
    /// An empty registry.
    pub fn new() -> TypeRegistry {
        TypeRegistry::default()
    }

    /// Registers the unpickler for `tag`.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is already registered with a different function —
    /// always a programming error worth failing loudly on.
    pub fn register(&mut self, tag: u32, unpickler: Unpickler) {
        if let Some(existing) = self.unpicklers.get(&tag) {
            assert!(
                std::ptr::fn_addr_eq(*existing, unpickler),
                "type tag {tag} registered twice with different unpicklers"
            );
            return;
        }
        self.unpicklers.insert(tag, unpickler);
    }

    /// Unpickles a stored record (tag + body).
    ///
    /// # Errors
    ///
    /// Fails on unknown tags or malformed bodies.
    pub fn unpickle(&self, record: &[u8]) -> Result<Arc<dyn StoredObject>> {
        if record.len() < 4 {
            return Err(ObjectError::BadPickle(
                "record shorter than a type tag".into(),
            ));
        }
        let tag = u32::from_le_bytes(record[..4].try_into().expect("4 bytes"));
        let unpickler = self
            .unpicklers
            .get(&tag)
            .ok_or(ObjectError::UnknownType(tag))?;
        unpickler(&record[4..])
    }

    /// Pickles an object into a stored record (tag + body).
    pub fn pickle(obj: &dyn StoredObject) -> Vec<u8> {
        let body = obj.pickle();
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&obj.type_tag().to_le_bytes());
        out.extend_from_slice(&body);
        out
    }
}

/// Downcasts a stored object to a concrete type, failing with a type-check
/// error (not a panic) on mismatch — the §7 safety property.
pub fn downcast<T: StoredObject>(obj: Arc<dyn StoredObject>) -> Result<Arc<T>> {
    if obj.as_any().is::<T>() {
        // Re-wrap through Any: Arc<dyn StoredObject> cannot be downcast
        // directly, so go through the raw pointer.
        let raw: *const dyn StoredObject = Arc::into_raw(obj);
        // SAFETY: the `is::<T>` check above guarantees the concrete type
        // behind the vtable is `T`; converting the data pointer to `*const
        // T` and reconstructing the Arc preserves the refcount.
        unsafe { Ok(Arc::from_raw(raw as *const T)) }
    } else {
        Err(ObjectError::TypeMismatch {
            expected: std::any::type_name::<T>().to_string(),
            found_tag: obj.type_tag(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Account {
        balance: i64,
    }

    impl StoredObject for Account {
        fn type_tag(&self) -> u32 {
            1
        }
        fn pickle(&self) -> Vec<u8> {
            self.balance.to_le_bytes().to_vec()
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn unpickle_account(body: &[u8]) -> Result<Arc<dyn StoredObject>> {
        let arr: [u8; 8] = body
            .try_into()
            .map_err(|_| ObjectError::BadPickle("account body".into()))?;
        Ok(Arc::new(Account {
            balance: i64::from_le_bytes(arr),
        }))
    }

    struct Other;
    impl StoredObject for Other {
        fn type_tag(&self) -> u32 {
            2
        }
        fn pickle(&self) -> Vec<u8> {
            Vec::new()
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn pickle_unpickle_roundtrip() {
        let mut reg = TypeRegistry::new();
        reg.register(1, unpickle_account);
        let record = TypeRegistry::pickle(&Account { balance: -42 });
        let obj = reg.unpickle(&record).unwrap();
        let account = downcast::<Account>(obj).unwrap();
        assert_eq!(account.balance, -42);
    }

    #[test]
    fn unknown_tag_rejected() {
        let reg = TypeRegistry::new();
        let record = TypeRegistry::pickle(&Account { balance: 1 });
        assert!(matches!(
            reg.unpickle(&record),
            Err(ObjectError::UnknownType(1))
        ));
    }

    #[test]
    fn short_record_rejected() {
        let reg = TypeRegistry::new();
        assert!(matches!(
            reg.unpickle(&[1, 2]),
            Err(ObjectError::BadPickle(_))
        ));
    }

    #[test]
    fn downcast_type_check() {
        let obj: Arc<dyn StoredObject> = Arc::new(Other);
        let err = downcast::<Account>(obj).unwrap_err();
        assert!(matches!(
            err,
            ObjectError::TypeMismatch { found_tag: 2, .. }
        ));
    }

    #[test]
    fn double_registration_same_fn_ok() {
        let mut reg = TypeRegistry::new();
        reg.register(1, unpickle_account);
        reg.register(1, unpickle_account);
    }
}
