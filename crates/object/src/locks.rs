//! The lock manager: two-phase read/write locking with timeout-based
//! deadlock breaking (§7).
//!
//! "The object store implements two-phase locking on objects and breaks
//! deadlocks using timeouts. Transactions acquire locks in either shared or
//! exclusive mode. We chose not to implement granular or operation-level
//! locks because we expect only a few concurrent transactions."

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::errors::{ObjectError, Result};
use crate::ObjectId;

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Transaction identifier within one object store.
pub type TxId = u64;

#[derive(Default)]
struct LockState {
    /// Transactions holding the lock in shared mode.
    sharers: Vec<TxId>,
    /// The transaction holding it exclusively, if any.
    owner: Option<TxId>,
}

impl LockState {
    fn can_grant(&self, tx: TxId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self.owner.is_none() || self.owner == Some(tx),
            LockMode::Exclusive => {
                let other_sharers = self.sharers.iter().any(|&t| t != tx);
                let other_owner = self.owner.is_some_and(|t| t != tx);
                !other_sharers && !other_owner
            }
        }
    }

    fn grant(&mut self, tx: TxId, mode: LockMode) {
        match mode {
            LockMode::Shared => {
                if self.owner != Some(tx) && !self.sharers.contains(&tx) {
                    self.sharers.push(tx);
                }
            }
            LockMode::Exclusive => {
                // An upgrade drops the shared slot.
                self.sharers.retain(|&t| t != tx);
                self.owner = Some(tx);
            }
        }
    }

    fn is_free(&self) -> bool {
        self.sharers.is_empty() && self.owner.is_none()
    }
}

/// The table of object locks.
pub struct LockManager {
    table: Mutex<HashMap<ObjectId, LockState>>,
    released: Condvar,
    timeout: Duration,
}

impl LockManager {
    /// Creates a manager with the given acquisition timeout.
    pub fn new(timeout: Duration) -> LockManager {
        LockManager {
            table: Mutex::new(HashMap::new()),
            released: Condvar::new(),
            timeout,
        }
    }

    /// Acquires (or upgrades to) `mode` on `id` for `tx`, waiting up to the
    /// timeout. Re-acquiring an already-held mode is a no-op.
    ///
    /// # Errors
    ///
    /// [`ObjectError::LockTimeout`] if the lock is still unavailable at the
    /// deadline — the paper's deadlock-breaking mechanism.
    pub fn acquire(&self, tx: TxId, id: ObjectId, mode: LockMode) -> Result<()> {
        let deadline = Instant::now() + self.timeout;
        let mut table = self.table.lock();
        loop {
            let state = table.entry(id).or_default();
            if state.can_grant(tx, mode) {
                state.grant(tx, mode);
                return Ok(());
            }
            if self.released.wait_until(&mut table, deadline).timed_out() {
                return Err(ObjectError::LockTimeout(id));
            }
        }
    }

    /// Releases every lock held by `tx` (commit or abort — 2PL releases all
    /// at once at transaction end).
    pub fn release_all(&self, tx: TxId) {
        let mut table = self.table.lock();
        table.retain(|_, state| {
            state.sharers.retain(|&t| t != tx);
            if state.owner == Some(tx) {
                state.owner = None;
            }
            !state.is_free()
        });
        drop(table);
        self.released.notify_all();
    }

    /// Number of objects currently locked (for tests).
    pub fn locked_count(&self) -> usize {
        self.table.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdb_core::{ChunkId, PartitionId};

    fn oid(n: u64) -> ObjectId {
        ObjectId(ChunkId::data(PartitionId(1), n))
    }

    fn mgr(ms: u64) -> LockManager {
        LockManager::new(Duration::from_millis(ms))
    }

    #[test]
    fn shared_locks_coexist() {
        let m = mgr(50);
        m.acquire(1, oid(0), LockMode::Shared).unwrap();
        m.acquire(2, oid(0), LockMode::Shared).unwrap();
        assert_eq!(m.locked_count(), 1);
        m.release_all(1);
        m.release_all(2);
        assert_eq!(m.locked_count(), 0);
    }

    #[test]
    fn exclusive_excludes() {
        let m = mgr(30);
        m.acquire(1, oid(0), LockMode::Exclusive).unwrap();
        assert!(matches!(
            m.acquire(2, oid(0), LockMode::Shared),
            Err(ObjectError::LockTimeout(_))
        ));
        assert!(matches!(
            m.acquire(2, oid(0), LockMode::Exclusive),
            Err(ObjectError::LockTimeout(_))
        ));
        m.release_all(1);
        m.acquire(2, oid(0), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn reentrant_and_upgrade() {
        let m = mgr(30);
        m.acquire(1, oid(0), LockMode::Shared).unwrap();
        m.acquire(1, oid(0), LockMode::Shared).unwrap();
        // Sole reader upgrades.
        m.acquire(1, oid(0), LockMode::Exclusive).unwrap();
        // Exclusive holder may "re-acquire" shared.
        m.acquire(1, oid(0), LockMode::Shared).unwrap();
        m.release_all(1);
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let m = mgr(30);
        m.acquire(1, oid(0), LockMode::Shared).unwrap();
        m.acquire(2, oid(0), LockMode::Shared).unwrap();
        assert!(matches!(
            m.acquire(1, oid(0), LockMode::Exclusive),
            Err(ObjectError::LockTimeout(_))
        ));
        m.release_all(2);
        m.acquire(1, oid(0), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn waiters_wake_on_release() {
        let m = Arc::new(mgr(2000));
        m.acquire(1, oid(0), LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || m2.acquire(2, oid(0), LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        m.release_all(1);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn deadlock_broken_by_timeout() {
        let m = Arc::new(mgr(100));
        m.acquire(1, oid(0), LockMode::Exclusive).unwrap();
        m.acquire(2, oid(1), LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        // Tx 1 wants oid(1), tx 2 wants oid(0): a cycle.
        let t = std::thread::spawn(move || m2.acquire(1, oid(1), LockMode::Exclusive));
        let r2 = m.acquire(2, oid(0), LockMode::Exclusive);
        let r1 = t.join().unwrap();
        // At least one of the two must have timed out.
        assert!(r1.is_err() || r2.is_err());
    }
}
