//! `tdb-client`: connection handle for the tdb wire protocol.
//!
//! Counterpart to `tdb-server`, sharing the protocol definition in
//! [`tdb::wire`]. Two call styles:
//!
//! - [`TdbClient::call`]: one request, one response — simple, a round
//!   trip each.
//! - [`TdbClient::send`] / [`TdbClient::recv`]: **pipelining**. Queue
//!   any number of requests without waiting; responses arrive strictly
//!   in send order. This is how a single connection keeps the server's
//!   group-commit batcher fed.
//!
//! Server-side faults arrive as **typed errors**: the stable numeric
//! codes in [`tdb::TdbError`]'s wire form decode back to the same
//! variant with the same `Display`, so a client matches on
//! `CoreError::TamperDetected(..)` exactly as embedded code would.
//!
//! The client also carries the trust side of the paper's story:
//! [`TdbClient::get_verified`] fetches a record with its Merkle proof
//! and verifies it **locally** with [`tdb::verify_read_proof`] against a
//! pinned root digest — the server (and the network) drop out of the
//! trusted base for reads.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use tdb::wire::{
    self, client_auth_mac, server_welcome_mac, AuthResult, ClientAuth, Hello, NONCE_LEN,
};
use tdb::{Command, ReadProof, Response, TdbError, TxMode};
use tdb_core::PartitionId;
use tdb_crypto::{HashValue, SecretKey};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connection reset, refused, EOF mid-frame).
    Io(io::Error),
    /// The peer spoke the protocol wrong (bad frame, bad envelope).
    Protocol(String),
    /// The server refused the handshake.
    AuthRejected(String),
    /// The server's welcome MAC did not verify: whatever answered the
    /// handshake does not hold the pre-shared key.
    ServerImpostor,
    /// The server executed the command and returned a typed error.
    Remote(TdbError),
    /// The response decoded fine but had the wrong shape for this call
    /// (e.g. a `Count` where an `Id` was expected).
    Unexpected(Response),
    /// A verified read came back without a proof (value superseded or a
    /// commit in flight — retry, or accept the unproven record).
    ProofUnavailable,
    /// A verified read's proof failed local verification: the record is
    /// NOT a member of the tree under the pinned root. Treat as tamper.
    ProofInvalid,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::AuthRejected(reason) => write!(f, "authentication rejected: {reason}"),
            ClientError::ServerImpostor => {
                write!(f, "server failed mutual authentication (bad welcome MAC)")
            }
            ClientError::Remote(e) => write!(f, "server error [{}]: {e}", e.code()),
            ClientError::Unexpected(r) => write!(f, "unexpected response shape: {r:?}"),
            ClientError::ProofUnavailable => {
                write!(f, "no proof available for this read (version superseded)")
            }
            ClientError::ProofInvalid => {
                write!(f, "read proof failed verification against the pinned root")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ClientError>;

/// Store health as last stamped on a response envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteHealth {
    /// 0 live, 1 degraded, 2 poisoned ([`tdb::wire::health`]).
    pub state: u8,
    /// Reason when not live.
    pub reason: String,
}

impl RemoteHealth {
    /// True when the store was fully operational at the last response.
    pub fn is_live(&self) -> bool {
        self.state == wire::health::LIVE
    }
}

/// An authenticated connection to a tdb server.
pub struct TdbClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    session_id: u64,
    next_request: u64,
    /// Request ids sent but not yet answered, in send order.
    pending: VecDeque<u64>,
    last_health: RemoteHealth,
}

impl TdbClient {
    /// Connects, runs the mutual challenge-response handshake as
    /// `principal`, and returns a ready client.
    ///
    /// # Errors
    ///
    /// [`ClientError::AuthRejected`] when the server refuses the MAC;
    /// [`ClientError::ServerImpostor`] when the server's counter-MAC
    /// fails — the connection must not be used.
    pub fn connect(
        addr: impl ToSocketAddrs,
        principal: &str,
        auth_key: &[u8],
    ) -> Result<TdbClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);

        let hello_payload = wire::read_frame(&mut reader)?;
        let hello =
            Hello::decode(&hello_payload).map_err(|e| ClientError::Protocol(e.to_string()))?;

        let mut client_nonce = [0u8; NONCE_LEN];
        client_nonce.copy_from_slice(SecretKey::random(NONCE_LEN).as_bytes());
        let auth = ClientAuth {
            principal: principal.to_string(),
            nonce: client_nonce,
            mac: client_auth_mac(auth_key, &hello.nonce, &client_nonce, principal),
        };
        wire::write_frame(&mut writer, &auth.encode())?;
        writer.flush()?;

        let verdict_payload = wire::read_frame(&mut reader)?;
        let verdict = AuthResult::decode(&verdict_payload)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        let session_id = match verdict {
            AuthResult::Reject { reason } => return Err(ClientError::AuthRejected(reason)),
            AuthResult::Welcome { mac, session_id } => {
                let expected = server_welcome_mac(auth_key, &client_nonce, &hello.nonce);
                if !expected.ct_eq(&mac) {
                    return Err(ClientError::ServerImpostor);
                }
                session_id
            }
        };
        Ok(TdbClient {
            reader,
            writer,
            session_id,
            next_request: 1,
            pending: VecDeque::new(),
            last_health: RemoteHealth {
                state: wire::health::LIVE,
                reason: String::new(),
            },
        })
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Health as stamped on the most recent response.
    pub fn last_health(&self) -> &RemoteHealth {
        &self.last_health
    }

    /// Number of requests sent but not yet answered.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Queues one request without waiting for its response. Returns the
    /// request id; responses arrive in send order via [`TdbClient::recv`].
    /// Call [`TdbClient::flush`] (or `recv`, which flushes) after the
    /// last send of a batch.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(&mut self, cmd: &Command) -> Result<u64> {
        let id = self.next_request;
        self.next_request += 1;
        let payload = wire::encode_request(id, cmd);
        wire::write_frame(&mut self.writer, &payload)?;
        self.pending.push_back(id);
        Ok(id)
    }

    /// Flushes queued requests to the socket.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Receives the next in-order response. Updates the health view from
    /// the envelope.
    ///
    /// # Errors
    ///
    /// Errors on transport failure, envelope corruption, or a response
    /// id that does not match the oldest outstanding request.
    pub fn recv(&mut self) -> Result<(u64, Response)> {
        self.flush()?;
        let payload = wire::read_frame(&mut self.reader)?;
        let envelope =
            wire::decode_response(&payload).map_err(|e| ClientError::Protocol(e.to_string()))?;
        self.last_health = RemoteHealth {
            state: envelope.health,
            reason: envelope.health_reason,
        };
        match self.pending.pop_front() {
            Some(expected) if expected == envelope.request_id => {}
            Some(expected) => {
                return Err(ClientError::Protocol(format!(
                    "response for request {} while {} was oldest outstanding",
                    envelope.request_id, expected
                )))
            }
            None => {
                return Err(ClientError::Protocol(format!(
                    "unsolicited response for request {}",
                    envelope.request_id
                )))
            }
        }
        Ok((envelope.request_id, envelope.response))
    }

    /// One request, one response. Any remote error comes back as
    /// [`ClientError::Remote`] with the original typed error.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or remote failures.
    pub fn call(&mut self, cmd: &Command) -> Result<Response> {
        self.send(cmd)?;
        // Drain earlier pipelined responses so ordering stays intact;
        // their results are discarded (callers that care use recv).
        while self.pending.len() > 1 {
            self.recv()?;
        }
        let (_, response) = self.recv()?;
        match response {
            Response::Error(err) => Err(ClientError::Remote(err.0)),
            other => Ok(other),
        }
    }

    fn expect_ok(&mut self, cmd: &Command) -> Result<()> {
        match self.call(cmd)? {
            Response::Ok => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Command::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// The store's health.
    ///
    /// # Errors
    ///
    /// Transport or remote failures.
    pub fn health(&mut self) -> Result<RemoteHealth> {
        match self.call(&Command::Health)? {
            Response::Health { state, reason } => Ok(RemoteHealth { state, reason }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// The default partition's committed root digest — fetch once,
    /// **pin**, and verify every proof-carrying read against it.
    ///
    /// # Errors
    ///
    /// Transport or remote failures.
    pub fn snapshot_root(&mut self) -> Result<HashValue> {
        match self.call(&Command::SnapshotRoot)? {
            Response::Root(bytes) => Ok(HashValue::new(&bytes)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Opens a transaction on the server-side session.
    ///
    /// # Errors
    ///
    /// Remote failure when one is already open.
    pub fn begin(&mut self, mode: TxMode) -> Result<()> {
        self.expect_ok(&Command::Begin(mode))
    }

    /// Commits the open transaction. `Ok` means the commit is durable.
    ///
    /// # Errors
    ///
    /// Remote failure (conflict, store fault) — nothing was applied.
    pub fn commit(&mut self) -> Result<()> {
        self.expect_ok(&Command::Commit)
    }

    /// Aborts the open transaction.
    ///
    /// # Errors
    ///
    /// Remote failure when none is open.
    pub fn abort(&mut self) -> Result<()> {
        self.expect_ok(&Command::Abort)
    }

    /// Creates an object from a raw record, returning its id.
    ///
    /// # Errors
    ///
    /// Remote failures (unknown type tag, bad pickle, store faults).
    pub fn create(&mut self, partition: PartitionId, record: Vec<u8>) -> Result<tdb::ObjectId> {
        match self.call(&Command::Create { partition, record })? {
            Response::Id(id) => Ok(id),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Reads an object as a raw record.
    ///
    /// # Errors
    ///
    /// Remote failures (not found, store faults).
    pub fn get(&mut self, id: tdb::ObjectId) -> Result<Vec<u8>> {
        match self.call(&Command::Get(id))? {
            Response::Record(record) => Ok(record),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Replaces an object's state from a raw record.
    ///
    /// # Errors
    ///
    /// Remote failures.
    pub fn put(&mut self, id: tdb::ObjectId, record: Vec<u8>) -> Result<()> {
        self.expect_ok(&Command::Put { id, record })
    }

    /// Deletes an object.
    ///
    /// # Errors
    ///
    /// Remote failures.
    pub fn delete(&mut self, id: tdb::ObjectId) -> Result<()> {
        self.expect_ok(&Command::Delete(id))
    }

    /// A **verified read**: fetches the record plus its Merkle proof and
    /// checks membership locally against `pinned_root` — the root this
    /// client fetched and pinned earlier. The server, the network, and
    /// the untrusted disk all drop out of the trusted base: if anything
    /// along the way altered the record (or the proof), verification
    /// fails.
    ///
    /// # Errors
    ///
    /// [`ClientError::ProofUnavailable`] when the server could not prove
    /// this version (superseded by a newer commit — refetch the root);
    /// [`ClientError::ProofInvalid`] when verification fails (tamper).
    pub fn get_verified(&mut self, id: tdb::ObjectId, pinned_root: &HashValue) -> Result<Vec<u8>> {
        match self.call(&Command::GetWithProof(id))? {
            Response::VerifiedRecord { record, proof, .. } => {
                let Some(proof_bytes) = proof else {
                    return Err(ClientError::ProofUnavailable);
                };
                let proof =
                    ReadProof::decode(&proof_bytes).map_err(|_| ClientError::ProofInvalid)?;
                if !tdb::verify_read_proof(&proof, &record, pinned_root) {
                    return Err(ClientError::ProofInvalid);
                }
                Ok(record)
            }
            other => Err(ClientError::Unexpected(other)),
        }
    }
}

impl fmt::Debug for TdbClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TdbClient")
            .field("session_id", &self.session_id)
            .field("outstanding", &self.pending.len())
            .finish_non_exhaustive()
    }
}
