//! The transport-agnostic command layer.
//!
//! Every operation a client can ask of the trusted database — object,
//! collection, transaction, proof, and admin surfaces — is one variant of
//! [`Command`]; every reply is one variant of [`Response`]. The embedded
//! API ([`crate::Session::dispatch`]) and the network server both execute
//! commands through this single layer, so the two paths cannot drift: a
//! parity test replays one command stream through both and compares the
//! responses byte for byte.
//!
//! Both enums carry a hand-rolled little-endian wire form (the same
//! [`Enc`]/[`Dec`] codec the chunk store uses on disk). Objects cross the
//! wire as **raw records** — the `type tag + pickle` bytes the object
//! store persists — so the server-side type registry stays the schema
//! authority and the client needs no Rust types to move data. Errors
//! cross as stable numeric codes ([`TdbError::encode_wire`]) and decode
//! back to the same typed error, `Display` and all.

use std::fmt;

use tdb_core::codec::{Dec, Enc};
use tdb_core::{CoreError, PartitionId};
use tdb_object::errors::ObjectError;
use tdb_object::ObjectId;

use crate::{CollectionId, IndexKind, TdbError};

/// Which concurrency-control scheme a `Begin` opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxMode {
    /// Two-phase locking ([`crate::Tx`]).
    Locking,
    /// Snapshot isolation ([`crate::MvccTx`]; needs the `mvcc` knob).
    Mvcc,
}

/// One request against the trusted database.
///
/// Wire form: `u16` opcode, then the variant's fields. Opcodes are part
/// of the protocol — never renumber an existing variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Liveness probe; answered from memory.
    Ping,
    /// The store's health state (live / degraded / poisoned).
    Health,
    /// The default partition's committed root digest — the trust anchor
    /// remote verifiers pin.
    SnapshotRoot,
    /// Force a chunk-store checkpoint.
    Checkpoint,
    /// Run the log cleaner over up to this many segments.
    Clean(u64),
    /// Open a transaction on the session. Fails if one is already open.
    Begin(TxMode),
    /// Commit the session's open transaction.
    Commit,
    /// Abort the session's open transaction.
    Abort,
    /// Create an object from a raw record in a partition.
    Create {
        /// Target partition.
        partition: PartitionId,
        /// Type tag + pickle, validated against the server registry.
        record: Vec<u8>,
    },
    /// Read an object as a raw record.
    Get(ObjectId),
    /// Read an object plus, when possible, a Merkle proof of membership
    /// in the committed tree (MVCC transactions only).
    GetWithProof(ObjectId),
    /// Replace an object's state from a raw record.
    Put {
        /// Object to overwrite.
        id: ObjectId,
        /// Type tag + pickle, validated against the server registry.
        record: Vec<u8>,
    },
    /// Delete an object.
    Delete(ObjectId),
    /// Create an empty collection.
    CollCreate {
        /// Target partition.
        partition: PartitionId,
        /// Collection name.
        name: String,
    },
    /// Number of members in a collection.
    CollLen(CollectionId),
    /// Create an object from a raw record and add it to a collection.
    CollInsert {
        /// Target collection.
        coll: CollectionId,
        /// Type tag + pickle of the new member.
        record: Vec<u8>,
    },
    /// Add an existing object to a collection.
    CollAdd {
        /// Target collection.
        coll: CollectionId,
        /// The member.
        id: ObjectId,
    },
    /// Remove a member from a collection and delete the object.
    CollRemove {
        /// Target collection.
        coll: CollectionId,
        /// The member.
        id: ObjectId,
    },
    /// Every member object id, in rank order.
    CollScan(CollectionId),
    /// Add an index over a collection (built over existing members).
    CollAddIndex {
        /// Target collection.
        coll: CollectionId,
        /// Index name.
        name: String,
        /// Named key extractor (must be registered server-side).
        extractor: String,
        /// Sorted (B+-tree) or unsorted (hash).
        kind: IndexKind,
    },
    /// Exact-match lookup in an index.
    CollLookup {
        /// Target collection.
        coll: CollectionId,
        /// Index name.
        index: String,
        /// Exact key.
        key: Vec<u8>,
    },
    /// Range scan over a sorted index: `lo ≤ key < hi`.
    CollRange {
        /// Target collection.
        coll: CollectionId,
        /// Index name.
        index: String,
        /// Inclusive lower bound (`None` = open).
        lo: Option<Vec<u8>>,
        /// Exclusive upper bound (`None` = open).
        hi: Option<Vec<u8>>,
    },
}

/// One reply from the trusted database.
///
/// Wire form: `u16` opcode, then the variant's fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The command succeeded with nothing to return.
    Ok,
    /// The command failed with a typed error.
    Error(WireError),
    /// Reply to [`Command::Ping`].
    Pong,
    /// Reply to [`Command::Health`].
    Health {
        /// 0 = live, 1 = degraded, 2 = poisoned.
        state: u8,
        /// Human-readable reason when not live.
        reason: String,
    },
    /// A root digest (raw digest bytes).
    Root(Vec<u8>),
    /// An object id.
    Id(ObjectId),
    /// A raw record (type tag + pickle).
    Record(Vec<u8>),
    /// A record with an optional Merkle proof and the root it was
    /// current against. Clients verify with [`crate::verify_read_proof`]
    /// against their **pinned** root, not the one in the message.
    VerifiedRecord {
        /// The stored record the proof vouches for.
        record: Vec<u8>,
        /// Encoded [`crate::ReadProof`]; `None` when the read fell back
        /// to a superseded version (value still correct, not provable).
        proof: Option<Vec<u8>>,
        /// The server's committed root at read time (raw digest bytes).
        root: Vec<u8>,
    },
    /// A list of object ids.
    Ids(Vec<ObjectId>),
    /// A count.
    Count(u64),
}

/// A [`TdbError`] in decoded wire form.
///
/// Kept as its own type (rather than `TdbError` directly) so responses
/// stay `PartialEq`-comparable in parity tests and so decoding is
/// infallible to construct.
#[derive(Debug)]
pub struct WireError(pub TdbError);

impl Clone for WireError {
    fn clone(&self) -> Self {
        // `TdbError` holds non-`Clone` members (`std::io::Error`); the
        // wire form is lossless, so a round trip is an exact clone.
        let mut e = Enc::new();
        self.0.encode_wire(&mut e);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        WireError(TdbError::decode_wire(&mut d).expect("encode_wire output always decodes"))
    }
}

impl PartialEq for WireError {
    fn eq(&self, other: &Self) -> bool {
        self.0.code() == other.0.code() && self.0.to_string() == other.0.to_string()
    }
}

impl Eq for WireError {}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl TdbError {
    /// The stable numeric code of this error (the inner layer's code:
    /// 1–199 core, 200–299 object).
    pub fn code(&self) -> u16 {
        match self {
            TdbError::Core(e) => e.code(),
            TdbError::Object(e) => e.code(),
        }
    }

    /// Appends the lossless wire form: a layer tag, then the inner
    /// error's own wire form.
    pub fn encode_wire(&self, e: &mut Enc) {
        match self {
            TdbError::Core(err) => {
                e.u8(0);
                err.encode_wire(e);
            }
            TdbError::Object(err) => {
                e.u8(1);
                err.encode_wire(e);
            }
        }
    }

    /// Decodes one error from its wire form.
    ///
    /// # Errors
    ///
    /// Fails with a decode-layer error on truncation or unknown tags.
    pub fn decode_wire(d: &mut Dec) -> Result<TdbError, TdbError> {
        match d.u8().map_err(TdbError::Core)? {
            0 => Ok(TdbError::Core(
                CoreError::decode_wire(d).map_err(TdbError::Core)?,
            )),
            1 => Ok(TdbError::Object(
                ObjectError::decode_wire(d).map_err(TdbError::Object)?,
            )),
            tag => Err(TdbError::Core(CoreError::Corrupt(format!(
                "unknown error layer tag {tag}"
            )))),
        }
    }
}

/// Decode failures surface as `CoreError::Corrupt`.
fn bad(what: &str) -> CoreError {
    CoreError::Corrupt(format!("command wire form: {what}"))
}

fn enc_object_id(e: &mut Enc, id: ObjectId) {
    e.u32(id.partition().0);
    e.u64(id.rank());
}

fn dec_object_id(d: &mut Dec) -> Result<ObjectId, CoreError> {
    let partition = PartitionId(d.u32()?);
    Ok(ObjectId::from_parts(partition, d.u64()?))
}

fn enc_opt_bytes(e: &mut Enc, v: &Option<Vec<u8>>) {
    match v {
        Some(b) => {
            e.u8(1);
            e.bytes(b);
        }
        None => {
            e.u8(0);
        }
    }
}

fn dec_opt_bytes(d: &mut Dec) -> Result<Option<Vec<u8>>, CoreError> {
    Ok(match d.u8()? {
        0 => None,
        1 => Some(d.bytes()?.to_vec()),
        _ => return Err(bad("option tag")),
    })
}

impl Command {
    /// The wire opcode of this command.
    pub fn opcode(&self) -> u16 {
        match self {
            Command::Ping => 1,
            Command::Health => 2,
            Command::SnapshotRoot => 3,
            Command::Checkpoint => 4,
            Command::Clean(_) => 5,
            Command::Begin(_) => 6,
            Command::Commit => 7,
            Command::Abort => 8,
            Command::Create { .. } => 9,
            Command::Get(_) => 10,
            Command::GetWithProof(_) => 11,
            Command::Put { .. } => 12,
            Command::Delete(_) => 13,
            Command::CollCreate { .. } => 14,
            Command::CollLen(_) => 15,
            Command::CollInsert { .. } => 16,
            Command::CollAdd { .. } => 17,
            Command::CollRemove { .. } => 18,
            Command::CollScan(_) => 19,
            Command::CollAddIndex { .. } => 20,
            Command::CollLookup { .. } => 21,
            Command::CollRange { .. } => 22,
        }
    }

    /// Appends the wire form of this command.
    pub fn encode(&self, e: &mut Enc) {
        e.u16(self.opcode());
        match self {
            Command::Ping
            | Command::Health
            | Command::SnapshotRoot
            | Command::Checkpoint
            | Command::Commit
            | Command::Abort => {}
            Command::Clean(n) => {
                e.u64(*n);
            }
            Command::Begin(mode) => {
                e.u8(match mode {
                    TxMode::Locking => 0,
                    TxMode::Mvcc => 1,
                });
            }
            Command::Create { partition, record } => {
                e.u32(partition.0);
                e.bytes(record);
            }
            Command::Get(id) | Command::GetWithProof(id) | Command::Delete(id) => {
                enc_object_id(e, *id);
            }
            Command::Put { id, record } => {
                enc_object_id(e, *id);
                e.bytes(record);
            }
            Command::CollCreate { partition, name } => {
                e.u32(partition.0);
                e.str(name);
            }
            Command::CollLen(coll) | Command::CollScan(coll) => {
                enc_object_id(e, coll.0);
            }
            Command::CollInsert { coll, record } => {
                enc_object_id(e, coll.0);
                e.bytes(record);
            }
            Command::CollAdd { coll, id } | Command::CollRemove { coll, id } => {
                enc_object_id(e, coll.0);
                enc_object_id(e, *id);
            }
            Command::CollAddIndex {
                coll,
                name,
                extractor,
                kind,
            } => {
                enc_object_id(e, coll.0);
                e.str(name);
                e.str(extractor);
                e.u8(match kind {
                    IndexKind::Sorted => 0,
                    IndexKind::Unsorted => 1,
                });
            }
            Command::CollLookup { coll, index, key } => {
                enc_object_id(e, coll.0);
                e.str(index);
                e.bytes(key);
            }
            Command::CollRange {
                coll,
                index,
                lo,
                hi,
            } => {
                enc_object_id(e, coll.0);
                e.str(index);
                enc_opt_bytes(e, lo);
                enc_opt_bytes(e, hi);
            }
        }
    }

    /// Decodes one command from its wire form.
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::Corrupt`] on truncation or unknown opcodes.
    pub fn decode(d: &mut Dec) -> Result<Command, CoreError> {
        Ok(match d.u16()? {
            1 => Command::Ping,
            2 => Command::Health,
            3 => Command::SnapshotRoot,
            4 => Command::Checkpoint,
            5 => Command::Clean(d.u64()?),
            6 => Command::Begin(match d.u8()? {
                0 => TxMode::Locking,
                1 => TxMode::Mvcc,
                _ => return Err(bad("tx mode")),
            }),
            7 => Command::Commit,
            8 => Command::Abort,
            9 => Command::Create {
                partition: PartitionId(d.u32()?),
                record: d.bytes()?.to_vec(),
            },
            10 => Command::Get(dec_object_id(d)?),
            11 => Command::GetWithProof(dec_object_id(d)?),
            12 => Command::Put {
                id: dec_object_id(d)?,
                record: d.bytes()?.to_vec(),
            },
            13 => Command::Delete(dec_object_id(d)?),
            14 => Command::CollCreate {
                partition: PartitionId(d.u32()?),
                name: d.str()?,
            },
            15 => Command::CollLen(CollectionId(dec_object_id(d)?)),
            16 => Command::CollInsert {
                coll: CollectionId(dec_object_id(d)?),
                record: d.bytes()?.to_vec(),
            },
            17 => Command::CollAdd {
                coll: CollectionId(dec_object_id(d)?),
                id: dec_object_id(d)?,
            },
            18 => Command::CollRemove {
                coll: CollectionId(dec_object_id(d)?),
                id: dec_object_id(d)?,
            },
            19 => Command::CollScan(CollectionId(dec_object_id(d)?)),
            20 => Command::CollAddIndex {
                coll: CollectionId(dec_object_id(d)?),
                name: d.str()?,
                extractor: d.str()?,
                kind: match d.u8()? {
                    0 => IndexKind::Sorted,
                    1 => IndexKind::Unsorted,
                    _ => return Err(bad("index kind")),
                },
            },
            21 => Command::CollLookup {
                coll: CollectionId(dec_object_id(d)?),
                index: d.str()?,
                key: d.bytes()?.to_vec(),
            },
            22 => Command::CollRange {
                coll: CollectionId(dec_object_id(d)?),
                index: d.str()?,
                lo: dec_opt_bytes(d)?,
                hi: dec_opt_bytes(d)?,
            },
            op => return Err(CoreError::Corrupt(format!("unknown command opcode {op}"))),
        })
    }
}

impl Response {
    /// The wire opcode of this response.
    pub fn opcode(&self) -> u16 {
        match self {
            Response::Ok => 1,
            Response::Error(_) => 2,
            Response::Pong => 3,
            Response::Health { .. } => 4,
            Response::Root(_) => 5,
            Response::Id(_) => 6,
            Response::Record(_) => 7,
            Response::VerifiedRecord { .. } => 8,
            Response::Ids(_) => 9,
            Response::Count(_) => 10,
        }
    }

    /// Appends the wire form of this response.
    pub fn encode(&self, e: &mut Enc) {
        e.u16(self.opcode());
        match self {
            Response::Ok | Response::Pong => {}
            Response::Error(err) => err.0.encode_wire(e),
            Response::Health { state, reason } => {
                e.u8(*state);
                e.str(reason);
            }
            Response::Root(root) => {
                e.bytes(root);
            }
            Response::Id(id) => enc_object_id(e, *id),
            Response::Record(record) => {
                e.bytes(record);
            }
            Response::VerifiedRecord {
                record,
                proof,
                root,
            } => {
                e.bytes(record);
                enc_opt_bytes(e, proof);
                e.bytes(root);
            }
            Response::Ids(ids) => {
                e.u32(ids.len() as u32);
                for id in ids {
                    enc_object_id(e, *id);
                }
            }
            Response::Count(n) => {
                e.u64(*n);
            }
        }
    }

    /// Encodes to a fresh buffer.
    pub fn encode_vec(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.encode(&mut e);
        e.finish()
    }

    /// Decodes one response from its wire form.
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::Corrupt`] on truncation or unknown opcodes.
    pub fn decode(d: &mut Dec) -> Result<Response, CoreError> {
        Ok(match d.u16()? {
            1 => Response::Ok,
            2 => Response::Error(WireError(
                TdbError::decode_wire(d).map_err(|e| bad(&e.to_string()))?,
            )),
            3 => Response::Pong,
            4 => Response::Health {
                state: d.u8()?,
                reason: d.str()?,
            },
            5 => Response::Root(d.bytes()?.to_vec()),
            6 => Response::Id(dec_object_id(d)?),
            7 => Response::Record(d.bytes()?.to_vec()),
            8 => Response::VerifiedRecord {
                record: d.bytes()?.to_vec(),
                proof: dec_opt_bytes(d)?,
                root: d.bytes()?.to_vec(),
            },
            9 => {
                let n = d.u32()? as usize;
                let mut ids = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    ids.push(dec_object_id(d)?);
                }
                Response::Ids(ids)
            }
            10 => Response::Count(d.u64()?),
            op => return Err(CoreError::Corrupt(format!("unknown response opcode {op}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_command(cmd: Command) {
        let mut e = Enc::new();
        cmd.encode(&mut e);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        let back = Command::decode(&mut d).expect("decode");
        assert_eq!(d.remaining(), 0, "{cmd:?}");
        assert_eq!(back, cmd);
    }

    fn round_trip_response(resp: Response) {
        let buf = resp.encode_vec();
        let mut d = Dec::new(&buf);
        let back = Response::decode(&mut d).expect("decode");
        assert_eq!(d.remaining(), 0, "{resp:?}");
        assert_eq!(back, resp);
    }

    #[test]
    fn command_wire_round_trip() {
        let id = ObjectId::from_parts(PartitionId(1), 42);
        let coll = CollectionId(ObjectId::from_parts(PartitionId(1), 7));
        for cmd in [
            Command::Ping,
            Command::Health,
            Command::SnapshotRoot,
            Command::Checkpoint,
            Command::Clean(4),
            Command::Begin(TxMode::Locking),
            Command::Begin(TxMode::Mvcc),
            Command::Commit,
            Command::Abort,
            Command::Create {
                partition: PartitionId(1),
                record: vec![1, 2, 3],
            },
            Command::Get(id),
            Command::GetWithProof(id),
            Command::Put {
                id,
                record: vec![9; 40],
            },
            Command::Delete(id),
            Command::CollCreate {
                partition: PartitionId(1),
                name: "goods".into(),
            },
            Command::CollLen(coll),
            Command::CollInsert {
                coll,
                record: vec![5, 5],
            },
            Command::CollAdd { coll, id },
            Command::CollRemove { coll, id },
            Command::CollScan(coll),
            Command::CollAddIndex {
                coll,
                name: "by_title".into(),
                extractor: "title".into(),
                kind: IndexKind::Sorted,
            },
            Command::CollLookup {
                coll,
                index: "by_title".into(),
                key: b"k".to_vec(),
            },
            Command::CollRange {
                coll,
                index: "by_title".into(),
                lo: Some(b"a".to_vec()),
                hi: None,
            },
        ] {
            round_trip_command(cmd);
        }
    }

    #[test]
    fn response_wire_round_trip() {
        let id = ObjectId::from_parts(PartitionId(2), 3);
        for resp in [
            Response::Ok,
            Response::Pong,
            Response::Error(WireError(TdbError::Core(CoreError::OutOfSpace))),
            Response::Error(WireError(TdbError::Object(ObjectError::NotFound(id)))),
            Response::Health {
                state: 1,
                reason: "write interrupted".into(),
            },
            Response::Root(vec![0xAB; 32]),
            Response::Id(id),
            Response::Record(vec![1, 2, 3, 4]),
            Response::VerifiedRecord {
                record: vec![7; 12],
                proof: Some(vec![8; 64]),
                root: vec![0xCD; 32],
            },
            Response::VerifiedRecord {
                record: vec![7; 12],
                proof: None,
                root: vec![0xCD; 32],
            },
            Response::Ids(vec![id, ObjectId::from_parts(PartitionId(2), 9)]),
            Response::Count(17),
        ] {
            round_trip_response(resp);
        }
    }

    #[test]
    fn unknown_opcodes_rejected() {
        let mut e = Enc::new();
        e.u16(999);
        let buf = e.finish();
        assert!(Command::decode(&mut Dec::new(&buf)).is_err());
        assert!(Response::decode(&mut Dec::new(&buf)).is_err());
    }
}
