#![warn(missing_docs)]

//! # TDB — a trusted database system on untrusted storage
//!
//! A from-scratch Rust reproduction of *"How to Build a Trusted Database
//! System on Untrusted Storage"* (Maheshwari, Vingralek, Shapiro — OSDI
//! 2000). TDB leverages a trusted processing environment and a small amount
//! of trusted storage (a secret key plus a tamper-resistant register or a
//! monotonic counter) to extend **secrecy** and **tamper detection** to a
//! scalable amount of untrusted storage.
//!
//! The database is encrypted and validated against a collision-resistant
//! hash tree embedded in the location map of a log-structured store, so
//! untrusted programs cannot read the database or modify it undetectably —
//! including replaying an old copy.
//!
//! ## Layers (paper Figure 2)
//!
//! - [`tdb_core::ChunkStore`] — trusted storage of named chunks in
//!   partitions with per-partition cryptography; atomic commits,
//!   checkpoints, crash recovery, log cleaning, copy-on-write snapshots.
//! - [`tdb_core::BackupStore`] — full/incremental backup sets on archival
//!   storage, restored under chain/completeness/policy constraints.
//! - [`tdb_object::ObjectStore`] — typed, pickled objects with
//!   transactional two-phase locking and an object cache.
//! - [`tdb_collection::CollectionStore`] — collections with dynamically
//!   maintained functional indexes (sorted and unsorted).
//!
//! [`TrustedDb`] assembles all four behind one handle.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use tdb::{TrustedDb, TrustedDbBuilder};
//! use tdb_storage::{MemArchive, MemStore, MemTrustedStore, CounterOverTrusted};
//! use tdb_crypto::SecretKey;
//!
//! let db = TrustedDbBuilder::new()
//!     .secret(SecretKey::random(24))
//!     .build_in_memory()
//!     .unwrap();
//!
//! // Objects are defined by the application; see `examples/` for a full
//! // schema. Raw chunk access works immediately:
//! let chunk = db.chunks().allocate_chunk(db.partition()).unwrap();
//! db.chunks().commit(vec![tdb_core::CommitOp::WriteChunk {
//!     id: chunk,
//!     bytes: b"sensitive, replay-protected state".to_vec(),
//! }]).unwrap();
//! assert_eq!(db.chunks().read(chunk).unwrap(), b"sensitive, replay-protected state");
//! ```

pub mod command;
pub mod paging;
pub mod session;
pub mod wire;

use std::fmt;
use std::sync::Arc;

pub use command::{Command, Response, TxMode, WireError};
pub use paging::TrustedPager;
pub use session::{Session, SessionStats};
pub use tdb_collection::{
    register_builtin_types, CollectionId, CollectionStore, ExtractorRegistry, IndexKey, IndexKind,
    KeyExtractor,
};
pub use tdb_core::backup::{BackupDescriptor, BackupSetInfo, BackupSpec, RestorePolicy};
pub use tdb_core::store::{ChunkStoreConfig, StoreHealth, TrustedBackend, ValidationMode};
pub use tdb_core::{verify_read_proof, ReadProof};
pub use tdb_core::{
    ApproveAll, ChunkId, ChunkStore, CommitOp, CryptoParams, FaultClass, LogicalId,
    MigrationOutcome, MigrationState, MigrationStep, PartitionId, ShardId, ShardManager, ShardOp,
    ShardSpec,
};
pub use tdb_object::pickle::{downcast, StoredObject, TypeRegistry, Unpickler};
pub use tdb_object::{
    MvccStats, MvccTx, ObjectId, ObjectStore, ObjectStoreConfig, Transactional, Tx, VerifiedRead,
};

use tdb_core::backup::BackupStore;
use tdb_crypto::SecretKey;
use tdb_storage::{
    ArchivalStore, CounterOverTrusted, MemArchive, MemStore, MemTrustedStore, SharedUntrusted,
    TrustedStore,
};

/// Unified error type for the facade.
#[derive(Debug)]
pub enum TdbError {
    /// Chunk/backup store errors (including tamper detection).
    Core(tdb_core::CoreError),
    /// Object/collection store errors.
    Object(tdb_object::errors::ObjectError),
}

impl fmt::Display for TdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdbError::Core(e) => write!(f, "{e}"),
            TdbError::Object(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TdbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TdbError::Core(e) => Some(e),
            TdbError::Object(e) => Some(e),
        }
    }
}

impl From<tdb_core::CoreError> for TdbError {
    fn from(e: tdb_core::CoreError) -> Self {
        TdbError::Core(e)
    }
}

impl From<tdb_object::errors::ObjectError> for TdbError {
    fn from(e: tdb_object::errors::ObjectError) -> Self {
        TdbError::Object(e)
    }
}

impl TdbError {
    /// True when the cause is detected tampering.
    pub fn is_tamper(&self) -> bool {
        match self {
            TdbError::Core(e) => e.is_tamper(),
            TdbError::Object(e) => e.is_tamper(),
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, TdbError>;

/// Builder assembling a [`TrustedDb`] from platform stores, a type
/// registry, and key extractors.
pub struct TrustedDbBuilder {
    secret: Option<SecretKey>,
    registry: TypeRegistry,
    extractors: ExtractorRegistry,
    chunk_config: ChunkStoreConfig,
    object_config: ObjectStoreConfig,
    partition_params: Option<CryptoParams>,
}

impl Default for TrustedDbBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TrustedDbBuilder {
    /// A builder with the paper's default configuration (3DES+SHA-1 system
    /// partition, DES+SHA-1 default partition, counter validation with
    /// Δut = 5).
    pub fn new() -> TrustedDbBuilder {
        let mut registry = TypeRegistry::new();
        register_builtin_types(&mut registry);
        TrustedDbBuilder {
            secret: None,
            registry,
            extractors: ExtractorRegistry::new(),
            chunk_config: ChunkStoreConfig::default(),
            object_config: ObjectStoreConfig::default(),
            partition_params: None,
        }
    }

    /// Sets the platform secret-store key (required).
    pub fn secret(mut self, key: SecretKey) -> Self {
        self.secret = Some(key);
        self
    }

    /// Registers an application object type.
    pub fn register_type(mut self, tag: u32, unpickler: Unpickler) -> Self {
        self.registry.register(tag, unpickler);
        self
    }

    /// Registers a named functional-index key extractor.
    pub fn register_extractor(mut self, name: &str, extractor: KeyExtractor) -> Self {
        self.extractors.register(name, extractor);
        self
    }

    /// Overrides the chunk store configuration.
    pub fn chunk_config(mut self, config: ChunkStoreConfig) -> Self {
        self.chunk_config = config;
        self
    }

    /// Overrides the object store configuration.
    pub fn object_config(mut self, config: ObjectStoreConfig) -> Self {
        self.object_config = config;
        self
    }

    /// Enables snapshot-isolation MVCC transactions
    /// ([`TrustedDb::begin_mvcc`], [`TrustedDb::run_mvcc`]). Off by
    /// default: the paper's object store is single-writer two-phase
    /// locking, and with the knob off the commit path is unchanged.
    pub fn mvcc(mut self, on: bool) -> Self {
        self.object_config.mvcc = on;
        self
    }

    /// Enables lazy Merkle materialization: root and proof queries serve
    /// unchanged map subtrees from a memo instead of re-hashing them, so a
    /// batch of commits pays roughly one spine recompute at the next query.
    /// Off by default — the paper's eager effective-tree recompute — and
    /// purely CPU-side either way: the knob never changes device traffic
    /// (see [`ChunkStoreConfig::lazy_integrity`]).
    pub fn lazy_integrity(mut self, on: bool) -> Self {
        self.chunk_config.lazy_integrity = on;
        self
    }

    /// Enables transparent chunk-body compression: user-data bodies are
    /// LZ77-compressed before hashing and sealing, shrinking log traffic
    /// for compressible payloads; incompressible bodies are stored raw
    /// with zero overhead. Off by default — the paper's byte-exact seal
    /// shape (see [`ChunkStoreConfig::compression`]).
    pub fn compression(mut self, on: bool) -> Self {
        self.chunk_config.compression = on;
        self
    }

    /// Sets the number of concurrent read shards in the chunk store
    /// (`0` disables the fast read path; see
    /// [`ChunkStoreConfig::read_shards`]).
    pub fn read_shards(mut self, shards: usize) -> Self {
        self.chunk_config.read_shards = shards;
        self
    }

    /// Sets the parallel crypto pipeline's worker count (`0` = auto,
    /// `1` = sequential; see [`ChunkStoreConfig::crypto_workers`]).
    pub fn crypto_workers(mut self, workers: usize) -> Self {
        self.chunk_config.crypto_workers = workers;
        self
    }

    /// Enables or disables group commit (`false` restores the paper's
    /// one-flush-per-commit write path; see
    /// [`ChunkStoreConfig::group_commit`]).
    pub fn group_commit(mut self, on: bool) -> Self {
        self.chunk_config.group_commit = on;
        self
    }

    /// Caps how many commits a group-commit leader drains into one batch
    /// (values `<= 1` disable batching; see
    /// [`ChunkStoreConfig::commit_batch_max`]).
    pub fn commit_batch_max(mut self, max: usize) -> Self {
        self.chunk_config.commit_batch_max = max;
        self
    }

    /// Sets the dirty-map-chunk count that triggers an automatic
    /// incremental checkpoint (see
    /// [`ChunkStoreConfig::checkpoint_threshold`]).
    pub fn checkpoint_threshold(mut self, dirty_chunks: usize) -> Self {
        self.chunk_config.checkpoint_threshold = dirty_chunks;
        self
    }

    /// Runs cleaning and threshold checkpoints on a background maintenance
    /// thread instead of inside commits and explicit `clean()` calls
    /// (`false`, the default, keeps the paper's caller-driven behavior;
    /// see [`ChunkStoreConfig::background_maintenance`]).
    pub fn background_maintenance(mut self, on: bool) -> Self {
        self.chunk_config.background_maintenance = on;
        self
    }

    /// Caps how many segments the background cleaner processes per
    /// engine-lock hold (see [`ChunkStoreConfig::clean_slice_segments`]).
    pub fn clean_slice_segments(mut self, segments: usize) -> Self {
        self.chunk_config.clean_slice_segments = segments;
        self
    }

    /// Sets the free-segment watermarks of a bounded log: below `low`,
    /// committers are throttled until the background cleaner frees space
    /// (`0` disables throttling); below `high`, background cleaning runs
    /// (see [`ChunkStoreConfig::clean_low_water`] and
    /// [`ChunkStoreConfig::clean_high_water`]).
    pub fn clean_watermarks(mut self, low: u32, high: u32) -> Self {
        self.chunk_config.clean_low_water = low;
        self.chunk_config.clean_high_water = high;
        self
    }

    /// Overrides the default partition's cryptographic parameters.
    pub fn partition_params(mut self, params: CryptoParams) -> Self {
        self.partition_params = Some(params);
        self
    }

    /// Creates a fresh database over explicit platform stores.
    ///
    /// # Errors
    ///
    /// Propagates chunk-store formatting failures.
    pub fn create(
        self,
        untrusted: SharedUntrusted,
        trusted: TrustedBackend,
        archive: Arc<dyn ArchivalStore>,
    ) -> Result<TrustedDb> {
        let secret = self
            .secret
            .unwrap_or_else(|| SecretKey::random(self.chunk_config.system_cipher.key_len()));
        let chunks = Arc::new(ChunkStore::create(
            untrusted,
            trusted,
            secret,
            self.chunk_config,
        )?);
        // The default partition is always PartitionId(1), created here.
        let params = self
            .partition_params
            .unwrap_or_else(CryptoParams::paper_default);
        let partition = chunks.allocate_partition()?;
        chunks.commit(vec![CommitOp::CreatePartition {
            id: partition,
            params,
        }])?;
        Self::assemble(
            chunks,
            archive,
            self.registry,
            self.extractors,
            self.object_config,
            partition,
        )
    }

    /// Opens an existing database (runs crash recovery and validation).
    ///
    /// # Errors
    ///
    /// Returns tamper-detection errors when validation fails.
    pub fn open(
        self,
        untrusted: SharedUntrusted,
        trusted: TrustedBackend,
        archive: Arc<dyn ArchivalStore>,
    ) -> Result<TrustedDb> {
        let secret = self
            .secret
            .expect("opening an existing database requires its secret key");
        let chunks = Arc::new(ChunkStore::open(
            untrusted,
            trusted,
            secret,
            self.chunk_config,
        )?);
        let partition = PartitionId(1);
        Self::assemble(
            chunks,
            archive,
            self.registry,
            self.extractors,
            self.object_config,
            partition,
        )
    }

    /// Creates a throwaway in-memory database (tests, examples, benches).
    ///
    /// # Errors
    ///
    /// Propagates formatting failures.
    pub fn build_in_memory(self) -> Result<TrustedDb> {
        let counter = Arc::new(CounterOverTrusted::new(
            Arc::new(MemTrustedStore::new(64)) as Arc<dyn TrustedStore>
        ));
        self.create(
            Arc::new(MemStore::new()),
            TrustedBackend::Counter(counter),
            Arc::new(MemArchive::new()),
        )
    }

    /// Creates a throwaway in-memory shard fleet of `n` independent chunk
    /// stores behind a [`ShardManager`] (tests, examples, benches). Each
    /// shard gets its own untrusted store and trusted counter, configured
    /// from this builder's chunk configuration; the routing journal and
    /// transfer archive are in-memory too.
    ///
    /// # Errors
    ///
    /// Propagates shard formatting failures.
    pub fn build_shards_in_memory(self, n: usize) -> Result<ShardManager> {
        let secret = self
            .secret
            .unwrap_or_else(|| SecretKey::random(self.chunk_config.system_cipher.key_len()));
        let specs = (0..n)
            .map(|_| ShardSpec {
                untrusted: Arc::new(MemStore::new()) as SharedUntrusted,
                trusted: TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
                    MemTrustedStore::new(64),
                )
                    as Arc<dyn TrustedStore>))),
                config: self.chunk_config.clone(),
            })
            .collect();
        ShardManager::create(
            specs,
            Arc::new(MemStore::new()),
            Arc::new(MemArchive::new()),
            secret,
        )
        .map_err(Into::into)
    }

    fn assemble(
        chunks: Arc<ChunkStore>,
        archive: Arc<dyn ArchivalStore>,
        registry: TypeRegistry,
        extractors: ExtractorRegistry,
        object_config: ObjectStoreConfig,
        partition: PartitionId,
    ) -> Result<TrustedDb> {
        let objects = ObjectStore::new(Arc::clone(&chunks), registry, object_config);
        let collections = CollectionStore::new(extractors);
        let backups = BackupStore::new(Arc::clone(&chunks), archive);
        Ok(TrustedDb {
            chunks,
            objects,
            collections,
            backups,
            partition,
        })
    }
}

/// The assembled trusted database.
pub struct TrustedDb {
    chunks: Arc<ChunkStore>,
    objects: Arc<ObjectStore>,
    collections: CollectionStore,
    backups: BackupStore,
    partition: PartitionId,
}

impl TrustedDb {
    /// The chunk store (low-level trusted storage, §4–§5).
    pub fn chunks(&self) -> &Arc<ChunkStore> {
        &self.chunks
    }

    /// The object store (§7).
    pub fn objects(&self) -> &Arc<ObjectStore> {
        &self.objects
    }

    /// The collection store (§8).
    pub fn collections(&self) -> &CollectionStore {
        &self.collections
    }

    /// The backup store (§6).
    pub fn backups(&self) -> &BackupStore {
        &self.backups
    }

    /// The default data partition.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Begins a transaction on the object store.
    pub fn begin(&self) -> Tx {
        self.objects.begin()
    }

    /// Runs a closure transactionally (commit on `Ok`, abort on `Err`,
    /// lock timeouts retried).
    ///
    /// # Errors
    ///
    /// Propagates the closure's error or commit failures.
    pub fn run<R>(&self, f: impl FnMut(&mut Tx) -> tdb_object::errors::Result<R>) -> Result<R> {
        self.objects.run(f).map_err(Into::into)
    }

    /// Begins a snapshot-isolation MVCC transaction.
    ///
    /// # Errors
    ///
    /// Fails unless the database was built with
    /// [`TrustedDbBuilder::mvcc`].
    pub fn begin_mvcc(&self) -> Result<MvccTx> {
        self.objects.begin_mvcc().map_err(Into::into)
    }

    /// Runs a closure in an MVCC transaction (commit on `Ok`, abort on
    /// `Err`, write conflicts retried on fresh snapshots).
    ///
    /// # Errors
    ///
    /// Propagates the closure's error, commit failures, or an unresolved
    /// write conflict.
    pub fn run_mvcc<R>(
        &self,
        f: impl FnMut(&mut MvccTx) -> tdb_object::errors::Result<R>,
    ) -> Result<R> {
        self.objects.run_mvcc(f).map_err(Into::into)
    }

    /// The default partition's current committed root digest — the trust
    /// anchor clients pin to verify [`VerifiedRead`]s.
    ///
    /// # Errors
    ///
    /// Propagates chunk-store failures.
    pub fn snapshot_root(&self) -> Result<tdb_crypto::HashValue> {
        self.objects
            .snapshot_root(self.partition)
            .map_err(Into::into)
    }

    /// Creates an additional partition with its own cryptographic
    /// parameters (§2.2).
    ///
    /// # Errors
    ///
    /// Propagates chunk-store failures.
    pub fn create_partition(&self, params: CryptoParams) -> Result<PartitionId> {
        let p = self.chunks.allocate_partition()?;
        self.chunks
            .commit(vec![CommitOp::CreatePartition { id: p, params }])?;
        Ok(p)
    }

    /// Forces a chunk-store checkpoint (§4.7).
    ///
    /// # Errors
    ///
    /// Propagates chunk-store failures.
    pub fn checkpoint(&self) -> Result<()> {
        self.chunks.checkpoint().map_err(Into::into)
    }

    /// Runs the log cleaner over up to `max_segments` segments (§4.9.5).
    ///
    /// # Errors
    ///
    /// Propagates chunk-store failures.
    pub fn clean(&self, max_segments: usize) -> Result<usize> {
        self.chunks.clean(max_segments).map_err(Into::into)
    }

    /// Creates a backup set of the given sources (§6).
    ///
    /// # Errors
    ///
    /// Propagates backup-store failures.
    pub fn backup(&self, specs: &[BackupSpec], set_name: &str) -> Result<BackupSetInfo> {
        self.backups.backup(specs, set_name).map_err(Into::into)
    }

    /// Restores backup objects under the given policy (§6.3). Invalidates
    /// the object cache afterwards so stale objects cannot be served.
    ///
    /// # Errors
    ///
    /// Fails (leaving the database unchanged) on validation or constraint
    /// errors.
    pub fn restore(
        &self,
        names: &[&str],
        policy: &dyn RestorePolicy,
    ) -> Result<tdb_core::backup::RestoreReport> {
        let report = self.backups.restore(names, policy)?;
        self.objects.invalidate_cache();
        Ok(report)
    }

    /// Current health of the underlying chunk store: live, degraded
    /// (read-only), or poisoned. The uniform polling point for callers and
    /// the shard manager — prefer this over reaching through
    /// [`TrustedDb::chunks`].
    pub fn health(&self) -> StoreHealth {
        self.chunks.health()
    }

    /// Lock-free estimate of the bounded log's free segments (`None` when
    /// the log is unbounded); see
    /// [`ChunkStore::free_segment_estimate`].
    pub fn free_segment_estimate(&self) -> Option<u64> {
        self.chunks.free_segment_estimate()
    }

    /// Checkpoints and flushes for a clean shutdown.
    ///
    /// # Errors
    ///
    /// Propagates chunk-store failures.
    pub fn close(&self) -> Result<()> {
        self.chunks.close().map_err(Into::into)
    }
}

impl fmt::Debug for TrustedDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrustedDb")
            .field("partition", &self.partition)
            .finish_non_exhaustive()
    }
}
