//! Trusted paging (paper §10).
//!
//! "The current design assumes that the entire runtime, volatile state of a
//! trusted program is protected by the trusted processing environment. …
//! some volatile state may have to be paged out to untrusted storage. This
//! problem may be solved by using a page fault handler to store encrypted
//! and validated pages in the chunk store."
//!
//! A library cannot hook page faults portably, so [`TrustedPager`] provides
//! the mechanism as an explicit API: a trusted program pages volatile state
//! out to (and back in from) a dedicated chunk-store partition, gaining the
//! same secrecy and tamper detection as persistent data. Pages are
//! *volatile*: they are meaningless to any later session, and
//! [`TrustedPager::close`] reclaims the partition.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use tdb_core::store::{ChunkStore, CommitOp};
use tdb_core::{ChunkId, CryptoParams, PartitionId};

use crate::{Result, TdbError};

/// An encrypted, validated swap area for a trusted program's volatile state.
pub struct TrustedPager {
    chunks: Arc<ChunkStore>,
    partition: PartitionId,
    /// Paged-out keys and their backing chunks.
    pages: Mutex<HashMap<u64, ChunkId>>,
    closed: std::sync::atomic::AtomicBool,
}

impl TrustedPager {
    /// Creates a pager with its own partition using `params` (volatile
    /// state often warrants a fast cipher and may skip validation — the
    /// per-partition parameters of §2.2 make that a local choice).
    ///
    /// # Errors
    ///
    /// Propagates chunk-store failures.
    pub fn new(chunks: Arc<ChunkStore>, params: CryptoParams) -> Result<TrustedPager> {
        let partition = chunks.allocate_partition().map_err(TdbError::Core)?;
        chunks
            .commit(vec![CommitOp::CreatePartition {
                id: partition,
                params,
            }])
            .map_err(TdbError::Core)?;
        Ok(TrustedPager {
            chunks,
            partition,
            pages: Mutex::new(HashMap::new()),
            closed: std::sync::atomic::AtomicBool::new(false),
        })
    }

    fn check_open(&self) -> Result<()> {
        if self.closed.load(std::sync::atomic::Ordering::SeqCst) {
            return Err(TdbError::Core(tdb_core::CoreError::Corrupt(
                "pager closed".into(),
            )));
        }
        Ok(())
    }

    /// Pages `bytes` out under `key`, replacing any previous page.
    ///
    /// # Errors
    ///
    /// Propagates chunk-store failures.
    pub fn page_out(&self, key: u64, bytes: &[u8]) -> Result<()> {
        self.check_open()?;
        let id = {
            let mut pages = self.pages.lock();
            match pages.get(&key) {
                Some(id) => *id,
                None => {
                    let id = self
                        .chunks
                        .allocate_chunk(self.partition)
                        .map_err(TdbError::Core)?;
                    pages.insert(key, id);
                    id
                }
            }
        };
        self.chunks
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: bytes.to_vec(),
            }])
            .map_err(TdbError::Core)
    }

    /// Pages `key` back in, decrypted and validated.
    ///
    /// # Errors
    ///
    /// Fails if the key was never paged out, or signals tamper detection if
    /// the untrusted bytes were modified.
    pub fn page_in(&self, key: u64) -> Result<Vec<u8>> {
        self.check_open()?;
        let id = *self.pages.lock().get(&key).ok_or_else(|| {
            TdbError::Core(tdb_core::CoreError::Corrupt(format!(
                "page {key} was never paged out"
            )))
        })?;
        self.chunks.read(id).map_err(TdbError::Core)
    }

    /// Drops a page (its chunk is deallocated).
    ///
    /// # Errors
    ///
    /// Propagates chunk-store failures; unknown keys are a no-op.
    pub fn discard(&self, key: u64) -> Result<()> {
        self.check_open()?;
        let id = self.pages.lock().remove(&key);
        if let Some(id) = id {
            // The page may be allocated but never written (page_out failed
            // mid-way); dealloc handles both.
            self.chunks
                .commit(vec![CommitOp::DeallocChunk { id }])
                .map_err(TdbError::Core)?;
        }
        Ok(())
    }

    /// Number of pages currently paged out.
    pub fn len(&self) -> usize {
        self.pages.lock().len()
    }

    /// True when nothing is paged out.
    pub fn is_empty(&self) -> bool {
        self.pages.lock().is_empty()
    }

    /// Reclaims the swap partition. Further use fails.
    ///
    /// # Errors
    ///
    /// Propagates chunk-store failures.
    pub fn close(&self) -> Result<()> {
        self.check_open()?;
        self.closed.store(true, std::sync::atomic::Ordering::SeqCst);
        self.pages.lock().clear();
        self.chunks
            .commit(vec![CommitOp::DeallocPartition { id: self.partition }])
            .map_err(TdbError::Core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::store::{ChunkStoreConfig, TrustedBackend};
    use tdb_crypto::{CipherKind, HashKind, SecretKey};
    use tdb_storage::{CounterOverTrusted, MemStore, MemTrustedStore};

    fn chunks() -> Arc<ChunkStore> {
        Arc::new(
            ChunkStore::create(
                Arc::new(MemStore::new()),
                TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
                    MemTrustedStore::new(64),
                )))),
                SecretKey::random(24),
                ChunkStoreConfig::default(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn page_out_in_roundtrip() {
        let pager = TrustedPager::new(
            chunks(),
            CryptoParams::generate(CipherKind::Aes128, HashKind::Sha256),
        )
        .unwrap();
        pager
            .page_out(1, b"register file of the trusted interpreter")
            .unwrap();
        pager.page_out(2, &vec![0x5A; 4096]).unwrap();
        assert_eq!(pager.len(), 2);
        assert_eq!(
            pager.page_in(1).unwrap(),
            b"register file of the trusted interpreter"
        );
        assert_eq!(pager.page_in(2).unwrap(), vec![0x5A; 4096]);
        // Overwrite.
        pager.page_out(1, b"updated").unwrap();
        assert_eq!(pager.page_in(1).unwrap(), b"updated");
    }

    #[test]
    fn discard_and_missing_pages() {
        let pager = TrustedPager::new(chunks(), CryptoParams::paper_default()).unwrap();
        pager.page_out(9, b"spill").unwrap();
        pager.discard(9).unwrap();
        assert!(pager.is_empty());
        assert!(pager.page_in(9).is_err());
        pager.discard(123).unwrap(); // Unknown key: no-op.
    }

    #[test]
    fn close_reclaims_partition() {
        let store = chunks();
        let pager = TrustedPager::new(Arc::clone(&store), CryptoParams::paper_default()).unwrap();
        pager.page_out(1, b"x").unwrap();
        pager.close().unwrap();
        assert!(pager.page_out(1, b"y").is_err());
        assert!(pager.page_in(1).is_err());
    }

    #[test]
    fn paged_state_is_encrypted() {
        let untrusted = Arc::new(MemStore::new());
        let store = Arc::new(
            ChunkStore::create(
                Arc::clone(&untrusted) as tdb_storage::SharedUntrusted,
                TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
                    MemTrustedStore::new(64),
                )))),
                SecretKey::random(24),
                ChunkStoreConfig::default(),
            )
            .unwrap(),
        );
        let pager = TrustedPager::new(store, CryptoParams::paper_default()).unwrap();
        let secret = b"volatile secrets: session keys, usage counters";
        pager.page_out(1, secret).unwrap();
        let image = untrusted.image();
        assert!(!image.windows(secret.len()).any(|w| w == secret));
    }
}
