//! Sessions: the execution context every command runs in.
//!
//! A [`Session`] is one authenticated principal's stateful view of the
//! database: its active transaction (transactions are **session-scoped**,
//! not borrow-scoped, so one can span many network requests), its health
//! view, and its per-session counters. The embedded API and the network
//! server both execute the same [`Command`] stream through
//! [`Session::dispatch`] — the session layer *is* the database surface,
//! and the transports are thin framing around it.
//!
//! Commands that touch objects while no transaction is open run in
//! **autocommit** mode: a fresh transaction per command, committed before
//! the response. Many concurrent autocommit sessions are exactly the
//! traffic shape the group-commit batcher was built for — each commit
//! parks on the leader's flush and shares it.

use std::sync::Arc;

use tdb_core::store::ChunkStore;
use tdb_core::{CoreError, PartitionId};
use tdb_object::errors::ObjectError;
use tdb_object::{MvccTx, ObjectStore, Transactional, Tx};

use crate::command::{Command, Response, TxMode, WireError};
use crate::{CollectionStore, StoreHealth, TdbError, TrustedDb};

/// Per-session counters, labelled by principal in server logs.
#[derive(Debug, Default, Clone, Copy)]
pub struct SessionStats {
    /// Commands dispatched.
    pub commands: u64,
    /// Commands answered with [`Response::Error`].
    pub errors: u64,
    /// Explicit transaction commits.
    pub commits: u64,
    /// Explicit transaction aborts (not counting drops).
    pub aborts: u64,
    /// Commands executed in an implicit one-shot transaction.
    pub autocommits: u64,
}

/// The session's open transaction, if any.
enum ActiveTx {
    Locking(Tx),
    Mvcc(MvccTx),
}

/// One principal's stateful connection to the database.
///
/// Holds owned handles to the store layers, so sessions are `'static`:
/// a server parks one per connection, the embedded API uses one inline.
pub struct Session {
    chunks: Arc<ChunkStore>,
    objects: Arc<ObjectStore>,
    collections: CollectionStore,
    partition: PartitionId,
    principal: String,
    tx: Option<ActiveTx>,
    stats: SessionStats,
}

impl TrustedDb {
    /// Opens a session for `principal`. Authentication happens at the
    /// transport (the server's challenge-response handshake); by the time
    /// a session exists the principal is trusted.
    pub fn session(&self, principal: &str) -> Session {
        Session {
            chunks: Arc::clone(self.chunks()),
            objects: Arc::clone(self.objects()),
            collections: self.collections().clone(),
            partition: self.partition(),
            principal: principal.to_string(),
            tx: None,
            stats: SessionStats::default(),
        }
    }
}

fn err(e: impl Into<TdbError>) -> Response {
    Response::Error(WireError(e.into()))
}

fn health_response(health: &StoreHealth) -> Response {
    let (state, reason) = match health {
        StoreHealth::Live => (0, String::new()),
        StoreHealth::Degraded { reason } => (1, reason.clone()),
        StoreHealth::Poisoned { reason } => (2, reason.clone()),
    };
    Response::Health { state, reason }
}

impl Session {
    /// The authenticated principal this session runs as.
    pub fn principal(&self) -> &str {
        &self.principal
    }

    /// Per-session counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// True while a transaction is open on this session.
    pub fn in_tx(&self) -> bool {
        self.tx.is_some()
    }

    /// The session's current view of store health — what the server
    /// stamps on every response frame so clients learn about degraded
    /// mode without a dedicated poll.
    pub fn health(&self) -> StoreHealth {
        self.chunks.health()
    }

    /// Executes one command and returns its response. Never panics:
    /// every failure becomes a typed [`Response::Error`].
    pub fn dispatch(&mut self, cmd: &Command) -> Response {
        self.stats.commands += 1;
        let resp = self.dispatch_inner(cmd);
        if matches!(resp, Response::Error(_)) {
            self.stats.errors += 1;
        }
        resp
    }

    fn dispatch_inner(&mut self, cmd: &Command) -> Response {
        match cmd {
            Command::Ping => Response::Pong,
            Command::Health => health_response(&self.chunks.health()),
            Command::SnapshotRoot => match self.chunks.snapshot_root(self.partition) {
                Ok(root) => Response::Root(root.as_bytes().to_vec()),
                Err(e) => err(e),
            },
            Command::Checkpoint => match self.chunks.checkpoint() {
                Ok(()) => Response::Ok,
                Err(e) => err(e),
            },
            Command::Clean(max) => match self.chunks.clean(*max as usize) {
                Ok(n) => Response::Count(n as u64),
                Err(e) => err(e),
            },
            Command::Begin(mode) => self.begin(*mode),
            Command::Commit => self.commit(),
            Command::Abort => self.abort(),
            _ => self.dispatch_data(cmd),
        }
    }

    fn begin(&mut self, mode: TxMode) -> Response {
        if self.tx.is_some() {
            return err(CoreError::Busy(
                "a transaction is already open on this session".into(),
            ));
        }
        let tx = match mode {
            TxMode::Locking => ActiveTx::Locking(self.objects.begin()),
            TxMode::Mvcc => match self.objects.begin_mvcc() {
                Ok(tx) => ActiveTx::Mvcc(tx),
                Err(e) => return err(e),
            },
        };
        self.tx = Some(tx);
        Response::Ok
    }

    fn commit(&mut self) -> Response {
        let Some(tx) = self.tx.take() else {
            return err(ObjectError::TxFinished);
        };
        let result = match tx {
            ActiveTx::Locking(tx) => tx.commit(),
            ActiveTx::Mvcc(tx) => tx.commit(),
        };
        match result {
            Ok(()) => {
                self.stats.commits += 1;
                Response::Ok
            }
            Err(e) => err(e),
        }
    }

    fn abort(&mut self) -> Response {
        let Some(tx) = self.tx.take() else {
            return err(ObjectError::TxFinished);
        };
        match tx {
            ActiveTx::Locking(tx) => tx.abort(),
            ActiveTx::Mvcc(tx) => tx.abort(),
        }
        self.stats.aborts += 1;
        Response::Ok
    }

    /// Object/collection commands: run on the open transaction, or in a
    /// one-shot autocommit transaction when none is open.
    fn dispatch_data(&mut self, cmd: &Command) -> Response {
        // Proof-carrying reads resolve against the committed tree, so the
        // no-transaction path serves them straight from the chunk store.
        if let (Command::GetWithProof(id), None) = (cmd, &self.tx) {
            return self.proof_read_committed(*id);
        }
        match &mut self.tx {
            Some(ActiveTx::Locking(tx)) => {
                Self::exec(&self.collections, &self.objects, self.partition, tx, cmd)
            }
            Some(ActiveTx::Mvcc(tx)) => {
                if let Command::GetWithProof(id) = cmd {
                    return match tx.get_with_proof_dyn(*id) {
                        Ok((obj, vread)) => {
                            let record = crate::TypeRegistry::pickle(obj.as_ref());
                            let root = match self.chunks.snapshot_root(self.partition) {
                                Ok(r) => r.as_bytes().to_vec(),
                                Err(e) => return err(e),
                            };
                            Response::VerifiedRecord {
                                record: vread.as_ref().map_or(record, |v| v.record.clone()),
                                proof: vread.map(|v| v.proof.encode()),
                                root,
                            }
                        }
                        Err(e) => err(e),
                    };
                }
                Self::exec(&self.collections, &self.objects, self.partition, tx, cmd)
            }
            None => {
                self.stats.autocommits += 1;
                let mut tx = self.objects.begin();
                let resp = Self::exec(
                    &self.collections,
                    &self.objects,
                    self.partition,
                    &mut tx,
                    cmd,
                );
                if matches!(resp, Response::Error(_)) {
                    tx.abort();
                    return resp;
                }
                match tx.commit() {
                    Ok(()) => resp,
                    Err(e) => err(e),
                }
            }
        }
    }

    /// A verifiable read of current committed state, outside any
    /// transaction: the record plus its Merkle path to the root digest.
    fn proof_read_committed(&mut self, id: tdb_object::ObjectId) -> Response {
        match self.chunks.read_with_proof(id.0) {
            Ok((record, proof)) => match self.chunks.snapshot_root(self.partition) {
                Ok(root) => Response::VerifiedRecord {
                    record,
                    proof: Some(proof.encode()),
                    root: root.as_bytes().to_vec(),
                },
                Err(e) => err(e),
            },
            Err(CoreError::NotAllocated(_)) | Err(CoreError::NotWritten(_)) => {
                err(ObjectError::NotFound(id))
            }
            Err(e) => err(e),
        }
    }

    /// The single executor both transaction kinds share, monomorphized
    /// over the [`Transactional`] impl.
    fn exec<T: Transactional>(
        collections: &CollectionStore,
        objects: &ObjectStore,
        partition: PartitionId,
        tx: &mut T,
        cmd: &Command,
    ) -> Response {
        let result = match cmd {
            Command::Create {
                partition: target,
                record,
            } => objects
                .unpickle_record(record)
                .and_then(|obj| tx.create(*target, obj))
                .map(Response::Id),
            Command::Get(id) => tx
                .get_dyn(*id)
                .map(|obj| Response::Record(crate::TypeRegistry::pickle(obj.as_ref()))),
            // Inside a locking transaction the Merkle tree cannot vouch
            // for buffered state; serve the value with no proof.
            Command::GetWithProof(id) => tx.get_dyn(*id).map(|obj| Response::VerifiedRecord {
                record: crate::TypeRegistry::pickle(obj.as_ref()),
                proof: None,
                root: Vec::new(),
            }),
            Command::Put { id, record } => objects
                .unpickle_record(record)
                .and_then(|obj| tx.put(*id, obj))
                .map(|()| Response::Ok),
            Command::Delete(id) => tx.delete(*id).map(|()| Response::Ok),
            Command::CollCreate {
                partition: target,
                name,
            } => collections
                .create_collection(tx, *target, name)
                .map(|coll| Response::Id(coll.0)),
            Command::CollLen(coll) => collections.len(tx, *coll).map(Response::Count),
            Command::CollInsert { coll, record } => objects
                .unpickle_record(record)
                .and_then(|obj| collections.insert(tx, *coll, obj))
                .map(Response::Id),
            Command::CollAdd { coll, id } => collections.add(tx, *coll, *id).map(|()| Response::Ok),
            Command::CollRemove { coll, id } => {
                collections.remove(tx, *coll, *id).map(|()| Response::Ok)
            }
            Command::CollScan(coll) => collections.scan(tx, *coll).map(Response::Ids),
            Command::CollAddIndex {
                coll,
                name,
                extractor,
                kind,
            } => collections
                .add_index(tx, *coll, name, extractor, *kind)
                .map(|()| Response::Ok),
            Command::CollLookup { coll, index, key } => {
                collections.lookup(tx, *coll, index, key).map(Response::Ids)
            }
            Command::CollRange {
                coll,
                index,
                lo,
                hi,
            } => collections
                .range(tx, *coll, index, lo.as_deref(), hi.as_deref())
                .map(Response::Ids),
            // Control commands are handled before exec; reaching here is
            // a dispatch bug, answered as a typed error rather than a
            // panic so a malformed stream cannot kill a server thread.
            _ => {
                let _ = partition;
                return err(CoreError::Corrupt(format!(
                    "command {:?} is not a data command",
                    cmd.opcode()
                )));
            }
        };
        result.unwrap_or_else(err)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // An abandoned session aborts its open transaction (locks release,
        // snapshots end) — the connection-drop path on a server.
        if let Some(tx) = self.tx.take() {
            match tx {
                ActiveTx::Locking(tx) => tx.abort(),
                ActiveTx::Mvcc(tx) => tx.abort(),
            }
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("principal", &self.principal)
            .field("in_tx", &self.tx.is_some())
            .finish_non_exhaustive()
    }
}
