//! The network wire protocol: framing, request/response envelopes, and
//! the challenge-response auth handshake.
//!
//! Lives in the core `tdb` crate (next to [`crate::command`]) so the
//! server and client crates share one definition — the protocol cannot
//! drift between the two ends.
//!
//! # Frame format
//!
//! Every message after TCP connect is one length-prefixed frame:
//!
//! ```text
//! [u32 payload_len (LE)] [payload bytes]
//! ```
//!
//! Payloads are capped at [`MAX_FRAME`] to bound a malicious peer's
//! allocation. Inside a frame, payloads use the same little-endian
//! [`Enc`]/[`Dec`] codec as the on-disk log.
//!
//! # Handshake
//!
//! Mutual challenge-response over a pre-shared HMAC key (the session-key
//! distribution problem is out of scope, as in the paper's trusted-client
//! model):
//!
//! 1. **Server → Hello**: magic `"TDB1"`, protocol version, 32-byte
//!    nonce `Ns`.
//! 2. **Client → Auth**: principal name, 32-byte nonce `Nc`, and
//!    `HMAC(key, "tdb-auth" ‖ Ns ‖ Nc ‖ principal)`. Binding `Ns` proves
//!    freshness (no replay); binding the principal stops splicing.
//! 3. **Server → Welcome** with `HMAC(key, "tdb-serv" ‖ Nc ‖ Ns)` and a
//!    session id — proving the *server* holds the key too — or
//!    **Reject** with a reason.
//!
//! MACs are compared in constant time.
//!
//! # Request / response envelopes
//!
//! Requests: `[u64 request_id] [Command]`. Responses echo the id:
//! `[u64 request_id] [u8 health] [str reason] [Response]`. Clients may
//! pipeline arbitrarily many requests before reading; the server answers
//! strictly in order per connection. The health byte (0 live, 1 degraded,
//! 2 poisoned) rides on **every** response, so a store leaving `Live`
//! reaches clients immediately instead of on the next dedicated poll.

use std::io::{self, Read, Write};

use tdb_core::codec::{Dec, Enc};
use tdb_core::CoreError;
use tdb_crypto::hmac::HmacKey;
use tdb_crypto::{HashKind, HashValue};

use crate::command::{Command, Response};

/// Protocol magic, first bytes of the server's Hello.
pub const MAGIC: [u8; 4] = *b"TDB1";

/// Protocol version in the Hello.
pub const VERSION: u8 = 1;

/// Nonce length for both handshake directions.
pub const NONCE_LEN: usize = 32;

/// Upper bound on a frame payload (16 MiB) — chunks are far smaller.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Domain-separation prefix for the client's auth MAC.
pub const CLIENT_MAC_CONTEXT: &[u8] = b"tdb-auth";

/// Domain-separation prefix for the server's welcome MAC.
pub const SERVER_MAC_CONTEXT: &[u8] = b"tdb-serv";

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures; callers flush separately (so pipelined
/// responses can share one flush).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// `UnexpectedEof` when the peer closed cleanly between frames;
/// `InvalidData` for oversized frames.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

fn corrupt(what: &str) -> CoreError {
    CoreError::Corrupt(format!("wire envelope: {what}"))
}

/// The server's opening handshake message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Server challenge nonce (`Ns`).
    pub nonce: [u8; NONCE_LEN],
}

impl Hello {
    /// Encodes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.raw(&MAGIC);
        e.u8(VERSION);
        e.raw(&self.nonce);
        e.finish()
    }

    /// Decodes from a frame payload, checking magic and version.
    ///
    /// # Errors
    ///
    /// Fails on wrong magic (not a TDB server) or version skew.
    pub fn decode(payload: &[u8]) -> Result<Hello, CoreError> {
        let mut d = Dec::new(payload);
        let magic = d.raw(4)?;
        if magic != MAGIC {
            return Err(corrupt("bad magic (not a tdb server)"));
        }
        let version = d.u8()?;
        if version != VERSION {
            return Err(corrupt(&format!(
                "protocol version {version}, expected {VERSION}"
            )));
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(d.raw(NONCE_LEN)?);
        d.expect_done("hello")?;
        Ok(Hello { nonce })
    }
}

/// The client's authentication message.
#[derive(Debug, Clone)]
pub struct ClientAuth {
    /// The principal this session runs as.
    pub principal: String,
    /// Client nonce (`Nc`), bound into the server's welcome MAC.
    pub nonce: [u8; NONCE_LEN],
    /// `HMAC(key, "tdb-auth" ‖ Ns ‖ Nc ‖ principal)`.
    pub mac: HashValue,
}

impl ClientAuth {
    /// Encodes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.principal);
        e.raw(&self.nonce);
        e.bytes(self.mac.as_bytes());
        e.finish()
    }

    /// Decodes from a frame payload.
    ///
    /// # Errors
    ///
    /// Fails on truncated or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<ClientAuth, CoreError> {
        let mut d = Dec::new(payload);
        let principal = d.str()?;
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(d.raw(NONCE_LEN)?);
        let mac = HashValue::new(d.bytes()?);
        d.expect_done("client auth")?;
        Ok(ClientAuth {
            principal,
            nonce,
            mac,
        })
    }
}

/// The server's handshake verdict.
#[derive(Debug, Clone)]
pub enum AuthResult {
    /// Authenticated: the server's counter-MAC and the session id.
    Welcome {
        /// `HMAC(key, "tdb-serv" ‖ Nc ‖ Ns)` — proves the server holds
        /// the key (mutual authentication).
        mac: HashValue,
        /// Server-assigned session id (for logs and metrics labels).
        session_id: u64,
    },
    /// Refused; the connection closes after this frame.
    Reject {
        /// Human-readable reason (no secrets).
        reason: String,
    },
}

impl AuthResult {
    /// Encodes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            AuthResult::Welcome { mac, session_id } => {
                e.u8(1);
                e.bytes(mac.as_bytes());
                e.u64(*session_id);
            }
            AuthResult::Reject { reason } => {
                e.u8(0);
                e.str(reason);
            }
        }
        e.finish()
    }

    /// Decodes from a frame payload.
    ///
    /// # Errors
    ///
    /// Fails on unknown tags or truncation.
    pub fn decode(payload: &[u8]) -> Result<AuthResult, CoreError> {
        let mut d = Dec::new(payload);
        let result = match d.u8()? {
            1 => AuthResult::Welcome {
                mac: HashValue::new(d.bytes()?),
                session_id: d.u64()?,
            },
            0 => AuthResult::Reject { reason: d.str()? },
            _ => return Err(corrupt("auth result tag")),
        };
        d.expect_done("auth result")?;
        Ok(result)
    }
}

/// The MAC a client sends to prove key possession, bound to both nonces
/// and the principal.
pub fn client_auth_mac(
    key: &[u8],
    server_nonce: &[u8; NONCE_LEN],
    client_nonce: &[u8; NONCE_LEN],
    principal: &str,
) -> HashValue {
    HmacKey::new(HashKind::Sha256, key).mac_parts(&[
        CLIENT_MAC_CONTEXT,
        server_nonce,
        client_nonce,
        principal.as_bytes(),
    ])
}

/// The MAC a server sends back to prove it also holds the key.
pub fn server_welcome_mac(
    key: &[u8],
    client_nonce: &[u8; NONCE_LEN],
    server_nonce: &[u8; NONCE_LEN],
) -> HashValue {
    HmacKey::new(HashKind::Sha256, key).mac_parts(&[SERVER_MAC_CONTEXT, client_nonce, server_nonce])
}

/// Health states stamped on every response envelope.
pub mod health {
    /// Fully operational.
    pub const LIVE: u8 = 0;
    /// Read-only (a mutation was interrupted); reads still validate.
    pub const DEGRADED: u8 = 1;
    /// Failed closed after an integrity violation.
    pub const POISONED: u8 = 2;
}

/// Encodes a request envelope: id + command.
pub fn encode_request(request_id: u64, cmd: &Command) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(request_id);
    cmd.encode(&mut e);
    e.finish()
}

/// Decodes a request envelope.
///
/// # Errors
///
/// Fails with [`CoreError::Corrupt`] on malformed payloads.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Command), CoreError> {
    let mut d = Dec::new(payload);
    let id = d.u64()?;
    let cmd = Command::decode(&mut d)?;
    d.expect_done("request")?;
    Ok((id, cmd))
}

/// A decoded response envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseEnvelope {
    /// Echo of the request id this answers.
    pub request_id: u64,
    /// One of the [`health`] constants.
    pub health: u8,
    /// Human-readable health reason (empty when live).
    pub health_reason: String,
    /// The command's result.
    pub response: Response,
}

/// Encodes a response envelope: id + health stamp + response.
pub fn encode_response(
    request_id: u64,
    health: u8,
    health_reason: &str,
    response: &Response,
) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(request_id);
    e.u8(health);
    e.str(health_reason);
    response.encode(&mut e);
    e.finish()
}

/// Decodes a response envelope.
///
/// # Errors
///
/// Fails with [`CoreError::Corrupt`] on malformed payloads.
pub fn decode_response(payload: &[u8]) -> Result<ResponseEnvelope, CoreError> {
    let mut d = Dec::new(payload);
    let request_id = d.u64()?;
    let health = d.u8()?;
    let health_reason = d.str()?;
    let response = Response::decode(&mut d)?;
    d.expect_done("response")?;
    Ok(ResponseEnvelope {
        request_id,
        health,
        health_reason,
        response,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn handshake_round_trip() {
        let hello = Hello { nonce: [7; 32] };
        assert_eq!(Hello::decode(&hello.encode()).unwrap(), hello);

        let mac = client_auth_mac(b"key", &[7; 32], &[9; 32], "alice");
        let auth = ClientAuth {
            principal: "alice".into(),
            nonce: [9; 32],
            mac,
        };
        let back = ClientAuth::decode(&auth.encode()).unwrap();
        assert_eq!(back.principal, "alice");
        assert_eq!(back.nonce, [9; 32]);
        assert!(back.mac.ct_eq(&auth.mac));

        let welcome = AuthResult::Welcome {
            mac: server_welcome_mac(b"key", &[9; 32], &[7; 32]),
            session_id: 3,
        };
        match AuthResult::decode(&welcome.encode()).unwrap() {
            AuthResult::Welcome { session_id, .. } => assert_eq!(session_id, 3),
            AuthResult::Reject { .. } => panic!("expected welcome"),
        }
    }

    #[test]
    fn hello_rejects_wrong_magic_and_version() {
        let mut payload = Hello { nonce: [0; 32] }.encode();
        payload[0] ^= 1;
        assert!(Hello::decode(&payload).is_err());
        let mut payload = Hello { nonce: [0; 32] }.encode();
        payload[4] = VERSION + 1;
        assert!(Hello::decode(&payload).is_err());
    }

    #[test]
    fn envelope_round_trip() {
        let payload = encode_request(42, &Command::Ping);
        let (id, cmd) = decode_request(&payload).unwrap();
        assert_eq!(id, 42);
        assert_eq!(cmd, Command::Ping);

        let payload = encode_response(42, health::DEGRADED, "write interrupted", &Response::Pong);
        let env = decode_response(&payload).unwrap();
        assert_eq!(env.request_id, 42);
        assert_eq!(env.health, health::DEGRADED);
        assert_eq!(env.health_reason, "write interrupted");
        assert_eq!(env.response, Response::Pong);
    }

    #[test]
    fn macs_are_domain_separated() {
        let a = client_auth_mac(b"key", &[1; 32], &[2; 32], "alice");
        let b = server_welcome_mac(b"key", &[1; 32], &[2; 32]);
        assert!(!a.ct_eq(&b));
        // Different principal, different MAC.
        let c = client_auth_mac(b"key", &[1; 32], &[2; 32], "mallory");
        assert!(!a.ct_eq(&c));
    }
}
