#![warn(missing_docs)]

//! # tdb-xdb — the XDB baseline (paper §9.5)
//!
//! The paper compares TDB against "an off-the-shelf embedded database
//! system, which we shall call XDB. The XDB-based system layers
//! cryptography on top of XDB." No such system ships with this repository's
//! toolchain, so this crate builds one from scratch with the classic
//! conventional-database architecture:
//!
//! - [`pager`]: fixed-size pages over an untrusted store, with a buffer
//!   cache and a free-page list;
//! - [`wal`]: a physical (full-page-image) redo write-ahead log, flushed at
//!   every commit — the "multiple disk writes at commit" the paper blames
//!   for XDB's slower commits;
//! - [`btree`]: an on-page B+-tree keyed by byte strings;
//! - [`db`]: the embedded key-value API with batch commits, checkpoints,
//!   and crash recovery;
//! - [`secure`]: the strawman of §1.2 — encryption and a Merkle hash tree
//!   layered *on top* of the database as ordinary records. This protects
//!   record contents but, as the paper argues, cannot protect XDB's own
//!   metadata, and pays extra record reads/writes per update to maintain
//!   the hash tree.

pub mod btree;
pub mod db;
pub mod pager;
pub mod secure;
pub mod wal;

use std::fmt;

/// Errors produced by XDB.
#[derive(Debug)]
pub enum XdbError {
    /// Underlying storage failure.
    Store(tdb_storage::StoreError),
    /// Crypto failure in the secure wrapper.
    Crypto(tdb_crypto::CryptoError),
    /// A record failed validation in the secure wrapper (tampering or
    /// corruption detected).
    TamperDetected(String),
    /// Structural corruption of a page or WAL record.
    Corrupt(String),
    /// A key or value exceeds the page-imposed size limits.
    TooLarge {
        /// "key" or "value".
        what: &'static str,
        /// Offending size.
        size: usize,
        /// The limit.
        max: usize,
    },
}

impl fmt::Display for XdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdbError::Store(e) => write!(f, "storage error: {e}"),
            XdbError::Crypto(e) => write!(f, "crypto error: {e}"),
            XdbError::TamperDetected(msg) => write!(f, "TAMPER DETECTED: {msg}"),
            XdbError::Corrupt(msg) => write!(f, "corrupt database: {msg}"),
            XdbError::TooLarge { what, size, max } => {
                write!(f, "{what} of {size} bytes exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for XdbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XdbError::Store(e) => Some(e),
            XdbError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tdb_storage::StoreError> for XdbError {
    fn from(e: tdb_storage::StoreError) -> Self {
        XdbError::Store(e)
    }
}

impl From<tdb_crypto::CryptoError> for XdbError {
    fn from(e: tdb_crypto::CryptoError) -> Self {
        XdbError::Crypto(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, XdbError>;

pub use db::{Xdb, XdbConfig, XdbOp};
pub use secure::{SecureXdb, SecureXdbConfig};
