//! An on-page B+-tree keyed by byte strings.
//!
//! Nodes are decoded from and re-encoded to whole pages; a node splits when
//! its encoding would overflow the page. Keys are unique (a put replaces
//! the previous value), as in a conventional embedded KV database.

use crate::pager::{Pager, PAGE_SIZE};
use crate::{Result, XdbError};

/// Maximum key size.
pub const MAX_KEY: usize = 512;
/// Maximum value size.
pub const MAX_VALUE: usize = 2048;
/// Split threshold: leave room so any single extra entry still encodes.
const SPLIT_AT: usize = PAGE_SIZE - (MAX_KEY + MAX_VALUE + 16);

const LEAF: u8 = 1;
const INTERNAL: u8 = 2;

/// A decoded node.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Leaf {
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    Internal {
        seps: Vec<Vec<u8>>,
        children: Vec<u32>,
    },
}

impl Node {
    fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; 3];
        match self {
            Node::Leaf { entries } => {
                out[0] = LEAF;
                out[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                for (k, v) in entries {
                    out.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    out.extend_from_slice(&(v.len() as u16).to_le_bytes());
                    out.extend_from_slice(k);
                    out.extend_from_slice(v);
                }
            }
            Node::Internal { seps, children } => {
                out[0] = INTERNAL;
                out[1..3].copy_from_slice(&(seps.len() as u16).to_le_bytes());
                for (sep, child) in seps.iter().zip(children.iter()) {
                    out.extend_from_slice(&(sep.len() as u16).to_le_bytes());
                    out.extend_from_slice(sep);
                    out.extend_from_slice(&child.to_le_bytes());
                }
                out.extend_from_slice(&children.last().expect("n+1 children").to_le_bytes());
            }
        }
        debug_assert!(out.len() <= PAGE_SIZE, "node overflows page: {}", out.len());
        out.resize(PAGE_SIZE, 0);
        out
    }

    fn encoded_len(&self) -> usize {
        match self {
            Node::Leaf { entries } => {
                3 + entries
                    .iter()
                    .map(|(k, v)| 4 + k.len() + v.len())
                    .sum::<usize>()
            }
            Node::Internal { seps, children } => {
                3 + seps.iter().map(|s| 2 + s.len() + 4).sum::<usize>()
                    + 4 * (children.len() - seps.len())
            }
        }
    }

    fn decode(page: &[u8]) -> Result<Node> {
        let bad = |what: &str| XdbError::Corrupt(format!("btree node: {what}"));
        if page.len() < 3 {
            return Err(bad("short page"));
        }
        let n = u16::from_le_bytes(page[1..3].try_into().unwrap()) as usize;
        let mut off = 3usize;
        match page[0] {
            LEAF => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    if off + 4 > page.len() {
                        return Err(bad("truncated leaf entry"));
                    }
                    let klen = u16::from_le_bytes(page[off..off + 2].try_into().unwrap()) as usize;
                    let vlen =
                        u16::from_le_bytes(page[off + 2..off + 4].try_into().unwrap()) as usize;
                    off += 4;
                    if off + klen + vlen > page.len() {
                        return Err(bad("truncated leaf payload"));
                    }
                    entries.push((
                        page[off..off + klen].to_vec(),
                        page[off + klen..off + klen + vlen].to_vec(),
                    ));
                    off += klen + vlen;
                }
                Ok(Node::Leaf { entries })
            }
            INTERNAL => {
                let mut seps = Vec::with_capacity(n);
                let mut children = Vec::with_capacity(n + 1);
                for _ in 0..n {
                    if off + 2 > page.len() {
                        return Err(bad("truncated separator"));
                    }
                    let klen = u16::from_le_bytes(page[off..off + 2].try_into().unwrap()) as usize;
                    off += 2;
                    if off + klen + 4 > page.len() {
                        return Err(bad("truncated separator payload"));
                    }
                    seps.push(page[off..off + klen].to_vec());
                    off += klen;
                    children.push(u32::from_le_bytes(page[off..off + 4].try_into().unwrap()));
                    off += 4;
                }
                if off + 4 > page.len() {
                    return Err(bad("missing last child"));
                }
                children.push(u32::from_le_bytes(page[off..off + 4].try_into().unwrap()));
                Ok(Node::Internal { seps, children })
            }
            other => Err(bad(&format!("unknown node type {other}"))),
        }
    }
}

/// B+-tree operations over a pager. The root page lives in the pager meta.
pub struct BTree;

impl BTree {
    fn load(pager: &mut Pager, page_no: u32) -> Result<Node> {
        Node::decode(pager.read(page_no)?)
    }

    fn save(pager: &mut Pager, page_no: u32, node: &Node) {
        pager.write(page_no, node.encode());
    }

    /// Looks a key up.
    pub fn get(pager: &mut Pager, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut page_no = pager.meta.root;
        if page_no == 0 {
            return Ok(None);
        }
        loop {
            match Self::load(pager, page_no)? {
                Node::Leaf { entries } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1.clone()))
                }
                Node::Internal { seps, children } => {
                    page_no = children[child_slot(&seps, key)];
                }
            }
        }
    }

    /// Inserts or replaces; returns the previous value if any.
    pub fn put(pager: &mut Pager, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        if key.len() > MAX_KEY {
            return Err(XdbError::TooLarge {
                what: "key",
                size: key.len(),
                max: MAX_KEY,
            });
        }
        if value.len() > MAX_VALUE {
            return Err(XdbError::TooLarge {
                what: "value",
                size: value.len(),
                max: MAX_VALUE,
            });
        }
        if pager.meta.root == 0 {
            let root = pager.allocate()?;
            Self::save(
                pager,
                root,
                &Node::Leaf {
                    entries: vec![(key.to_vec(), value.to_vec())],
                },
            );
            pager.meta.root = root;
            return Ok(None);
        }
        let root = pager.meta.root;
        let (old, split) = Self::put_rec(pager, root, key, value)?;
        if let Some((sep, right)) = split {
            let new_root = pager.allocate()?;
            Self::save(
                pager,
                new_root,
                &Node::Internal {
                    seps: vec![sep],
                    children: vec![root, right],
                },
            );
            pager.meta.root = new_root;
        }
        Ok(old)
    }

    #[allow(clippy::type_complexity)]
    fn put_rec(
        pager: &mut Pager,
        page_no: u32,
        key: &[u8],
        value: &[u8],
    ) -> Result<(Option<Vec<u8>>, Option<(Vec<u8>, u32)>)> {
        let mut node = Self::load(pager, page_no)?;
        let old = match &mut node {
            Node::Leaf { entries } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        let old = std::mem::replace(&mut entries[i].1, value.to_vec());
                        Some(old)
                    }
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        None
                    }
                }
            }
            Node::Internal { seps, children } => {
                let slot = child_slot(seps, key);
                let child = children[slot];
                let (old, split) = Self::put_rec(pager, child, key, value)?;
                if let Some((sep, right)) = split {
                    seps.insert(slot, sep);
                    children.insert(slot + 1, right);
                }
                old
            }
        };
        if node.encoded_len() <= SPLIT_AT {
            Self::save(pager, page_no, &node);
            return Ok((old, None));
        }
        // Split the node.
        let (sep, right_node) = match &mut node {
            Node::Leaf { entries } => {
                let mid = entries.len() / 2;
                let right = entries.split_off(mid);
                (right[0].0.clone(), Node::Leaf { entries: right })
            }
            Node::Internal { seps, children } => {
                let mid = seps.len() / 2;
                let mut right_seps = seps.split_off(mid);
                let sep = right_seps.remove(0);
                let right_children = children.split_off(mid + 1);
                (
                    sep,
                    Node::Internal {
                        seps: right_seps,
                        children: right_children,
                    },
                )
            }
        };
        let right_page = pager.allocate()?;
        Self::save(pager, right_page, &right_node);
        Self::save(pager, page_no, &node);
        Ok((old, Some((sep, right_page))))
    }

    /// Deletes a key; returns the removed value if present.
    pub fn delete(pager: &mut Pager, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if pager.meta.root == 0 {
            return Ok(None);
        }
        let root = pager.meta.root;
        let removed = Self::delete_rec(pager, root, key)?;
        // Collapse a root chain: an internal root with one child.
        loop {
            match Self::load(pager, pager.meta.root)? {
                Node::Internal { seps, children } if seps.is_empty() => {
                    let old_root = pager.meta.root;
                    pager.meta.root = children[0];
                    pager.free(old_root);
                }
                _ => break,
            }
        }
        Ok(removed)
    }

    fn delete_rec(pager: &mut Pager, page_no: u32, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut node = Self::load(pager, page_no)?;
        match &mut node {
            Node::Leaf { entries } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        let (_, v) = entries.remove(i);
                        Self::save(pager, page_no, &node);
                        Ok(Some(v))
                    }
                    Err(_) => Ok(None),
                }
            }
            Node::Internal { seps, children } => {
                let slot = child_slot(seps, key);
                let child = children[slot];
                let removed = Self::delete_rec(pager, child, key)?;
                if removed.is_some() {
                    // Prune an empty leaf child.
                    if let Node::Leaf { entries } = Self::load(pager, child)? {
                        if entries.is_empty() && children.len() > 1 {
                            let sep_at = if slot == 0 { 0 } else { slot - 1 };
                            seps.remove(sep_at);
                            children.remove(slot);
                            Self::save(pager, page_no, &node);
                            pager.free(child);
                        }
                    }
                }
                Ok(removed)
            }
        }
    }

    /// All `(key, value)` pairs with `lo ≤ key < hi`, in order.
    pub fn range(
        pager: &mut Pager,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        if pager.meta.root != 0 {
            let root = pager.meta.root;
            Self::range_rec(pager, root, lo, hi, &mut out)?;
        }
        Ok(out)
    }

    fn range_rec(
        pager: &mut Pager,
        page_no: u32,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        out: &mut Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<()> {
        match Self::load(pager, page_no)? {
            Node::Leaf { entries } => {
                for (k, v) in entries {
                    if lo.is_some_and(|lo| k.as_slice() < lo) {
                        continue;
                    }
                    if hi.is_some_and(|hi| k.as_slice() >= hi) {
                        break;
                    }
                    out.push((k, v));
                }
            }
            Node::Internal { seps, children } => {
                for (i, child) in children.iter().enumerate() {
                    let subtree_min = if i == 0 { None } else { Some(&seps[i - 1]) };
                    let subtree_max = seps.get(i);
                    if let (Some(hi), Some(min)) = (hi, subtree_min) {
                        if min.as_slice() >= hi {
                            break;
                        }
                    }
                    if let (Some(lo), Some(max)) = (lo, subtree_max) {
                        if max.as_slice() <= lo {
                            // Keys in this subtree are < max ≤ lo: skip. A
                            // subtree may contain keys equal to its own max
                            // only on the right side, so ≤ is safe here.
                            continue;
                        }
                    }
                    Self::range_rec(pager, *child, lo, hi, out)?;
                }
            }
        }
        Ok(())
    }
}

/// Index of the child subtree for `key`: keys ≥ separator go right.
fn child_slot(seps: &[Vec<u8>], key: &[u8]) -> usize {
    match seps.binary_search_by(|s| s.as_slice().cmp(key)) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdb_storage::{MemStore, SharedUntrusted};

    fn pager() -> Pager {
        Pager::create(Arc::new(MemStore::new()) as SharedUntrusted, 256).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let mut p = pager();
        assert_eq!(BTree::get(&mut p, b"missing").unwrap(), None);
        assert_eq!(BTree::put(&mut p, b"k1", b"v1").unwrap(), None);
        assert_eq!(BTree::get(&mut p, b"k1").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(
            BTree::put(&mut p, b"k1", b"v2").unwrap(),
            Some(b"v1".to_vec())
        );
        assert_eq!(BTree::get(&mut p, b"k1").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(BTree::delete(&mut p, b"k1").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(BTree::get(&mut p, b"k1").unwrap(), None);
        assert_eq!(BTree::delete(&mut p, b"k1").unwrap(), None);
    }

    #[test]
    fn thousands_of_keys_split_pages() {
        let mut p = pager();
        for i in 0..3000u32 {
            let k = format!("key-{:06}", i * 7 % 3000);
            BTree::put(&mut p, k.as_bytes(), &[(i % 251) as u8; 64]).unwrap();
        }
        for i in (0..3000u32).step_by(97) {
            let k = format!("key-{:06}", i * 7 % 3000);
            assert!(BTree::get(&mut p, k.as_bytes()).unwrap().is_some(), "{k}");
        }
        let all = BTree::range(&mut p, None, None).unwrap();
        assert_eq!(all.len(), 3000);
        // Ordered.
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn range_bounds() {
        let mut p = pager();
        for i in 0..100u32 {
            BTree::put(&mut p, format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        let hits = BTree::range(&mut p, Some(b"k010"), Some(b"k020")).unwrap();
        assert_eq!(hits.len(), 10);
        assert_eq!(hits[0].0, b"k010");
        assert_eq!(hits[9].0, b"k019");
    }

    #[test]
    fn delete_many_then_reuse() {
        let mut p = pager();
        for i in 0..1000u32 {
            BTree::put(&mut p, format!("k{i:04}").as_bytes(), &[1; 100]).unwrap();
        }
        for i in 0..1000u32 {
            assert!(BTree::delete(&mut p, format!("k{i:04}").as_bytes())
                .unwrap()
                .is_some());
        }
        assert!(BTree::range(&mut p, None, None).unwrap().is_empty());
        BTree::put(&mut p, b"fresh", b"start").unwrap();
        assert_eq!(
            BTree::get(&mut p, b"fresh").unwrap(),
            Some(b"start".to_vec())
        );
    }

    #[test]
    fn size_limits_enforced() {
        let mut p = pager();
        assert!(matches!(
            BTree::put(&mut p, &vec![0u8; MAX_KEY + 1], b"v"),
            Err(XdbError::TooLarge { .. })
        ));
        assert!(matches!(
            BTree::put(&mut p, b"k", &vec![0u8; MAX_VALUE + 1]),
            Err(XdbError::TooLarge { .. })
        ));
        // Max sizes are accepted.
        BTree::put(&mut p, &vec![7u8; MAX_KEY], &vec![8u8; MAX_VALUE]).unwrap();
    }
}
