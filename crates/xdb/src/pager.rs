//! Fixed-size pages over an untrusted store, with a buffer cache.
//!
//! Page 0 is the meta page (magic, page count, free-list head, B-tree root).
//! Freed pages chain through their first 4 bytes.

use std::collections::HashMap;

use tdb_storage::SharedUntrusted;

use crate::{Result, XdbError};

/// Page size in bytes (a conventional embedded-database default).
pub const PAGE_SIZE: usize = 4096;

/// The reserved meta page.
pub const META_PAGE: u32 = 0;

const MAGIC: u32 = 0x5844_4231; // "XDB1"

/// Decoded meta page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Total pages allocated (including the meta page).
    pub n_pages: u32,
    /// Head of the free-page chain (0 = empty).
    pub free_head: u32,
    /// Root page of the B-tree (0 = no tree yet).
    pub root: u32,
    /// Commit sequence number.
    pub commit_seq: u64,
}

impl Meta {
    fn encode(&self) -> [u8; PAGE_SIZE] {
        let mut page = [0u8; PAGE_SIZE];
        page[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        page[4..8].copy_from_slice(&self.n_pages.to_le_bytes());
        page[8..12].copy_from_slice(&self.free_head.to_le_bytes());
        page[12..16].copy_from_slice(&self.root.to_le_bytes());
        page[16..24].copy_from_slice(&self.commit_seq.to_le_bytes());
        page
    }

    fn decode(page: &[u8]) -> Result<Meta> {
        if page.len() < 24 || u32::from_le_bytes(page[0..4].try_into().unwrap()) != MAGIC {
            return Err(XdbError::Corrupt("bad meta page".into()));
        }
        Ok(Meta {
            n_pages: u32::from_le_bytes(page[4..8].try_into().unwrap()),
            free_head: u32::from_le_bytes(page[8..12].try_into().unwrap()),
            root: u32::from_le_bytes(page[12..16].try_into().unwrap()),
            commit_seq: u64::from_le_bytes(page[16..24].try_into().unwrap()),
        })
    }
}

struct Frame {
    data: Vec<u8>,
    dirty: bool,
    last_used: u64,
}

/// The pager: page I/O plus a write-back buffer cache.
pub struct Pager {
    store: SharedUntrusted,
    cache: HashMap<u32, Frame>,
    /// Soft cap on cached pages; dirty pages are never evicted.
    capacity: usize,
    tick: u64,
    pub(crate) meta: Meta,
}

impl Pager {
    /// Formats a fresh database on `store`.
    pub fn create(store: SharedUntrusted, capacity: usize) -> Result<Pager> {
        let meta = Meta {
            n_pages: 1,
            free_head: 0,
            root: 0,
            commit_seq: 0,
        };
        store.write_at(0, &meta.encode())?;
        store.flush()?;
        Ok(Pager {
            store,
            cache: HashMap::new(),
            capacity: capacity.max(16),
            tick: 0,
            meta,
        })
    }

    /// Opens an existing database.
    pub fn open(store: SharedUntrusted, capacity: usize) -> Result<Pager> {
        let mut page = vec![0u8; PAGE_SIZE];
        store.read_at(0, &mut page)?;
        let meta = Meta::decode(&page)?;
        Ok(Pager {
            store,
            cache: HashMap::new(),
            capacity: capacity.max(16),
            tick: 0,
            meta,
        })
    }

    /// Current meta.
    pub fn meta(&self) -> Meta {
        self.meta
    }

    /// Reads a page (through the cache).
    pub fn read(&mut self, page_no: u32) -> Result<&[u8]> {
        self.tick += 1;
        let tick = self.tick;
        if !self.cache.contains_key(&page_no) {
            let mut data = vec![0u8; PAGE_SIZE];
            let offset = u64::from(page_no) * PAGE_SIZE as u64;
            if offset + (PAGE_SIZE as u64) <= self.store.len()? {
                self.store.read_at(offset, &mut data)?;
            }
            self.evict_if_needed();
            self.cache.insert(
                page_no,
                Frame {
                    data,
                    dirty: false,
                    last_used: tick,
                },
            );
        }
        let frame = self.cache.get_mut(&page_no).expect("just inserted");
        frame.last_used = tick;
        Ok(&frame.data)
    }

    /// Replaces a page's contents in the cache (made durable by
    /// [`Pager::flush_dirty`]).
    pub fn write(&mut self, page_no: u32, data: Vec<u8>) {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        self.tick += 1;
        let tick = self.tick;
        self.evict_if_needed();
        self.cache.insert(
            page_no,
            Frame {
                data,
                dirty: true,
                last_used: tick,
            },
        );
    }

    /// Allocates a page from the free list or by extending the file.
    pub fn allocate(&mut self) -> Result<u32> {
        if self.meta.free_head != 0 {
            let page_no = self.meta.free_head;
            let page = self.read(page_no)?;
            let next = u32::from_le_bytes(page[0..4].try_into().expect("4 bytes"));
            self.meta.free_head = next;
            return Ok(page_no);
        }
        let page_no = self.meta.n_pages;
        self.meta.n_pages += 1;
        self.write(page_no, vec![0u8; PAGE_SIZE]);
        Ok(page_no)
    }

    /// Returns a page to the free list.
    pub fn free(&mut self, page_no: u32) {
        let mut page = vec![0u8; PAGE_SIZE];
        page[0..4].copy_from_slice(&self.meta.free_head.to_le_bytes());
        self.write(page_no, page);
        self.meta.free_head = page_no;
    }

    /// The dirty pages (number and image), for WAL logging.
    pub fn dirty_pages(&self) -> Vec<(u32, Vec<u8>)> {
        let mut out: Vec<(u32, Vec<u8>)> = self
            .cache
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(n, f)| (*n, f.data.clone()))
            .collect();
        out.sort_by_key(|(n, _)| *n);
        out
    }

    /// Writes every dirty page (and the meta page) to the store and marks
    /// them clean. Durability requires a subsequent [`Pager::flush_store`].
    pub fn flush_dirty(&mut self) -> Result<()> {
        let dirty: Vec<u32> = self
            .cache
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(n, _)| *n)
            .collect();
        for page_no in dirty {
            let frame = self.cache.get_mut(&page_no).expect("listed");
            let offset = u64::from(page_no) * PAGE_SIZE as u64;
            self.store.write_at(offset, &frame.data)?;
            frame.dirty = false;
        }
        self.store.write_at(0, &self.meta.encode())?;
        Ok(())
    }

    /// Syncs the backing store.
    pub fn flush_store(&self) -> Result<()> {
        self.store.flush()?;
        Ok(())
    }

    /// Drops clean cached pages (crash-recovery reload).
    pub fn invalidate_cache(&mut self) {
        self.cache.clear();
    }

    /// Applies a full page image directly to the store (WAL redo).
    pub fn apply_redo(&mut self, page_no: u32, image: &[u8]) -> Result<()> {
        let offset = u64::from(page_no) * PAGE_SIZE as u64;
        self.store.write_at(offset, image)?;
        self.cache.remove(&page_no);
        if page_no == META_PAGE {
            self.meta = Meta::decode(image)?;
        }
        Ok(())
    }

    /// Dirty page count (for commit-cost accounting).
    pub fn dirty_count(&self) -> usize {
        self.cache.values().filter(|f| f.dirty).count()
    }

    fn evict_if_needed(&mut self) {
        while self.cache.len() >= self.capacity {
            let victim = self
                .cache
                .iter()
                .filter(|(_, f)| !f.dirty)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(n, _)| *n);
            match victim {
                Some(n) => {
                    self.cache.remove(&n);
                }
                None => break,
            }
        }
    }

    /// Encoded meta page image (for WAL logging of the meta page).
    pub fn meta_image(&self) -> Vec<u8> {
        self.meta.encode().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdb_storage::MemStore;

    fn pager() -> Pager {
        Pager::create(Arc::new(MemStore::new()) as SharedUntrusted, 64).unwrap()
    }

    #[test]
    fn create_open_meta_roundtrip() {
        let store: SharedUntrusted = Arc::new(MemStore::new());
        {
            let mut p = Pager::create(Arc::clone(&store), 64).unwrap();
            p.meta.root = 7;
            p.meta.commit_seq = 3;
            p.flush_dirty().unwrap();
            p.flush_store().unwrap();
        }
        let p = Pager::open(store, 64).unwrap();
        assert_eq!(p.meta().root, 7);
        assert_eq!(p.meta().commit_seq, 3);
    }

    #[test]
    fn allocate_write_read() {
        let mut p = pager();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        assert_ne!(a, b);
        let mut data = vec![0u8; PAGE_SIZE];
        data[100] = 0xAB;
        p.write(a, data);
        assert_eq!(p.read(a).unwrap()[100], 0xAB);
        assert_eq!(p.read(b).unwrap()[100], 0);
    }

    #[test]
    fn free_list_reuses_pages() {
        let mut p = pager();
        let a = p.allocate().unwrap();
        let _b = p.allocate().unwrap();
        p.free(a);
        let c = p.allocate().unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn dirty_tracking_and_flush() {
        let mut p = pager();
        let a = p.allocate().unwrap();
        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = 1;
        p.write(a, data);
        assert!(p.dirty_count() >= 1);
        let dirty = p.dirty_pages();
        assert!(dirty.iter().any(|(n, _)| *n == a));
        p.flush_dirty().unwrap();
        assert_eq!(p.dirty_count(), 0);
    }

    #[test]
    fn eviction_keeps_dirty_pages() {
        let mut p = Pager::create(Arc::new(MemStore::new()) as SharedUntrusted, 16).unwrap();
        let dirty_page = p.allocate().unwrap();
        let mut data = vec![0u8; PAGE_SIZE];
        data[5] = 9;
        p.write(dirty_page, data);
        // Flood with clean reads.
        for _i in 0..40u32 {
            let n = p.allocate().unwrap();
            p.write(n, vec![0u8; PAGE_SIZE]);
        }
        let _ = p.flush_dirty();
        for i in 1..40u32 {
            let _ = p.read(i).unwrap();
        }
        assert_eq!(p.read(dirty_page).unwrap()[5], 9);
    }

    #[test]
    fn apply_redo_updates_meta() {
        let mut p = pager();
        let mut meta = p.meta();
        meta.root = 42;
        meta.commit_seq = 9;
        let image = Meta::encode(&meta);
        p.apply_redo(META_PAGE, &image).unwrap();
        assert_eq!(p.meta().root, 42);
    }
}
