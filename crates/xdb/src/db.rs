//! The XDB embedded key-value database API.
//!
//! Commit protocol (the conventional architecture TDB is compared against):
//! apply the batch to the B-tree in the buffer cache, write full images of
//! every dirtied page (plus the meta page) to the WAL, flush the WAL, and
//! lazily write pages back to the data file — forced out at checkpoints,
//! which the engine takes every `checkpoint_every` commits. Recovery
//! replays the WAL onto the data file.
//!
//! This is why "XDB performs multiple disk writes at commit" (§9.5.2): each
//! commit writes whole dirty pages to the log even for a few-byte logical
//! change, and periodically pays a full page write-back storm.

use parking_lot::Mutex;
use tdb_storage::SharedUntrusted;

use crate::btree::BTree;
use crate::pager::Pager;
use crate::wal::Wal;
use crate::Result;

/// One operation of an atomic batch.
#[derive(Debug, Clone)]
pub enum XdbOp {
    /// Insert or replace.
    Put {
        /// Record key.
        key: Vec<u8>,
        /// Record value.
        value: Vec<u8>,
    },
    /// Remove.
    Delete {
        /// Record key.
        key: Vec<u8>,
    },
}

/// XDB configuration.
#[derive(Debug, Clone)]
pub struct XdbConfig {
    /// Buffer-cache capacity in pages.
    pub cache_pages: usize,
    /// Checkpoint (page write-back + WAL reset) every this many commits.
    pub checkpoint_every: u64,
}

impl Default for XdbConfig {
    fn default() -> Self {
        XdbConfig {
            cache_pages: 1024,
            checkpoint_every: 64,
        }
    }
}

struct XdbInner {
    pager: Pager,
    wal: Wal,
    config: XdbConfig,
    commits_since_checkpoint: u64,
    stats: XdbStats,
}

/// Aggregate counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct XdbStats {
    /// Commits performed.
    pub commits: u64,
    /// Checkpoints performed.
    pub checkpoints: u64,
    /// Pages written to the WAL.
    pub pages_logged: u64,
}

/// The embedded database: a B-tree over pages with WAL durability.
pub struct Xdb {
    inner: Mutex<XdbInner>,
}

impl Xdb {
    /// Formats a fresh database over a data store and a WAL store.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn create(data: SharedUntrusted, wal: SharedUntrusted, config: XdbConfig) -> Result<Xdb> {
        let pager = Pager::create(data, config.cache_pages)?;
        let wal = Wal::create(wal)?;
        Ok(Xdb {
            inner: Mutex::new(XdbInner {
                pager,
                wal,
                config,
                commits_since_checkpoint: 0,
                stats: XdbStats::default(),
            }),
        })
    }

    /// Opens an existing database, replaying the WAL (crash recovery).
    ///
    /// # Errors
    ///
    /// Propagates storage failures and corruption.
    pub fn open(data: SharedUntrusted, wal: SharedUntrusted, config: XdbConfig) -> Result<Xdb> {
        let mut pager = Pager::open(data, config.cache_pages)?;
        let mut wal = Wal::open(wal)?;
        wal.replay(|page_no, image| pager.apply_redo(page_no, image))?;
        pager.flush_store()?;
        pager.invalidate_cache();
        // Reload the meta page after redo.
        let meta_page = pager.read(crate::pager::META_PAGE)?.to_vec();
        let _ = meta_page;
        Ok(Xdb {
            inner: Mutex::new(XdbInner {
                pager,
                wal,
                config,
                commits_since_checkpoint: 0,
                stats: XdbStats::default(),
            }),
        })
    }

    /// Point lookup.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut inner = self.inner.lock();
        BTree::get(&mut inner.pager, key)
    }

    /// Ordered range scan: `lo ≤ key < hi`.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn range(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut inner = self.inner.lock();
        BTree::range(&mut inner.pager, lo, hi)
    }

    /// Atomically applies a batch and makes it durable (WAL flush).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn commit(&self, ops: Vec<XdbOp>) -> Result<()> {
        let mut inner = self.inner.lock();
        for op in ops {
            match op {
                XdbOp::Put { key, value } => {
                    BTree::put(&mut inner.pager, &key, &value)?;
                }
                XdbOp::Delete { key } => {
                    BTree::delete(&mut inner.pager, &key)?;
                }
            }
        }
        inner.pager.meta.commit_seq += 1;
        let seq = inner.pager.meta.commit_seq;
        // Log full images of every dirtied page, plus the meta page.
        let dirty = inner.pager.dirty_pages();
        for (page_no, image) in &dirty {
            inner.wal.log_page(*page_no, image)?;
        }
        let meta_image = inner.pager.meta_image();
        inner.wal.log_page(crate::pager::META_PAGE, &meta_image)?;
        inner.stats.pages_logged += dirty.len() as u64 + 1;
        inner.wal.commit(seq)?;
        inner.stats.commits += 1;
        inner.commits_since_checkpoint += 1;
        if inner.commits_since_checkpoint >= inner.config.checkpoint_every {
            Self::checkpoint_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Forces a checkpoint: dirty pages to the data file, WAL reset.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn checkpoint(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        Self::checkpoint_locked(&mut inner)
    }

    fn checkpoint_locked(inner: &mut XdbInner) -> Result<()> {
        inner.pager.flush_dirty()?;
        inner.pager.flush_store()?;
        inner.wal.reset()?;
        inner.commits_since_checkpoint = 0;
        inner.stats.checkpoints += 1;
        Ok(())
    }

    /// Aggregate counters.
    pub fn stats(&self) -> XdbStats {
        self.inner.lock().stats
    }

    /// Total stored size (data pages + live WAL), for space comparisons.
    pub fn stored_size(&self) -> u64 {
        let inner = self.inner.lock();
        u64::from(inner.pager.meta.n_pages) * crate::pager::PAGE_SIZE as u64 + inner.wal.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdb_storage::{CrashStore, MemStore};

    fn mem() -> SharedUntrusted {
        Arc::new(MemStore::new())
    }

    fn put(key: &str, value: &str) -> XdbOp {
        XdbOp::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    #[test]
    fn basic_crud_and_batch_atomicity() {
        let db = Xdb::create(mem(), mem(), XdbConfig::default()).unwrap();
        db.commit(vec![put("a", "1"), put("b", "2")]).unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
        db.commit(vec![XdbOp::Delete { key: b"a".to_vec() }, put("c", "3")])
            .unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);
        assert_eq!(db.get(b"c").unwrap(), Some(b"3".to_vec()));
    }

    #[test]
    fn survives_reopen_after_checkpoint() {
        let data = mem();
        let wal = mem();
        {
            let db =
                Xdb::create(Arc::clone(&data), Arc::clone(&wal), XdbConfig::default()).unwrap();
            for i in 0..200u32 {
                db.commit(vec![put(&format!("k{i}"), &format!("v{i}"))])
                    .unwrap();
            }
            db.checkpoint().unwrap();
        }
        let db = Xdb::open(data, wal, XdbConfig::default()).unwrap();
        for i in (0..200u32).step_by(13) {
            assert_eq!(
                db.get(format!("k{i}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
    }

    #[test]
    fn wal_recovery_without_checkpoint() {
        let data = mem();
        let wal = mem();
        {
            let db = Xdb::create(
                Arc::clone(&data),
                Arc::clone(&wal),
                XdbConfig {
                    checkpoint_every: 10_000,
                    ..XdbConfig::default()
                },
            )
            .unwrap();
            for i in 0..50u32 {
                db.commit(vec![put(&format!("k{i}"), "v")]).unwrap();
            }
            // No checkpoint: data pages were never forced.
        }
        let db = Xdb::open(data, wal, XdbConfig::default()).unwrap();
        for i in 0..50u32 {
            assert!(
                db.get(format!("k{i}").as_bytes()).unwrap().is_some(),
                "k{i}"
            );
        }
    }

    #[test]
    fn crash_loses_only_unflushed_tail() {
        let data = Arc::new(MemStore::new());
        let wal_mem = Arc::new(MemStore::new());
        let wal_crash = Arc::new(CrashStore::new(Arc::clone(&wal_mem) as SharedUntrusted).unwrap());
        let db = Xdb::create(
            Arc::clone(&data) as SharedUntrusted,
            Arc::clone(&wal_crash) as SharedUntrusted,
            XdbConfig {
                checkpoint_every: 10_000,
                ..XdbConfig::default()
            },
        )
        .unwrap();
        db.commit(vec![put("durable", "yes")]).unwrap();
        // The WAL flushes on every commit, so everything committed is
        // durable; crash and reopen from the captured images.
        let wal_image = wal_crash.crash_keep_all();
        let data_image = data.image();
        let db = Xdb::open(
            Arc::new(MemStore::from_bytes(data_image)) as SharedUntrusted,
            Arc::new(MemStore::from_bytes(wal_image)) as SharedUntrusted,
            XdbConfig::default(),
        )
        .unwrap();
        assert_eq!(db.get(b"durable").unwrap(), Some(b"yes".to_vec()));
    }

    #[test]
    fn range_scan_ordered() {
        let db = Xdb::create(mem(), mem(), XdbConfig::default()).unwrap();
        let ops: Vec<XdbOp> = (0..100u32)
            .map(|i| put(&format!("k{:03}", 99 - i), "v"))
            .collect();
        db.commit(ops).unwrap();
        let hits = db.range(Some(b"k010"), Some(b"k015")).unwrap();
        assert_eq!(hits.len(), 5);
        assert!(hits.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn stats_count_commit_cost() {
        let db = Xdb::create(mem(), mem(), XdbConfig::default()).unwrap();
        db.commit(vec![put("a", "1")]).unwrap();
        let stats = db.stats();
        assert_eq!(stats.commits, 1);
        // At least the root page and the meta page were logged.
        assert!(
            stats.pages_logged >= 2,
            "pages logged: {}",
            stats.pages_logged
        );
    }
}
