//! The write-ahead log: physical (full-page-image) redo logging.
//!
//! Every commit appends the images of all pages it dirtied, then a commit
//! record with a checksum, and flushes — the forced log write of a
//! conventional embedded database. Recovery replays complete commits in
//! order; a torn tail (no valid commit record) is discarded. Checkpoints
//! flush the data pages and reset the log.

use tdb_storage::SharedUntrusted;

use crate::pager::PAGE_SIZE;
use crate::{Result, XdbError};

const REC_PAGE: u8 = 1;
const REC_COMMIT: u8 = 2;

fn sum(bytes: &[u8]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

/// The write-ahead log over its own store (the paper's XDB also wrote its
/// log separately from the data file).
pub struct Wal {
    store: SharedUntrusted,
    /// Next append offset.
    tail: u64,
    /// Running checksum of the current in-flight commit's records.
    pending_sum: u64,
}

impl Wal {
    /// Creates an empty log.
    pub fn create(store: SharedUntrusted) -> Result<Wal> {
        store.set_len(0)?;
        Ok(Wal {
            store,
            tail: 0,
            pending_sum: 0,
        })
    }

    /// Opens an existing log *without* replaying (see [`Wal::replay`]).
    pub fn open(store: SharedUntrusted) -> Result<Wal> {
        let tail = store.len()?;
        Ok(Wal {
            store,
            tail,
            pending_sum: 0,
        })
    }

    /// Appends one page image.
    pub fn log_page(&mut self, page_no: u32, image: &[u8]) -> Result<()> {
        debug_assert_eq!(image.len(), PAGE_SIZE);
        let mut rec = Vec::with_capacity(5 + PAGE_SIZE);
        rec.push(REC_PAGE);
        rec.extend_from_slice(&page_no.to_le_bytes());
        rec.extend_from_slice(image);
        self.pending_sum ^= sum(&rec);
        self.store.write_at(self.tail, &rec)?;
        self.tail += rec.len() as u64;
        Ok(())
    }

    /// Appends the commit record and flushes the log — the durability
    /// point of an XDB commit.
    pub fn commit(&mut self, seq: u64) -> Result<()> {
        let mut rec = Vec::with_capacity(17);
        rec.push(REC_COMMIT);
        rec.extend_from_slice(&seq.to_le_bytes());
        rec.extend_from_slice(&self.pending_sum.to_le_bytes());
        self.store.write_at(self.tail, &rec)?;
        self.tail += rec.len() as u64;
        self.pending_sum = 0;
        self.store.flush()?;
        Ok(())
    }

    /// Truncates the log after a checkpoint made the data pages durable.
    pub fn reset(&mut self) -> Result<()> {
        self.store.set_len(0)?;
        self.store.flush()?;
        self.tail = 0;
        self.pending_sum = 0;
        Ok(())
    }

    /// Current log size in bytes.
    pub fn size(&self) -> u64 {
        self.tail
    }

    /// Replays complete commits, invoking `apply(page_no, image)` for every
    /// page of every committed record set, in order. Returns the number of
    /// commits replayed.
    ///
    /// # Errors
    ///
    /// Propagates storage failures and structural corruption (a torn tail
    /// is not an error).
    pub fn replay(&mut self, mut apply: impl FnMut(u32, &[u8]) -> Result<()>) -> Result<u64> {
        let len = self.store.len()?;
        let mut buf = vec![0u8; len as usize];
        if len > 0 {
            self.store.read_at(0, &mut buf)?;
        }
        let mut off = 0usize;
        let mut pending: Vec<(u32, usize, usize)> = Vec::new(); // (page, start, end) into buf
        let mut pending_sum = 0u64;
        let mut commits = 0u64;
        let mut valid_end = 0usize;
        while off < buf.len() {
            match buf[off] {
                REC_PAGE => {
                    if off + 5 + PAGE_SIZE > buf.len() {
                        break; // Torn.
                    }
                    let page_no = u32::from_le_bytes(buf[off + 1..off + 5].try_into().unwrap());
                    pending_sum ^= sum(&buf[off..off + 5 + PAGE_SIZE]);
                    pending.push((page_no, off + 5, off + 5 + PAGE_SIZE));
                    off += 5 + PAGE_SIZE;
                }
                REC_COMMIT => {
                    if off + 17 > buf.len() {
                        break; // Torn.
                    }
                    let stored = u64::from_le_bytes(buf[off + 9..off + 17].try_into().unwrap());
                    if stored != pending_sum {
                        break; // Torn or corrupt: stop at last good commit.
                    }
                    for (page_no, start, end) in pending.drain(..) {
                        apply(page_no, &buf[start..end])?;
                    }
                    pending_sum = 0;
                    commits += 1;
                    off += 17;
                    valid_end = off;
                }
                0 => break, // Zero fill past the tail.
                other => {
                    return Err(XdbError::Corrupt(format!(
                        "unknown WAL record type {other} at {off}"
                    )))
                }
            }
        }
        // Truncate any torn tail so new records append cleanly.
        self.tail = valid_end as u64;
        self.store.set_len(self.tail)?;
        Ok(commits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdb_storage::{MemStore, UntrustedStore};

    fn wal_with(pages: &[(u32, u8)]) -> (Arc<MemStore>, Wal) {
        let store = Arc::new(MemStore::new());
        let mut wal = Wal::create(Arc::clone(&store) as SharedUntrusted).unwrap();
        for &(n, fill) in pages {
            wal.log_page(n, &vec![fill; PAGE_SIZE]).unwrap();
        }
        (store, wal)
    }

    #[test]
    fn log_commit_replay() {
        let (store, mut wal) = wal_with(&[(1, 0xAA), (2, 0xBB)]);
        wal.commit(1).unwrap();
        wal.log_page(1, &vec![0xCC; PAGE_SIZE]).unwrap();
        wal.commit(2).unwrap();

        let mut wal2 = Wal::open(Arc::clone(&store) as SharedUntrusted).unwrap();
        let mut applied: Vec<(u32, u8)> = Vec::new();
        let commits = wal2
            .replay(|n, img| {
                applied.push((n, img[0]));
                Ok(())
            })
            .unwrap();
        assert_eq!(commits, 2);
        assert_eq!(applied, vec![(1, 0xAA), (2, 0xBB), (1, 0xCC)]);
    }

    #[test]
    fn torn_tail_discarded() {
        let (store, mut wal) = wal_with(&[(1, 0x11)]);
        wal.commit(1).unwrap();
        // A page image without its commit record.
        wal.log_page(2, &vec![0x22; PAGE_SIZE]).unwrap();
        let durable = store.len().unwrap();
        // Simulate a torn final write by chopping mid-record.
        let image = store.image();
        let store2 = Arc::new(MemStore::from_bytes(
            image[..durable as usize - 100].to_vec(),
        ));

        let mut wal2 = Wal::open(Arc::clone(&store2) as SharedUntrusted).unwrap();
        let mut applied = Vec::new();
        let commits = wal2
            .replay(|n, _| {
                applied.push(n);
                Ok(())
            })
            .unwrap();
        assert_eq!(commits, 1);
        assert_eq!(applied, vec![1]);
        // The torn tail was truncated.
        assert!(store2.len().unwrap() < durable - 100);
    }

    #[test]
    fn corrupt_commit_checksum_stops_replay() {
        let (store, mut wal) = wal_with(&[(1, 0x11)]);
        wal.commit(1).unwrap();
        wal.log_page(2, &vec![0x22; PAGE_SIZE]).unwrap();
        wal.commit(2).unwrap();
        // Corrupt a byte inside the second commit's page image.
        let first_commit_end = (5 + PAGE_SIZE + 17) as u64;
        store.tamper(first_commit_end + 10, 0xFF);

        let mut wal2 = Wal::open(store as SharedUntrusted).unwrap();
        let mut applied = Vec::new();
        let commits = wal2.replay(|n, _| {
            applied.push(n);
            Ok(())
        });
        assert_eq!(commits.unwrap(), 1);
        assert_eq!(applied, vec![1]);
    }

    #[test]
    fn reset_empties_log() {
        let (_store, mut wal) = wal_with(&[(1, 0x11)]);
        wal.commit(1).unwrap();
        assert!(wal.size() > 0);
        wal.reset().unwrap();
        assert_eq!(wal.size(), 0);
        let commits = wal.replay(|_, _| Ok(())).unwrap();
        assert_eq!(commits, 0);
    }
}
