//! The layered-cryptography strawman (§1.2, §9.5).
//!
//! "One might consider building a trusted database system by layering
//! cryptography on top of a conventional database system. This layer could
//! encrypt objects before storing them in the database and maintain a tree
//! of hash values over them. … Unfortunately, the layer would not protect
//! the metadata inside the database system. An attack could effectively
//! delete an object by modifying the indexes."
//!
//! [`SecureXdb`] implements exactly that layer over [`crate::Xdb`]:
//!
//! - record values are encrypted (fresh IV per write) under a secret key;
//! - a Merkle tree over record hashes is maintained *as ordinary database
//!   records* (`h/<level>/<bucket>`), so every update costs extra record
//!   reads and writes up the tree — the architectural overhead Figure 11
//!   measures;
//! - the root hash goes to the tamper-resistant store after each commit.
//!
//! The known, deliberate weakness (the paper's point): XDB's *own* pages —
//! B-tree structure, free lists — are not covered, and deletions of
//! records are only detectable via the hash-tree bookkeeping this layer
//! does itself.

use tdb_crypto::cbc::Cbc;
use tdb_crypto::{CipherKind, HashKind, SecretKey};
use tdb_storage::{SharedTrusted, SharedUntrusted};

use crate::db::{Xdb, XdbConfig, XdbOp};
use crate::{Result, XdbError};

/// Fanout of the layered hash tree.
const HASH_FANOUT: u64 = 64;
/// Levels in the fixed-depth hash tree (64³ = 262k record slots).
const HASH_LEVELS: u32 = 3;

/// Configuration for the secure wrapper.
pub struct SecureXdbConfig {
    /// Record cipher.
    pub cipher: CipherKind,
    /// Record and tree hash.
    pub hash: HashKind,
    /// The secret key (from the platform's secret store).
    pub key: SecretKey,
    /// Underlying XDB configuration.
    pub xdb: XdbConfig,
}

impl SecureXdbConfig {
    /// The paper's configuration: DES + SHA-1 for bulk data.
    pub fn paper_default(key: SecretKey) -> SecureXdbConfig {
        SecureXdbConfig {
            cipher: CipherKind::Des,
            hash: HashKind::Sha1,
            key,
            xdb: XdbConfig::default(),
        }
    }
}

/// A record id in the secure layer: a dense u64 the caller allocates (the
/// benchmark uses object ranks).
pub type RecordId = u64;

/// Cryptography layered on top of a conventional embedded database.
pub struct SecureXdb {
    db: Xdb,
    cbc: Cbc,
    hash: HashKind,
    trusted: SharedTrusted,
}

impl SecureXdb {
    /// Creates a fresh secure database.
    ///
    /// # Errors
    ///
    /// Propagates storage and key errors.
    pub fn create(
        data: SharedUntrusted,
        wal: SharedUntrusted,
        trusted: SharedTrusted,
        config: SecureXdbConfig,
    ) -> Result<SecureXdb> {
        let db = Xdb::create(data, wal, config.xdb)?;
        let cbc = Cbc::new(config.cipher.new_cipher(config.key.as_bytes())?);
        Ok(SecureXdb {
            db,
            cbc,
            hash: config.hash,
            trusted,
        })
    }

    /// Opens an existing secure database (WAL recovery included), then
    /// verifies the stored hash-tree root against the trusted store.
    ///
    /// # Errors
    ///
    /// Signals tamper detection when the root hash does not match.
    pub fn open(
        data: SharedUntrusted,
        wal: SharedUntrusted,
        trusted: SharedTrusted,
        config: SecureXdbConfig,
    ) -> Result<SecureXdb> {
        let db = Xdb::open(data, wal, config.xdb)?;
        let cbc = Cbc::new(config.cipher.new_cipher(config.key.as_bytes())?);
        let secure = SecureXdb {
            db,
            cbc,
            hash: config.hash,
            trusted,
        };
        let stored_root = secure.db.get(&root_key())?.unwrap_or_default();
        let trusted_root = secure.trusted.read().map_err(XdbError::Store)?;
        if stored_root != trusted_root {
            return Err(XdbError::TamperDetected(
                "hash-tree root does not match the tamper-resistant store".into(),
            ));
        }
        Ok(secure)
    }

    fn record_key(id: RecordId) -> Vec<u8> {
        let mut k = b"d/".to_vec();
        k.extend_from_slice(&id.to_be_bytes());
        k
    }

    fn node_key(level: u32, bucket: u64) -> Vec<u8> {
        let mut k = b"h/".to_vec();
        k.push(level as u8);
        k.extend_from_slice(&bucket.to_be_bytes());
        k
    }

    fn leaf_slot(&self, id: RecordId) -> (u64, usize) {
        (id / HASH_FANOUT, (id % HASH_FANOUT) as usize)
    }

    /// Reads and verifies a record.
    ///
    /// # Errors
    ///
    /// Signals tamper detection on hash mismatch or undecryptable data.
    pub fn get(&self, id: RecordId) -> Result<Option<Vec<u8>>> {
        let Some(sealed) = self.db.get(&Self::record_key(id))? else {
            // Absence must be corroborated by the hash tree, otherwise a
            // deleted-record attack would be invisible.
            if self.leaf_hash(id)?.is_some() {
                return Err(XdbError::TamperDetected(format!(
                    "record {id} missing but present in the hash tree"
                )));
            }
            return Ok(None);
        };
        let bs = self.cbc.block_size();
        if sealed.len() < bs {
            return Err(XdbError::TamperDetected(format!("record {id} truncated")));
        }
        let (iv, ct) = sealed.split_at(bs);
        let plain = self
            .cbc
            .decrypt(iv, ct)
            .map_err(|_| XdbError::TamperDetected(format!("record {id} does not decrypt")))?;
        let expected = self.leaf_hash(id)?.ok_or_else(|| {
            XdbError::TamperDetected(format!("record {id} present but absent from hash tree"))
        })?;
        let actual = self.hash.hash(&plain);
        if actual.as_bytes() != expected.as_slice() {
            return Err(XdbError::TamperDetected(format!(
                "record {id} hash mismatch"
            )));
        }
        Ok(Some(plain))
    }

    fn leaf_hash(&self, id: RecordId) -> Result<Option<Vec<u8>>> {
        let (bucket, slot) = self.leaf_slot(id);
        let Some(node) = self.db.get(&Self::node_key(0, bucket))? else {
            return Ok(None);
        };
        let hashes = decode_node(&node, self.hash.digest_len())?;
        Ok(hashes.get(slot).and_then(|h| {
            if h.iter().all(|&b| b == 0) {
                None
            } else {
                Some(h.clone())
            }
        }))
    }

    /// Atomically applies a batch of puts/deletes, maintains the hash
    /// tree, commits, and pushes the new root to the trusted store.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn commit(&self, ops: Vec<(RecordId, Option<Vec<u8>>)>) -> Result<()> {
        let digest_len = self.hash.digest_len();
        let mut db_ops: Vec<XdbOp> = Vec::new();
        // Group leaf-level hash updates per bucket to batch node rewrites.
        let mut touched_buckets: Vec<u64> = Vec::new();
        let mut node_cache: std::collections::HashMap<(u32, u64), Vec<Vec<u8>>> =
            std::collections::HashMap::new();

        for (id, value) in &ops {
            let (bucket, slot) = self.leaf_slot(*id);
            let node = match node_cache.entry((0, bucket)) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let existing = self.db.get(&Self::node_key(0, bucket))?;
                    let decoded = match existing {
                        Some(bytes) => decode_node(&bytes, digest_len)?,
                        None => vec![vec![0u8; digest_len]; HASH_FANOUT as usize],
                    };
                    e.insert(decoded)
                }
            };
            match value {
                Some(plain) => {
                    node[slot] = self.hash.hash(plain).as_bytes().to_vec();
                    // Encrypt the record.
                    let iv = self.cbc.random_iv();
                    let ct = self.cbc.encrypt(&iv, plain)?;
                    let mut sealed = iv;
                    sealed.extend_from_slice(&ct);
                    db_ops.push(XdbOp::Put {
                        key: Self::record_key(*id),
                        value: sealed,
                    });
                }
                None => {
                    node[slot] = vec![0u8; digest_len];
                    db_ops.push(XdbOp::Delete {
                        key: Self::record_key(*id),
                    });
                }
            }
            if !touched_buckets.contains(&bucket) {
                touched_buckets.push(bucket);
            }
        }

        // Propagate up the fixed-depth tree: level L bucket B hashes into
        // level L+1 bucket B/FANOUT slot B%FANOUT.
        for level in 0..HASH_LEVELS {
            let mut parents: Vec<u64> = Vec::new();
            for &bucket in &touched_buckets {
                let node = node_cache
                    .get(&(level, bucket))
                    .expect("touched nodes are cached")
                    .clone();
                let encoded = encode_node(&node);
                let node_hash = self.hash.hash(&encoded).as_bytes().to_vec();
                db_ops.push(XdbOp::Put {
                    key: Self::node_key(level, bucket),
                    value: encoded,
                });
                let parent_bucket = bucket / HASH_FANOUT;
                let parent_slot = (bucket % HASH_FANOUT) as usize;
                let parent = match node_cache.entry((level + 1, parent_bucket)) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let existing = self.db.get(&Self::node_key(level + 1, parent_bucket))?;
                        let decoded = match existing {
                            Some(bytes) => decode_node(&bytes, digest_len)?,
                            None => vec![vec![0u8; digest_len]; HASH_FANOUT as usize],
                        };
                        e.insert(decoded)
                    }
                };
                parent[parent_slot] = node_hash;
                if !parents.contains(&parent_bucket) {
                    parents.push(parent_bucket);
                }
            }
            touched_buckets = parents;
        }
        // The single top node is the root.
        debug_assert!(touched_buckets.len() <= 1);
        let mut new_root = None;
        if let Some(&top) = touched_buckets.first() {
            let node = node_cache
                .get(&(HASH_LEVELS, top))
                .expect("top node cached")
                .clone();
            let encoded = encode_node(&node);
            let root_hash = self.hash.hash(&encoded).as_bytes().to_vec();
            db_ops.push(XdbOp::Put {
                key: Self::node_key(HASH_LEVELS, top),
                value: encoded,
            });
            db_ops.push(XdbOp::Put {
                key: root_key(),
                value: root_hash.clone(),
            });
            new_root = Some(root_hash);
        }

        self.db.commit(db_ops)?;
        if let Some(root) = new_root {
            self.trusted.write(&root).map_err(XdbError::Store)?;
        }
        Ok(())
    }

    /// Forces a checkpoint of the underlying database.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn checkpoint(&self) -> Result<()> {
        self.db.checkpoint()
    }

    /// Underlying database statistics.
    pub fn stats(&self) -> crate::db::XdbStats {
        self.db.stats()
    }

    /// Total stored size.
    pub fn stored_size(&self) -> u64 {
        self.db.stored_size()
    }
}

fn root_key() -> Vec<u8> {
    b"h/root".to_vec()
}

fn encode_node(hashes: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(hashes.len() * hashes.first().map_or(0, |h| h.len()));
    for h in hashes {
        out.extend_from_slice(h);
    }
    out
}

fn decode_node(bytes: &[u8], digest_len: usize) -> Result<Vec<Vec<u8>>> {
    if digest_len == 0 || bytes.len() != digest_len * HASH_FANOUT as usize {
        return Err(XdbError::Corrupt("bad hash-tree node size".into()));
    }
    Ok(bytes.chunks_exact(digest_len).map(|c| c.to_vec()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdb_storage::{MemStore, MemTrustedStore, TrustedStore, UntrustedStore};

    struct Fx {
        data: Arc<MemStore>,
        wal: Arc<MemStore>,
        trusted: Arc<MemTrustedStore>,
        key: SecretKey,
    }

    impl Fx {
        fn new() -> Fx {
            Fx {
                data: Arc::new(MemStore::new()),
                wal: Arc::new(MemStore::new()),
                trusted: Arc::new(MemTrustedStore::new(64)),
                key: SecretKey::random(8),
            }
        }

        fn create(&self) -> SecureXdb {
            SecureXdb::create(
                Arc::clone(&self.data) as SharedUntrusted,
                Arc::clone(&self.wal) as SharedUntrusted,
                Arc::clone(&self.trusted) as SharedTrusted,
                SecureXdbConfig::paper_default(self.key.clone()),
            )
            .unwrap()
        }

        fn open(&self) -> Result<SecureXdb> {
            SecureXdb::open(
                Arc::clone(&self.data) as SharedUntrusted,
                Arc::clone(&self.wal) as SharedUntrusted,
                Arc::clone(&self.trusted) as SharedTrusted,
                SecureXdbConfig::paper_default(self.key.clone()),
            )
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let fx = Fx::new();
        let db = fx.create();
        db.commit(vec![
            (1, Some(b"contract A".to_vec())),
            (2, Some(b"contract B".to_vec())),
        ])
        .unwrap();
        assert_eq!(db.get(1).unwrap(), Some(b"contract A".to_vec()));
        assert_eq!(db.get(2).unwrap(), Some(b"contract B".to_vec()));
        assert_eq!(db.get(3).unwrap(), None);
    }

    #[test]
    fn values_are_encrypted_on_disk() {
        let fx = Fx::new();
        let db = fx.create();
        let secret = b"very secret contract terms";
        db.commit(vec![(1, Some(secret.to_vec()))]).unwrap();
        db.checkpoint().unwrap();
        let image = fx.data.image();
        assert!(
            !image.windows(secret.len()).any(|w| w == secret),
            "plaintext leaked into the data file"
        );
    }

    #[test]
    fn delete_then_absent() {
        let fx = Fx::new();
        let db = fx.create();
        db.commit(vec![(5, Some(b"x".to_vec()))]).unwrap();
        db.commit(vec![(5, None)]).unwrap();
        assert_eq!(db.get(5).unwrap(), None);
    }

    #[test]
    fn persists_across_open() {
        let fx = Fx::new();
        {
            let db = fx.create();
            db.commit(vec![(1, Some(b"durable".to_vec()))]).unwrap();
            db.checkpoint().unwrap();
        }
        let db = fx.open().unwrap();
        assert_eq!(db.get(1).unwrap(), Some(b"durable".to_vec()));
    }

    #[test]
    fn tampered_record_detected() {
        let fx = Fx::new();
        let db = fx.create();
        db.commit(vec![(1, Some(vec![0x5Au8; 200]))]).unwrap();
        db.checkpoint().unwrap();
        drop(db);
        // Flip bytes throughout the data file; reads must never return
        // silently wrong data.
        let len = fx.data.len().unwrap();
        let mut detected = 0;
        for offset in (4096..len).step_by(509) {
            fx.data.tamper(offset, 0x80);
            let db = match fx.open() {
                Ok(db) => db,
                Err(_) => {
                    detected += 1;
                    fx.data.tamper(offset, 0x80);
                    continue;
                }
            };
            match db.get(1) {
                Ok(Some(v)) => assert_eq!(v, vec![0x5Au8; 200]),
                Ok(None) | Err(_) => detected += 1,
            }
            fx.data.tamper(offset, 0x80);
        }
        assert!(detected > 0, "no tampering detected anywhere");
    }

    #[test]
    fn replayed_image_detected_via_trusted_root() {
        let fx = Fx::new();
        let (old_data, old_wal) = {
            let db = fx.create();
            db.commit(vec![(1, Some(b"balance: 100".to_vec()))])
                .unwrap();
            db.checkpoint().unwrap();
            let images = (fx.data.image(), fx.wal.image());
            db.commit(vec![(1, Some(b"balance: 0".to_vec()))]).unwrap();
            db.checkpoint().unwrap();
            images
        };
        // Replay the old database image while the trusted root has moved on.
        let replayed = Fx {
            data: Arc::new(MemStore::from_bytes(old_data)),
            wal: Arc::new(MemStore::from_bytes(old_wal)),
            trusted: Arc::clone(&fx.trusted),
            key: fx.key.clone(),
        };
        let err = replayed.open().map(|_| ()).unwrap_err();
        assert!(matches!(err, XdbError::TamperDetected(_)), "got {err:?}");
    }

    #[test]
    fn missing_record_with_tree_entry_detected() {
        // The deleted-record attack: remove the record but leave the tree.
        // SecureXdb's own bookkeeping catches this one; the *unprotected*
        // surface is XDB's internal metadata, demonstrated in the
        // metadata_attack integration test.
        let fx = Fx::new();
        let db = fx.create();
        db.commit(vec![(1, Some(b"target".to_vec()))]).unwrap();
        // Bypass the secure layer: delete through the raw database.
        db.db
            .commit(vec![XdbOp::Delete {
                key: SecureXdb::record_key(1),
            }])
            .unwrap();
        let err = db.get(1).map(|_| ()).unwrap_err();
        assert!(matches!(err, XdbError::TamperDetected(_)));
    }

    #[test]
    fn trusted_root_updates_every_commit() {
        let fx = Fx::new();
        let db = fx.create();
        let before = fx.trusted.stats().snapshot().writes;
        db.commit(vec![(1, Some(b"a".to_vec()))]).unwrap();
        db.commit(vec![(2, Some(b"b".to_vec()))]).unwrap();
        let after = fx.trusted.stats().snapshot().writes;
        assert!(after >= before + 2);
    }
}
