//! Property-based testing of XDB against a `BTreeMap` model, with random
//! checkpoints and crash-recovery reopens interleaved.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use tdb_storage::{MemStore, SharedUntrusted};
use tdb_xdb::{Xdb, XdbConfig, XdbOp};

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u16),
    Delete(u16),
    Checkpoint,
    Reopen,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            6 => (any::<u16>(), any::<u16>()).prop_map(|(k, v)| Op::Put(k % 500, v)),
            3 => any::<u16>().prop_map(|k| Op::Delete(k % 500)),
            1 => Just(Op::Checkpoint),
            1 => Just(Op::Reopen),
        ],
        1..150,
    )
}

fn key(k: u16) -> Vec<u8> {
    format!("key-{k:05}").into_bytes()
}

fn value(v: u16) -> Vec<u8> {
    vec![(v % 251) as u8; 16 + (v as usize % 200)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn xdb_matches_btreemap_model(script in ops()) {
        let data: Arc<MemStore> = Arc::new(MemStore::new());
        let wal: Arc<MemStore> = Arc::new(MemStore::new());
        let config = XdbConfig { cache_pages: 64, checkpoint_every: 10_000 };
        let mut db = Xdb::create(
            Arc::clone(&data) as SharedUntrusted,
            Arc::clone(&wal) as SharedUntrusted,
            config.clone(),
        ).unwrap();
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();

        for op in script {
            match op {
                Op::Put(k, v) => {
                    db.commit(vec![XdbOp::Put { key: key(k), value: value(v) }]).unwrap();
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    db.commit(vec![XdbOp::Delete { key: key(k) }]).unwrap();
                    model.remove(&k);
                }
                Op::Checkpoint => db.checkpoint().unwrap(),
                Op::Reopen => {
                    drop(db);
                    db = Xdb::open(
                        Arc::clone(&data) as SharedUntrusted,
                        Arc::clone(&wal) as SharedUntrusted,
                        config.clone(),
                    ).unwrap();
                }
            }
        }

        // Point lookups agree.
        for (k, v) in &model {
            prop_assert_eq!(db.get(&key(*k)).unwrap(), Some(value(*v)));
        }
        // Full scan agrees in order and content.
        let scan = db.range(None, None).unwrap();
        prop_assert_eq!(scan.len(), model.len());
        for ((got_k, got_v), (k, v)) in scan.iter().zip(model.iter()) {
            prop_assert_eq!(got_k, &key(*k));
            prop_assert_eq!(got_v, &value(*v));
        }
        // A final crash-reopen preserves everything (WAL replay).
        drop(db);
        let db = Xdb::open(
            Arc::clone(&data) as SharedUntrusted,
            Arc::clone(&wal) as SharedUntrusted,
            config,
        ).unwrap();
        for (k, v) in model.iter().take(30) {
            prop_assert_eq!(db.get(&key(*k)).unwrap(), Some(value(*v)));
        }
    }
}
