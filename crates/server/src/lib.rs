//! `tdb-server`: a multi-client TCP front end for a [`TrustedDb`].
//!
//! The paper's deployment model (§2) is a trusted *server* process that
//! many untrusted clients talk to over a network; this crate is that
//! process's network layer. It is deliberately thin: all semantics live
//! in the transport-agnostic session/command layer ([`tdb::Session`],
//! [`tdb::Command`]), which the embedded API uses too — the server only
//! adds sockets, frames, and authentication.
//!
//! Design:
//!
//! - **Thread per connection** over `std::net`. Each connection runs a
//!   blocking read → dispatch → write loop; pipelined requests are
//!   answered strictly in order. Cross-connection concurrency is what
//!   drives the chunk store's group-commit batcher: N sessions
//!   autocommitting concurrently share flushes.
//! - **Challenge-response auth** ([`tdb::wire`]) over a pre-shared HMAC
//!   key before any command is accepted.
//! - **Degraded-mode signalling**: every response envelope carries the
//!   store's health byte, so clients observe `Live → Degraded/Poisoned`
//!   transitions on their very next response.
//! - **Graceful shutdown**: [`TdbServer::shutdown`] stops the accept
//!   loop, shuts down every live socket (clients see a clean EOF, not a
//!   hung connection), and joins all threads.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use tdb::wire::{
    self, client_auth_mac, server_welcome_mac, AuthResult, ClientAuth, Hello, NONCE_LEN,
};
use tdb::{StoreHealth, TrustedDb};
use tdb_crypto::SecretKey;

/// Server configuration.
pub struct ServerConfig {
    /// Pre-shared HMAC key clients must prove possession of.
    pub auth_key: SecretKey,
}

impl ServerConfig {
    /// Config with the given pre-shared key.
    pub fn new(auth_key: SecretKey) -> ServerConfig {
        ServerConfig { auth_key }
    }
}

/// Aggregate server counters (all monotonic).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Sessions that passed authentication.
    pub sessions: AtomicU64,
    /// Handshakes refused (bad MAC, bad frame).
    pub rejected: AtomicU64,
    /// Requests dispatched.
    pub requests: AtomicU64,
    /// Requests answered with an error response.
    pub errors: AtomicU64,
}

struct ServerShared {
    db: Arc<TrustedDb>,
    auth_key: SecretKey,
    shutdown: AtomicBool,
    next_session: AtomicU64,
    stats: ServerStats,
    /// Live connection sockets, for shutdown. Keyed by session id.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Finished-or-running connection threads, joined at shutdown.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A running TDB server. Dropping it shuts it down.
pub struct TdbServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
}

impl TdbServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(
        db: Arc<TrustedDb>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<TdbServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            db,
            auth_key: config.auth_key,
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            stats: ServerStats::default(),
            conns: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("tdb-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(TdbServer {
            shared,
            addr: local,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (with the real port when spawned on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Stops accepting, closes every live connection, joins all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Shut down live sockets: connection threads unblock from read
        // with EOF and exit their loops.
        for (_, conn) in self.shared.conns.lock().unwrap().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let handles = std::mem::take(&mut *self.shared.handles.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for TdbServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("tdb-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &conn_shared);
            });
        if let Ok(handle) = handle {
            shared.handles.lock().unwrap().push(handle);
        }
    }
}

/// Runs the handshake; returns the authenticated principal and the
/// session id, or writes a Reject frame and errors out.
fn handshake<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    shared: &ServerShared,
) -> io::Result<(String, u64)> {
    fn reject<W: Write>(writer: &mut W, reason: &str) -> io::Result<()> {
        wire::write_frame(
            writer,
            &AuthResult::Reject {
                reason: reason.to_string(),
            }
            .encode(),
        )?;
        writer.flush()
    }

    let mut server_nonce = [0u8; NONCE_LEN];
    server_nonce.copy_from_slice(SecretKey::random(NONCE_LEN).as_bytes());
    wire::write_frame(
        writer,
        &Hello {
            nonce: server_nonce,
        }
        .encode(),
    )?;
    writer.flush()?;

    let auth_payload = wire::read_frame(reader)?;
    let auth = match ClientAuth::decode(&auth_payload) {
        Ok(auth) => auth,
        Err(e) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            reject(writer, &format!("malformed auth frame: {e}"))?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad auth frame"));
        }
    };
    let expected = client_auth_mac(
        shared.auth_key.as_bytes(),
        &server_nonce,
        &auth.nonce,
        &auth.principal,
    );
    if !expected.ct_eq(&auth.mac) {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        reject(writer, "authentication failed")?;
        return Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            "bad client MAC",
        ));
    }
    let session_id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let welcome = AuthResult::Welcome {
        mac: server_welcome_mac(shared.auth_key.as_bytes(), &auth.nonce, &server_nonce),
        session_id,
    };
    wire::write_frame(writer, &welcome.encode())?;
    writer.flush()?;
    shared.stats.sessions.fetch_add(1, Ordering::Relaxed);
    Ok((auth.principal, session_id))
}

fn health_stamp(health: &StoreHealth) -> (u8, String) {
    match health {
        StoreHealth::Live => (wire::health::LIVE, String::new()),
        StoreHealth::Degraded { reason } => (wire::health::DEGRADED, reason.clone()),
        StoreHealth::Poisoned { reason } => (wire::health::POISONED, reason.clone()),
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<ServerShared>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);

    let (principal, session_id) = handshake(&mut reader, &mut writer, shared)?;
    shared
        .conns
        .lock()
        .unwrap()
        .insert(session_id, stream.try_clone()?);
    // Dropping the session at any exit aborts its open transaction.
    let mut session = shared.db.session(&principal);

    let result = (|| -> io::Result<()> {
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            let payload = match wire::read_frame(&mut reader) {
                Ok(p) => p,
                // Clean EOF between frames = client hung up.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            };
            shared.stats.requests.fetch_add(1, Ordering::Relaxed);
            let (request_id, response) = match wire::decode_request(&payload) {
                Ok((id, cmd)) => (id, session.dispatch(&cmd)),
                // A malformed command still gets an in-band typed error
                // (request id 0 when the id itself was unreadable).
                Err(e) => (
                    decoded_request_id(&payload),
                    tdb::Response::Error(tdb::WireError(tdb::TdbError::Core(e))),
                ),
            };
            if matches!(response, tdb::Response::Error(_)) {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            let (health, reason) = health_stamp(&session.health());
            let envelope = wire::encode_response(request_id, health, &reason, &response);
            wire::write_frame(&mut writer, &envelope)?;
            // Flush only when no more requests are already queued: back-
            // to-back pipelined requests share one flush.
            if reader.buffer().is_empty() {
                writer.flush()?;
            }
        }
    })();
    shared.conns.lock().unwrap().remove(&session_id);
    result
}

/// Salvages the request id from a frame whose command failed to decode,
/// so the error can still be matched to its request client-side.
fn decoded_request_id(payload: &[u8]) -> u64 {
    if payload.len() >= 8 {
        u64::from_le_bytes(payload[..8].try_into().expect("checked length"))
    } else {
        0
    }
}
