//! Concurrent read/mutate stress over a shared [`ChunkStore`] (ISSUE 2).
//!
//! N reader threads hammer the sharded fast-read path while one mutator
//! commits new versions, checkpoints, and cleans. The protocol proves
//! that every successful read returns a *fully committed* pre- or
//! post-state body, never torn or partially validated data:
//!
//! - Each chunk body is self-describing: `body(rank, version)` embeds
//!   both values and a length/fill derived from them, so any mix of two
//!   versions (or a torn buffer) fails the equality check.
//! - Per rank the mutator maintains two atomics: `pending[rank]` is
//!   bumped *before* the commit is issued, `committed[rank]` *after* it
//!   is acknowledged. A reader brackets its read with
//!   `lo = committed[rank]` (before) and `hi = pending[rank]` (after);
//!   the version decoded from the body must satisfy `lo <= v <= hi`.
//!   A stale cache hit would violate the lower bound, a torn or
//!   speculative read the body equality, a time-travel read the upper
//!   bound.
//!
//! The suites run at reader counts {1, 2, 4, 8}, with the crypto
//! pipeline sequential and parallel, and once more with a seeded
//! [`FaultPlan`] injecting transient storage faults (reads may then fail
//! with I/O or degraded-mode errors — but a read that *succeeds* must
//! still satisfy the same bounds). Heavier torture variants are
//! `#[ignore]`d for the CI `--include-ignored` pass.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tdb::{
    ChunkId, ChunkStore, ChunkStoreConfig, CommitOp, CryptoParams, PartitionId, TrustedBackend,
    ValidationMode,
};
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, FaultPlan, MemStore, MemTrustedStore, PlannedFaultStore, SharedUntrusted,
    TrustedStore, UntrustedStore,
};

const RANKS: u64 = 8;

fn config(crypto_workers: usize) -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 1 << 16,
        checkpoint_threshold: 24,
        validation: ValidationMode::Counter {
            delta_ut: 5,
            delta_tu: 0,
        },
        read_shards: 16,
        read_cache_chunks: 64,
        crypto_workers,
        ..ChunkStoreConfig::default()
    }
}

/// The self-describing body for `(rank, version)`: decodable header plus
/// a version-dependent fill and length, so two versions never agree on
/// any prefix longer than the header.
fn body(rank: u64, version: u64) -> Vec<u8> {
    let len = 64 + ((rank * 131 + version * 17) % 512) as usize;
    let mut out = Vec::with_capacity(16 + len);
    out.extend_from_slice(&rank.to_le_bytes());
    out.extend_from_slice(&version.to_le_bytes());
    let fill = (rank as u8).wrapping_mul(31).wrapping_add(version as u8);
    out.resize(16 + len, fill);
    out
}

/// Decodes a body's version and checks full integrity against `rank`.
/// Panics on any torn or mixed buffer.
fn decode(rank: u64, got: &[u8]) -> u64 {
    assert!(got.len() >= 16, "body too short: {} bytes", got.len());
    let r = u64::from_le_bytes(got[..8].try_into().unwrap());
    let v = u64::from_le_bytes(got[8..16].try_into().unwrap());
    assert_eq!(r, rank, "body belongs to another rank");
    assert_eq!(
        got,
        body(rank, v),
        "torn or mixed body for rank {rank} version {v}"
    );
    v
}

struct Harness {
    store: Arc<ChunkStore>,
    partition: PartitionId,
    /// Last version whose commit was *issued*, per rank.
    pending: Vec<AtomicU64>,
    /// Last version whose commit was *acknowledged*, per rank.
    committed: Vec<AtomicU64>,
    done: AtomicBool,
}

fn build(untrusted: SharedUntrusted, crypto_workers: usize) -> Harness {
    let register = Arc::new(MemTrustedStore::new(64));
    let backend = TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
        register as Arc<dyn TrustedStore>,
    )));
    let store = ChunkStore::create(
        untrusted,
        backend,
        SecretKey::random(24),
        config(crypto_workers),
    )
    .unwrap();
    let partition = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: partition,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    // Write version 1 of every rank so readers never see NotWritten in
    // the fault-free runs.
    for rank in 0..RANKS {
        let id = store.allocate_chunk(partition).unwrap();
        assert_eq!(id.pos.rank, rank);
    }
    store
        .commit(
            (0..RANKS)
                .map(|rank| CommitOp::WriteChunk {
                    id: ChunkId::data(partition, rank),
                    bytes: body(rank, 1),
                })
                .collect(),
        )
        .unwrap();
    Harness {
        store: Arc::new(store),
        partition,
        pending: (0..RANKS).map(|_| AtomicU64::new(1)).collect(),
        committed: (0..RANKS).map(|_| AtomicU64::new(1)).collect(),
        done: AtomicBool::new(false),
    }
}

/// One reader: loops over all ranks until the mutator finishes, checking
/// the commit-bound protocol on every successful read. Returns
/// (reads, errors).
fn reader(h: &Harness, seed: u64, faults_allowed: bool) -> (u64, u64) {
    let mut reads = 0u64;
    let mut errors = 0u64;
    let mut rank = seed % RANKS;
    while !h.done.load(Ordering::Acquire) {
        let lo = h.committed[rank as usize].load(Ordering::SeqCst);
        match h.store.read(ChunkId::data(h.partition, rank)) {
            Ok(got) => {
                let hi = h.pending[rank as usize].load(Ordering::SeqCst);
                let v = decode(rank, &got);
                assert!(
                    lo <= v && v <= hi,
                    "rank {rank}: read version {v} outside committed bounds [{lo}, {hi}]"
                );
                reads += 1;
            }
            Err(e) => {
                assert!(faults_allowed, "read failed with no faults injected: {e}");
                errors += 1;
            }
        }
        rank = (rank + 1) % RANKS;
    }
    (reads, errors)
}

/// The mutator: `iters` rounds of multi-chunk commits with occasional
/// checkpoints and cleans. Under faults, failed mutations are tolerated
/// (the pending counter stays as the upper bound — a failed commit may
/// still have durably applied) and healing is attempted.
fn mutator(h: &Harness, iters: u64, faults_allowed: bool) {
    for i in 0..iters {
        // A batch of 2-3 chunks wide enough to engage the pipeline.
        let width = 2 + (i % 2) as usize;
        let mut ops = Vec::with_capacity(width);
        let mut versions = Vec::with_capacity(width);
        for k in 0..width as u64 {
            let rank = (i + k * 3) % RANKS;
            let v = h.pending[rank as usize].fetch_add(1, Ordering::SeqCst) + 1;
            versions.push((rank, v));
            ops.push(CommitOp::WriteChunk {
                id: ChunkId::data(h.partition, rank),
                bytes: body(rank, v),
            });
        }
        match h.store.commit(ops) {
            Ok(()) => {
                for (rank, v) in versions {
                    h.committed[rank as usize].fetch_max(v, Ordering::SeqCst);
                }
            }
            Err(e) => {
                assert!(faults_allowed, "commit failed with no faults injected: {e}");
                // The commit may or may not have applied durably; the
                // pending bump already covers the "applied" case. Try to
                // get back to live for the next round.
                let _ = h.store.try_heal();
            }
        }
        if i % 16 == 9 {
            let r = h.store.checkpoint();
            assert!(faults_allowed || r.is_ok(), "checkpoint failed: {r:?}");
        }
        if i % 32 == 21 {
            let r = h.store.clean(2);
            assert!(faults_allowed || r.is_ok(), "clean failed: {r:?}");
        }
    }
    h.done.store(true, Ordering::Release);
}

fn run_stress(readers: usize, iters: u64, crypto_workers: usize) {
    let untrusted = Arc::new(MemStore::new()) as SharedUntrusted;
    let h = build(untrusted, crypto_workers);
    let total_reads: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..readers)
            .map(|t| {
                let h = &h;
                s.spawn(move || reader(h, t as u64, false))
            })
            .collect();
        mutator(&h, iters, false);
        handles.into_iter().map(|j| j.join().unwrap().0).sum()
    });
    assert!(total_reads > 0, "readers never observed a chunk");
    let stats = h.store.stats();
    // The fast path must actually be exercised (not all falling back).
    assert!(stats.read_fast_hits > 0, "no fast-path hits: {stats:?}");
    if crypto_workers >= 2 {
        assert!(
            stats.parallel_crypto_batches > 0,
            "pipeline never engaged: {stats:?}"
        );
    }
    // Post-run: the final committed state reads back exactly.
    for rank in 0..RANKS {
        let v = h.committed[rank as usize].load(Ordering::SeqCst);
        let hi = h.pending[rank as usize].load(Ordering::SeqCst);
        let got = h.store.read(ChunkId::data(h.partition, rank)).unwrap();
        let got_v = decode(rank, &got);
        assert!(v <= got_v && got_v <= hi);
    }
    h.store.close().unwrap();
}

fn run_faulted(readers: usize, iters: u64, seed: u64) {
    let mem = Arc::new(MemStore::new());
    let pf = Arc::new(PlannedFaultStore::new(
        Arc::clone(&mem) as Arc<dyn UntrustedStore>,
        FaultPlan::new(),
    ));
    let h = build(Arc::clone(&pf) as SharedUntrusted, 4);
    // Arm the plan only after setup so the store starts consistent; the
    // horizon covers the whole concurrent phase.
    pf.set_plan(FaultPlan::seeded(seed, 4000, 24));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..readers)
            .map(|t| {
                let h = &h;
                s.spawn(move || reader(h, t as u64, true))
            })
            .collect();
        mutator(&h, iters, true);
        for j in handles {
            j.join().unwrap();
        }
    });
    // Disarm and heal; unless the store poisoned (only integrity faults
    // do that, and the plan injects none), it must serve committed state.
    pf.set_plan(FaultPlan::new());
    let _ = h.store.try_heal();
    h.store.drop_read_cache();
    for rank in 0..RANKS {
        let lo = h.committed[rank as usize].load(Ordering::SeqCst);
        let hi = h.pending[rank as usize].load(Ordering::SeqCst);
        let got = h.store.read(ChunkId::data(h.partition, rank)).unwrap();
        let v = decode(rank, &got);
        assert!(
            lo <= v && v <= hi,
            "rank {rank}: post-fault version {v} outside [{lo}, {hi}]"
        );
    }
}

// -- Fault-free stress at 1/2/4/8 readers ----------------------------------

#[test]
fn stress_one_reader_sequential_crypto() {
    run_stress(1, 160, 1);
}

#[test]
fn stress_two_readers() {
    run_stress(2, 160, 4);
}

#[test]
fn stress_four_readers() {
    run_stress(4, 160, 4);
}

#[test]
fn stress_eight_readers() {
    run_stress(8, 160, 4);
}

// -- Seeded transient faults under concurrency -----------------------------

#[test]
fn faulted_stress_two_readers() {
    run_faulted(2, 120, 0xC0FFEE);
}

#[test]
fn faulted_stress_four_readers() {
    run_faulted(4, 120, 0xDECAF);
}

#[test]
fn faulted_stress_eight_readers() {
    run_faulted(8, 120, 0xBADC0DE);
}

// -- Torture variants for the CI --include-ignored pass --------------------

#[test]
#[ignore = "torture: long fault-free stress"]
fn torture_stress() {
    for readers in [2, 4, 8] {
        run_stress(readers, 1200, 4);
    }
}

#[test]
#[ignore = "torture: seeded fault sweep"]
fn torture_faulted_sweep() {
    for seed in 0..8u64 {
        run_faulted(4, 300, 0x5EED_0000 + seed);
    }
}
