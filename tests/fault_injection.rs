//! Transient-fault torture: injected read/write/flush faults across
//! commit, checkpoint, and cleaning cycles.
//!
//! The properties under test (ISSUE: transient-fault tolerance):
//!
//! - A storage failure *before* any durable log append rolls the mutation
//!   back and leaves the store live.
//! - A failure *after* bytes reached the log degrades the store to
//!   read-only: acknowledged state is still served, mutations are rejected
//!   with [`CoreError::DegradedMode`], and [`ChunkStore::try_heal`]
//!   restores a live store without a full reopen.
//! - Only integrity violations hard-poison; plain I/O faults never do.
//! - Recovery from any faulted image yields a prefix of the committed
//!   history: acknowledged commits survive, torn state is never served.
//! - A commit whose trusted-counter update failed is never acknowledged
//!   (§4.6), though recovery may adopt it (§4.8.2.2).

use std::sync::Arc;

use tdb::{
    ChunkId, ChunkStore, ChunkStoreConfig, CommitOp, CryptoParams, PartitionId, StoreHealth,
    TrustedBackend, ValidationMode,
};
use tdb_core::metrics::{self, counters};
use tdb_core::CoreError;
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, ErrorStore, FaultKind, FaultPlan, FaultyTrustedStore, IoPolicy, MemStore,
    MemTrustedStore, PlannedFaultStore, RetryStore, SharedUntrusted, TrustedStore, UntrustedStore,
};

fn small_config(validation: ValidationMode) -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 4096,
        checkpoint_threshold: 6, // Frequent auto-checkpoints: exercise them.
        validation,
        ..ChunkStoreConfig::default()
    }
}

fn counter_mode() -> ValidationMode {
    ValidationMode::Counter {
        delta_ut: 5,
        delta_tu: 0,
    }
}

// ---------------------------------------------------------------------------
// ErrorStore rig: unplanned "device starts failing" scenarios.
// ---------------------------------------------------------------------------

struct Rig {
    secret: SecretKey,
    register: Arc<MemTrustedStore>,
    injector: Arc<ErrorStore>,
}

fn rig() -> (Rig, ChunkStore) {
    let secret = SecretKey::random(24);
    let register = Arc::new(MemTrustedStore::new(64));
    let injector = Arc::new(ErrorStore::new(Arc::new(MemStore::new())));
    let store = ChunkStore::create(
        Arc::clone(&injector) as SharedUntrusted,
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&register) as Arc<dyn TrustedStore>
        ))),
        secret.clone(),
        small_config(counter_mode()),
    )
    .unwrap();
    (
        Rig {
            secret,
            register,
            injector,
        },
        store,
    )
}

impl Rig {
    fn reopen(&self) -> tdb_core::Result<ChunkStore> {
        ChunkStore::open(
            Arc::clone(&self.injector) as SharedUntrusted,
            TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
                Arc::clone(&self.register) as Arc<dyn TrustedStore>,
            ))),
            self.secret.clone(),
            small_config(counter_mode()),
        )
    }
}

fn setup_partition(store: &ChunkStore) -> PartitionId {
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    p
}

#[test]
fn mid_commit_write_failure_degrades_not_poisons() {
    let (rig, store) = rig();
    let p = setup_partition(&store);
    let good = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: good,
            bytes: b"committed before the fault".to_vec(),
        }])
        .unwrap();

    let mut degraded_seen = false;
    let mut live_rollback_seen = false;
    // Fail on every possible write index inside a commit; after each
    // iteration the store must be fully live again *without a reopen*.
    for fail_at in 0..8u64 {
        rig.injector.fail_after_writes(fail_at);
        let victim = store.allocate_chunk(p).unwrap();
        let result = store.commit(vec![CommitOp::WriteChunk {
            id: victim,
            bytes: vec![0xEE; 700],
        }]);
        if result.is_ok() {
            // The commit squeaked through before the failure point.
            rig.injector.heal();
            assert_eq!(store.read(victim).unwrap(), vec![0xEE; 700]);
            continue;
        }
        assert!(
            !store.health().is_poisoned(),
            "fail_at {fail_at}: a plain I/O fault must never poison"
        );
        // Acknowledged state is served even before the device heals: the
        // injector only fails writes, and the store is at worst read-only.
        assert_eq!(store.read(good).unwrap(), b"committed before the fault");
        match store.health() {
            StoreHealth::Live => {
                // Nothing durable was written: clean rollback. The store
                // accepts the same commit once the device heals.
                live_rollback_seen = true;
                rig.injector.heal();
            }
            StoreHealth::Degraded { .. } => {
                degraded_seen = true;
                // Mutations are rejected with the dedicated error.
                let err = store
                    .commit(vec![CommitOp::DeallocChunk { id: good }])
                    .unwrap_err();
                assert!(
                    matches!(err, CoreError::DegradedMode(_)),
                    "fail_at {fail_at}: expected DegradedMode, got {err}"
                );
                // Healing needs a working device.
                assert!(store.try_heal().is_err());
                assert!(store.health().is_degraded());
                rig.injector.heal();
                store
                    .try_heal()
                    .unwrap_or_else(|e| panic!("fail_at {fail_at}: heal on a working device: {e}"));
            }
            StoreHealth::Poisoned { .. } => unreachable!(),
        }
        assert!(store.health().is_live());
        // Fully usable again, in place.
        store
            .commit(vec![CommitOp::WriteChunk {
                id: victim,
                bytes: vec![0xEE; 700],
            }])
            .unwrap();
        assert_eq!(store.read(victim).unwrap(), vec![0xEE; 700]);
        assert_eq!(store.read(good).unwrap(), b"committed before the fault");
    }
    assert!(degraded_seen, "the sweep never produced a degraded store");
    assert!(
        live_rollback_seen,
        "the sweep never produced a pre-durability rollback"
    );

    let stats = store.stats();
    assert!(stats.degraded_entries >= 1);
    assert!(stats.heals >= 1);
    assert_eq!(stats.poison_events, 0);

    // And the on-disk image stayed recoverable throughout.
    let reopened = rig.reopen().expect("recovery after the sweep");
    assert_eq!(reopened.read(good).unwrap(), b"committed before the fault");
}

#[test]
fn read_failure_leaves_store_live() {
    let (rig, store) = rig();
    let p = setup_partition(&store);
    let good = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: good,
            bytes: b"readable".to_vec(),
        }])
        .unwrap();

    rig.injector.fail_after_reads(0);
    assert!(store.read(good).is_err(), "injected read fault surfaces");
    // A failed read mutates nothing: the store is still live, not even
    // degraded.
    assert!(store.health().is_live());
    assert_eq!(store.stats().degraded_entries, 0);

    rig.injector.heal();
    assert_eq!(store.read(good).unwrap(), b"readable");
    let c = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"after the read fault".to_vec(),
        }])
        .unwrap();
}

#[test]
fn commit_with_read_faults_never_poisons() {
    let (rig, store) = rig();
    let p = setup_partition(&store);
    let good = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: good,
            bytes: b"baseline".to_vec(),
        }])
        .unwrap();

    for fail_at in 0..6u64 {
        rig.injector.fail_after_reads(fail_at);
        let victim = store.allocate_chunk(p).unwrap();
        let _ = store.commit(vec![CommitOp::WriteChunk {
            id: victim,
            bytes: vec![0x44; 400],
        }]);
        rig.injector.heal();
        assert!(!store.health().is_poisoned(), "fail_at {fail_at}");
        if store.health().is_degraded() {
            store.try_heal().unwrap();
        }
        assert_eq!(store.read(good).unwrap(), b"baseline");
        // Still writable after the episode.
        store
            .commit(vec![CommitOp::WriteChunk {
                id: victim,
                bytes: vec![0x44; 400],
            }])
            .unwrap();
    }
}

#[test]
fn checkpoint_failure_degrades_reads_still_served() {
    let (rig, store) = rig();
    let p = setup_partition(&store);
    let mut ids = Vec::new();
    for i in 0..10u64 {
        let id = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: vec![i as u8; 300],
            }])
            .unwrap();
        ids.push(id);
    }
    rig.injector.fail_after_writes(2);
    let result = store.checkpoint();
    assert!(
        result.is_err(),
        "the armed injector must bite the checkpoint"
    );
    assert!(store.health().is_degraded());

    // The headline behavior: every acknowledged chunk is still served from
    // the degraded store, no reopen required.
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(store.read(*id).unwrap(), vec![i as u8; 300]);
    }
    let err = store
        .commit(vec![CommitOp::DeallocChunk { id: ids[0] }])
        .unwrap_err();
    assert!(matches!(err, CoreError::DegradedMode(_)));

    // Heal in place, then the checkpoint goes through.
    rig.injector.heal();
    store.try_heal().expect("heal on a working device");
    assert!(store.health().is_live());
    store.checkpoint().expect("checkpoint after heal");
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(store.read(*id).unwrap(), vec![i as u8; 300]);
    }

    // The device image also recovers through the normal reopen path.
    let reopened = rig.reopen().expect("recovery");
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(reopened.read(*id).unwrap(), vec![i as u8; 300]);
    }
}

#[test]
fn trusted_store_failure_at_creation() {
    // An 8-byte counter cannot fit in a 2-byte register: creation must
    // fail cleanly rather than produce a store that cannot validate.
    let secret = SecretKey::random(24);
    let register = Arc::new(MemTrustedStore::new(2)); // Too small: writes fail!
    let untrusted = Arc::new(MemStore::new());
    let result = ChunkStore::create(
        Arc::clone(&untrusted) as SharedUntrusted,
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&register) as Arc<dyn TrustedStore>
        ))),
        secret,
        ChunkStoreConfig::default(),
    );
    assert!(result.is_err());
}

// ---------------------------------------------------------------------------
// FaultyTrustedStore: counter-update failures mid-commit (§4.6, §4.8.2.2).
// ---------------------------------------------------------------------------

struct CounterRig {
    mem: Arc<MemStore>,
    faulty_trusted: Arc<FaultyTrustedStore>,
    secret: SecretKey,
    config: ChunkStoreConfig,
}

impl CounterRig {
    fn backend(&self) -> TrustedBackend {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&self.faulty_trusted) as Arc<dyn TrustedStore>,
        )))
    }
}

/// A store whose trusted counter is about to fail: Δut = 0 forces a counter
/// flush on every commit. Returns the rig, the store, a partition, and a
/// baseline chunk committed while everything was healthy.
fn counter_rig() -> (CounterRig, ChunkStore, PartitionId, ChunkId) {
    let rig = CounterRig {
        mem: Arc::new(MemStore::new()),
        faulty_trusted: Arc::new(FaultyTrustedStore::new(
            Arc::new(MemTrustedStore::new(64)) as Arc<dyn TrustedStore>
        )),
        secret: SecretKey::random(24),
        config: ChunkStoreConfig {
            fanout: 4,
            segment_size: 4096,
            checkpoint_threshold: 100, // No auto-checkpoints in this rig.
            validation: ValidationMode::Counter {
                delta_ut: 0,
                delta_tu: 0,
            },
            ..ChunkStoreConfig::default()
        },
    };
    let store = ChunkStore::create(
        Arc::clone(&rig.mem) as SharedUntrusted,
        rig.backend(),
        rig.secret.clone(),
        rig.config.clone(),
    )
    .unwrap();
    let p = setup_partition(&store);
    let baseline = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: baseline,
            bytes: b"pre-fault baseline".to_vec(),
        }])
        .unwrap();
    (rig, store, p, baseline)
}

#[test]
fn counter_write_failure_never_acknowledges_commit_heal_drops() {
    let (rig, store, p, baseline) = counter_rig();
    rig.faulty_trusted.fail_after_writes(0);
    let victim = store.allocate_chunk(p).unwrap();
    let result = store.commit(vec![CommitOp::WriteChunk {
        id: victim,
        bytes: vec![0xC0; 500],
    }]);
    // The §4.6 property: the engine must never acknowledge a commit whose
    // counter bump failed.
    assert!(result.is_err(), "unflushed counter means unacknowledged");
    assert!(
        rig.faulty_trusted.failures() >= 1,
        "the fault actually fired"
    );
    assert!(store.health().is_degraded());
    assert_eq!(store.stats().degraded_entries, 1);
    assert_eq!(store.read(baseline).unwrap(), b"pre-fault baseline");
    assert!(matches!(
        store
            .commit(vec![CommitOp::DeallocChunk { id: baseline }])
            .unwrap_err(),
        CoreError::DegradedMode(_)
    ));

    // In-place heal: the counter never counted the torn commit, so the
    // scrub's drop resolution is sound. The store goes live at the
    // pre-commit state and the same commit succeeds on retry.
    rig.faulty_trusted.heal();
    store
        .try_heal()
        .expect("heal after the trusted store recovers");
    assert!(store.health().is_live());
    store
        .commit(vec![CommitOp::WriteChunk {
            id: victim,
            bytes: vec![0xC0; 500],
        }])
        .unwrap();
    assert_eq!(store.read(victim).unwrap(), vec![0xC0; 500]);
    assert_eq!(store.read(baseline).unwrap(), b"pre-fault baseline");
}

#[test]
fn counter_write_failure_reopen_adopts_durable_commit() {
    let (rig, store, p, baseline) = counter_rig();
    rig.faulty_trusted.fail_after_writes(0);
    let victim = store.allocate_chunk(p).unwrap();
    let result = store.commit(vec![CommitOp::WriteChunk {
        id: victim,
        bytes: vec![0xC1; 500],
    }]);
    assert!(result.is_err());
    assert!(store.health().is_degraded());
    drop(store);

    // The commit set and its signed commit chunk are durable in the log;
    // only the counter flush was lost. Recovery's (Δut, Δtu) window covers
    // exactly this crash, so the reopen adopts the commit — sound, because
    // it was durable; just never acknowledged.
    rig.faulty_trusted.heal();
    let reopened = ChunkStore::open(
        Arc::clone(&rig.mem) as SharedUntrusted,
        rig.backend(),
        rig.secret.clone(),
        rig.config.clone(),
    )
    .expect("recovery adopts the durable commit");
    assert_eq!(reopened.read(baseline).unwrap(), b"pre-fault baseline");
    assert_eq!(reopened.read(victim).unwrap(), vec![0xC1; 500]);
    // And the adopted state is fully writable.
    let c = reopened.allocate_chunk(p).unwrap();
    reopened
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"post-recovery".to_vec(),
        }])
        .unwrap();
}

// ---------------------------------------------------------------------------
// Metrics and stats wiring.
// ---------------------------------------------------------------------------

#[test]
fn fault_counters_zero_on_clean_path() {
    let (_rig, store) = rig();
    let p = setup_partition(&store);
    for i in 0..8u64 {
        let c = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: vec![i as u8; 200],
            }])
            .unwrap();
    }
    store.checkpoint().unwrap();
    let stats = store.stats();
    assert_eq!(stats.degraded_entries, 0);
    assert_eq!(stats.poison_events, 0);
    assert_eq!(stats.heal_attempts, 0);
    assert_eq!(stats.heals, 0);
}

#[test]
fn fault_counters_count_degrade_heal_and_recovery() {
    let (rig, store) = rig();
    let p = setup_partition(&store);
    let c = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"x".to_vec(),
        }])
        .unwrap();
    rig.injector.fail_after_writes(1);
    assert!(store.checkpoint().is_err());
    assert!(store.health().is_degraded());
    rig.injector.heal();
    store.try_heal().unwrap();

    let stats = store.stats();
    assert_eq!(stats.degraded_entries, 1);
    assert!(stats.heal_attempts >= 1);
    assert_eq!(stats.heals, 1);
    assert_eq!(stats.poison_events, 0);

    let _ = rig.reopen().unwrap();

    // The global metrics counters aggregate across all stores in the
    // process (other tests run concurrently), so assert loosely: each
    // event we just caused is visible.
    let snap = metrics::snapshot();
    assert!(snap.counter(counters::DEGRADED_ENTRIES) >= 1);
    assert!(snap.counter(counters::HEAL_ATTEMPTS) >= 1);
    assert!(snap.counter(counters::HEALS) >= 1);
    assert!(snap.counter(counters::RECOVERY_ATTEMPTS) >= 1);
}

// ---------------------------------------------------------------------------
// RetryStore: transient windows hidden by the retry policy.
// ---------------------------------------------------------------------------

#[test]
fn transient_window_hidden_by_retries() {
    let mem = Arc::new(MemStore::new());
    let pf = Arc::new(PlannedFaultStore::new(
        Arc::clone(&mem) as SharedUntrusted,
        FaultPlan::new(),
    ));
    let retry = Arc::new(
        RetryStore::new(
            Arc::clone(&pf) as SharedUntrusted,
            IoPolicy::retries(3), // Deterministic: NoDelay clock by default.
        )
        .with_observer(metrics::retry_observer()),
    );
    let register = Arc::new(MemTrustedStore::new(64));
    let store = ChunkStore::create(
        Arc::clone(&retry) as SharedUntrusted,
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&register) as Arc<dyn TrustedStore>
        ))),
        SecretKey::random(24),
        small_config(counter_mode()),
    )
    .unwrap();
    let p = setup_partition(&store);

    // A transient window two ops wide, a few ops ahead: the retry budget
    // (3) outlasts it, so the engine never sees the fault.
    let start = pf.total_ops() + 5;
    pf.set_plan(FaultPlan::new().transient_window(start, 2));
    let mut ids = Vec::new();
    for i in 0..6u64 {
        let c = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: vec![i as u8; 250],
            }])
            .unwrap_or_else(|e| panic!("retries must hide the window: {e}"));
        ids.push(c);
    }
    assert!(store.health().is_live());
    assert_eq!(store.stats().degraded_entries, 0);
    assert!(pf.injected_faults() >= 2, "the window actually fired");
    // The retry loop recorded its work in the store stats and the global
    // metrics counter (via the observer).
    assert!(retry.stats().snapshot().retries >= 2);
    assert!(metrics::snapshot().counter(counters::RETRIES) >= 2);
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(store.read(*id).unwrap(), vec![i as u8; 250]);
    }
}

#[test]
fn transient_window_wider_than_retry_budget_degrades_then_heals() {
    let mem = Arc::new(MemStore::new());
    let pf = Arc::new(PlannedFaultStore::new(
        Arc::clone(&mem) as SharedUntrusted,
        FaultPlan::new(),
    ));
    let retry = Arc::new(RetryStore::new(
        Arc::clone(&pf) as SharedUntrusted,
        IoPolicy::retries(2),
    ));
    let register = Arc::new(MemTrustedStore::new(64));
    let store = ChunkStore::create(
        Arc::clone(&retry) as SharedUntrusted,
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&register) as Arc<dyn TrustedStore>
        ))),
        SecretKey::random(24),
        small_config(counter_mode()),
    )
    .unwrap();
    let p = setup_partition(&store);
    let good = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: good,
            bytes: b"stable".to_vec(),
        }])
        .unwrap();

    // A window far wider than the retry budget: the fault surfaces.
    let start = pf.total_ops();
    pf.set_plan(FaultPlan::new().transient_window(start, 50));
    let victim = store.allocate_chunk(p).unwrap();
    let result = store.commit(vec![CommitOp::WriteChunk {
        id: victim,
        bytes: vec![0x55; 300],
    }]);
    assert!(result.is_err());
    assert!(!store.health().is_poisoned());

    // Window exhausted (the failed attempt burned through it) or cleared:
    // heal and carry on.
    pf.set_plan(FaultPlan::new());
    if store.health().is_degraded() {
        store.try_heal().unwrap();
    }
    assert!(store.health().is_live());
    store
        .commit(vec![CommitOp::WriteChunk {
            id: victim,
            bytes: vec![0x55; 300],
        }])
        .unwrap();
    assert_eq!(store.read(good).unwrap(), b"stable");
    assert_eq!(store.read(victim).unwrap(), vec![0x55; 300]);
}

// ---------------------------------------------------------------------------
// Crash-point torture: seeded FaultPlan sweeps over a scripted workload.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Step {
    /// Allocate a fresh chunk and commit `tag`-patterned content.
    Write(u8),
    /// Overwrite the `i`-th acknowledged chunk.
    Over(usize, u8),
    Checkpoint,
    Clean,
}

/// A deterministic workload mixing commits, overwrites, explicit
/// checkpoints, and cleaning (auto-checkpoints fire too: threshold 6).
fn script() -> Vec<Step> {
    let mut v = Vec::new();
    for i in 1..=6u8 {
        v.push(Step::Write(i));
    }
    v.push(Step::Checkpoint);
    for i in 7..=10u8 {
        v.push(Step::Write(i));
    }
    v.push(Step::Over(2, 0xA1));
    v.push(Step::Clean);
    for i in 11..=12u8 {
        v.push(Step::Write(i));
    }
    v.push(Step::Over(0, 0xB2));
    v.push(Step::Checkpoint);
    v
}

fn content(tag: u8) -> Vec<u8> {
    vec![tag; 80 + (tag as usize % 5) * 60]
}

/// Runs the script, recording acknowledged `(chunk, bytes)` pairs. Stops at
/// the first failure, returning the write the failing step attempted (if it
/// was a content-changing step) and the error.
#[allow(clippy::type_complexity)]
fn run_script(
    store: &ChunkStore,
    p: PartitionId,
    acked: &mut Vec<(ChunkId, Vec<u8>)>,
) -> (Option<(ChunkId, Vec<u8>)>, tdb_core::Result<()>) {
    for step in script() {
        match step {
            Step::Write(tag) => {
                let c = match store.allocate_chunk(p) {
                    Ok(c) => c,
                    Err(e) => return (None, Err(e)),
                };
                let bytes = content(tag);
                if let Err(e) = store.commit(vec![CommitOp::WriteChunk {
                    id: c,
                    bytes: bytes.clone(),
                }]) {
                    return (Some((c, bytes)), Err(e));
                }
                acked.push((c, bytes));
            }
            Step::Over(i, tag) => {
                if i >= acked.len() {
                    continue;
                }
                let c = acked[i].0;
                let bytes = content(tag);
                if let Err(e) = store.commit(vec![CommitOp::WriteChunk {
                    id: c,
                    bytes: bytes.clone(),
                }]) {
                    return (Some((c, bytes)), Err(e));
                }
                acked[i].1 = bytes;
            }
            Step::Checkpoint => {
                if let Err(e) = store.checkpoint() {
                    return (None, Err(e));
                }
            }
            Step::Clean => {
                if let Err(e) = store.clean(2) {
                    return (None, Err(e));
                }
            }
        }
    }
    (None, Ok(()))
}

struct TortureRig {
    mem: Arc<MemStore>,
    register: Arc<MemTrustedStore>,
    pf: Arc<PlannedFaultStore>,
    secret: SecretKey,
    config: ChunkStoreConfig,
}

impl TortureRig {
    fn backend(&self) -> TrustedBackend {
        match self.config.validation {
            ValidationMode::Counter { .. } => TrustedBackend::Counter(Arc::new(
                CounterOverTrusted::new(Arc::clone(&self.register) as Arc<dyn TrustedStore>),
            )),
            ValidationMode::DirectHash => {
                TrustedBackend::Register(Arc::clone(&self.register) as Arc<dyn TrustedStore>)
            }
        }
    }
}

fn torture_rig(validation: ValidationMode) -> (TortureRig, ChunkStore, PartitionId) {
    let rig = TortureRig {
        mem: Arc::new(MemStore::new()),
        register: Arc::new(MemTrustedStore::new(64)),
        pf: Arc::new(PlannedFaultStore::new(
            Arc::new(MemStore::new()) as SharedUntrusted,
            FaultPlan::new(),
        )),
        secret: SecretKey::random(24),
        config: small_config(validation),
    };
    // Rebuild the planned store over the rig's shared MemStore so the test
    // can reopen from the raw image later.
    let pf = Arc::new(PlannedFaultStore::new(
        Arc::clone(&rig.mem) as SharedUntrusted,
        FaultPlan::new(),
    ));
    let rig = TortureRig { pf, ..rig };
    let store = ChunkStore::create(
        Arc::clone(&rig.pf) as SharedUntrusted,
        rig.backend(),
        rig.secret.clone(),
        rig.config.clone(),
    )
    .unwrap();
    let p = setup_partition(&store);
    (rig, store, p)
}

/// Verifies a recovered (or healed) store against the model: every
/// acknowledged chunk has its acknowledged content; the chunk of the
/// interrupted step (if any) holds either its pre-fault content, the
/// attempted content, or — for a brand-new chunk — is absent. Torn state
/// is never served.
fn verify_model(
    store: &ChunkStore,
    acked: &[(ChunkId, Vec<u8>)],
    attempted: &Option<(ChunkId, Vec<u8>)>,
    ctx: &str,
) {
    for (c, bytes) in acked {
        if attempted.as_ref().is_some_and(|(a, _)| a == c) {
            continue;
        }
        let got = store
            .read(*c)
            .unwrap_or_else(|e| panic!("{ctx}: acknowledged chunk lost: {e}"));
        assert_eq!(&got, bytes, "{ctx}: acknowledged content changed");
    }
    if let Some((c, bytes)) = attempted {
        let old = acked.iter().find(|(a, _)| a == c).map(|(_, b)| b);
        match store.read(*c) {
            // Adopted (the interrupted commit was durable) or rolled back:
            // both are consistent states; a torn mixture is neither.
            Ok(got) => assert!(
                Some(&got) == old || &got == bytes,
                "{ctx}: interrupted chunk serves torn state"
            ),
            Err(_) => assert!(
                old.is_none(),
                "{ctx}: previously acknowledged chunk lost to the fault"
            ),
        }
    }
}

/// The crash-point sweep: arm exactly one fault at every `stride`-th write
/// index of the scripted workload (kind seeded), then assert the degraded
/// store serves acknowledged state, heals in place when the protocol
/// allows, and that recovery from the faulted image is a prefix of the
/// committed history.
fn write_fault_sweep(validation: ValidationMode, seeds: &[u64], stride: usize) {
    // Dry run: count the workload's writes.
    let (dry, store, p) = torture_rig(validation);
    let base = dry.pf.write_ops();
    let mut acked = Vec::new();
    let (att, res) = run_script(&store, p, &mut acked);
    res.expect("dry run is fault-free");
    assert!(att.is_none());
    let total_writes = dry.pf.write_ops() - base;
    assert!(total_writes > 20, "workload too small to be interesting");
    drop(store);

    for &seed in seeds {
        let mut bit = 0u64;
        for i in (0..total_writes).step_by(stride) {
            let (rig, store, p) = torture_rig(validation);
            let base = rig.pf.write_ops();
            let kind = match (i + seed) % 2 {
                0 => FaultKind::WriteError,
                _ => FaultKind::TornWrite {
                    keep: ((i * 7 + seed * 13) % 96) as u32,
                },
            };
            rig.pf.set_plan(FaultPlan::new().at(base + i, kind));
            let mut acked = Vec::new();
            let (attempted, result) = run_script(&store, p, &mut acked);
            let ctx = format!("seed {seed}, write index {i}");
            assert!(
                !store.health().is_poisoned(),
                "{ctx}: plain I/O fault poisoned the store"
            );
            if result.is_ok() {
                continue; // Scheduled past the last write the script made.
            }
            bit += 1;

            // Degraded (or rolled-back) store still serves the model.
            verify_model(&store, &acked, &attempted, &ctx);

            // Heal in place when the validation protocol allows it. When
            // the trusted counter already counted the interrupted commit,
            // try_heal refuses and the reopen below must adopt instead.
            rig.pf.set_plan(FaultPlan::new());
            if store.try_heal().is_ok() {
                assert!(store.health().is_live());
                verify_model(&store, &acked, &attempted, &format!("{ctx} (healed)"));
                let c = store.allocate_chunk(p).unwrap();
                let bytes = b"post-heal".to_vec();
                store
                    .commit(vec![CommitOp::WriteChunk {
                        id: c,
                        bytes: bytes.clone(),
                    }])
                    .unwrap_or_else(|e| panic!("{ctx}: healed store rejects commits: {e}"));
                acked.push((c, bytes));
            }
            drop(store);

            // Recovery from the faulted image: a prefix of committed
            // history, fully usable afterwards.
            let reopened = ChunkStore::open(
                Arc::new(MemStore::from_bytes(rig.mem.image())) as SharedUntrusted,
                rig.backend(),
                rig.secret.clone(),
                rig.config.clone(),
            )
            .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
            verify_model(&reopened, &acked, &attempted, &format!("{ctx} (reopened)"));
            let c = reopened.allocate_chunk(p).unwrap();
            reopened
                .commit(vec![CommitOp::WriteChunk {
                    id: c,
                    bytes: b"post-recovery".to_vec(),
                }])
                .unwrap_or_else(|e| panic!("{ctx}: recovered store rejects commits: {e}"));
        }
        assert!(bit > 0, "seed {seed}: no fault in the sweep ever fired");
    }
}

#[test]
fn write_fault_sweep_counter_mode() {
    write_fault_sweep(counter_mode(), &[1], 3);
}

#[test]
fn write_fault_sweep_direct_mode() {
    write_fault_sweep(ValidationMode::DirectHash, &[2], 5);
}

#[test]
#[ignore = "exhaustive fault sweep; run in the CI fault-torture step"]
fn write_fault_sweep_counter_mode_exhaustive() {
    write_fault_sweep(counter_mode(), &[1, 2, 3], 1);
}

#[test]
#[ignore = "exhaustive fault sweep; run in the CI fault-torture step"]
fn write_fault_sweep_direct_mode_exhaustive() {
    write_fault_sweep(ValidationMode::DirectHash, &[1, 2, 3], 1);
}

/// Seeded pseudo-random plans (mixed read/write/torn/transient faults):
/// whatever fires, the store never poisons, never serves torn state, and
/// the image always recovers to the acknowledged model.
fn seeded_plan_torture(seeds: &[u64]) {
    for &seed in seeds {
        let (rig, store, p) = torture_rig(counter_mode());
        let horizon = rig.pf.total_ops() + 250;
        rig.pf.set_plan(FaultPlan::seeded(seed, horizon, 6));
        let mut acked = Vec::new();
        let (attempted, _result) = run_script(&store, p, &mut acked);
        let ctx = format!("seeded plan {seed}");
        assert!(!store.health().is_poisoned(), "{ctx}: poisoned");

        rig.pf.set_plan(FaultPlan::new());
        if store.try_heal().is_ok() {
            verify_model(&store, &acked, &attempted, &format!("{ctx} (healed)"));
        }
        drop(store);
        let reopened = ChunkStore::open(
            Arc::new(MemStore::from_bytes(rig.mem.image())) as SharedUntrusted,
            rig.backend(),
            rig.secret.clone(),
            rig.config.clone(),
        )
        .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
        verify_model(&reopened, &acked, &attempted, &format!("{ctx} (reopened)"));
    }
}

#[test]
fn seeded_plan_torture_three_seeds() {
    seeded_plan_torture(&[1, 2, 3]);
}

#[test]
#[ignore = "exhaustive fault sweep; run in the CI fault-torture step"]
fn seeded_plan_torture_many_seeds() {
    seeded_plan_torture(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
}
