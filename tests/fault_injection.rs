//! Transient-fault injection: an untrusted store that starts failing with
//! I/O errors mid-commit. The engine must fail closed (poisoned, no torn
//! state served) and recover completely once the device heals.

use std::sync::Arc;

use tdb::{ChunkStore, ChunkStoreConfig, CommitOp, CryptoParams, TrustedBackend};
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, ErrorStore, MemStore, MemTrustedStore, SharedUntrusted, TrustedStore,
};

struct Rig {
    secret: SecretKey,
    register: Arc<MemTrustedStore>,
    injector: Arc<ErrorStore>,
}

fn rig() -> (Rig, ChunkStore) {
    let secret = SecretKey::random(24);
    let register = Arc::new(MemTrustedStore::new(64));
    let injector = Arc::new(ErrorStore::new(Arc::new(MemStore::new())));
    let store = ChunkStore::create(
        Arc::clone(&injector) as SharedUntrusted,
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&register) as Arc<dyn TrustedStore>
        ))),
        secret.clone(),
        ChunkStoreConfig::default(),
    )
    .unwrap();
    (
        Rig {
            secret,
            register,
            injector,
        },
        store,
    )
}

impl Rig {
    fn reopen(&self) -> tdb_core::Result<ChunkStore> {
        ChunkStore::open(
            Arc::clone(&self.injector) as SharedUntrusted,
            TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
                Arc::clone(&self.register) as Arc<dyn TrustedStore>,
            ))),
            self.secret.clone(),
            ChunkStoreConfig::default(),
        )
    }
}

#[test]
fn mid_commit_write_failure_poisons_then_recovers() {
    let (rig, store) = rig();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    let good = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: good,
            bytes: b"committed before the fault".to_vec(),
        }])
        .unwrap();

    // Fail on every possible write index inside the next commit.
    for fail_at in 0..6u64 {
        rig.injector.fail_after_writes(fail_at);
        let victim = store.allocate_chunk(p).unwrap();
        let result = store.commit(vec![CommitOp::WriteChunk {
            id: victim,
            bytes: vec![0xEE; 700],
        }]);
        rig.injector.heal();
        match result {
            Ok(()) => {
                // The commit squeaked through before the failure point.
                assert_eq!(store.read(victim).unwrap(), vec![0xEE; 700]);
                continue;
            }
            Err(_) => {
                // The engine is poisoned: every further operation fails
                // rather than serving possibly-inconsistent buffered state.
                assert!(store.read(good).is_err());
                assert!(store
                    .commit(vec![CommitOp::DeallocChunk { id: good }])
                    .is_err());
                // Reopen on the healed device: acknowledged state intact,
                // the torn commit absent.
                let store = rig.reopen().expect("recovery after transient fault");
                assert_eq!(store.read(good).unwrap(), b"committed before the fault");
                assert!(store.read(victim).is_err());
                // Fully usable again.
                let c = store.allocate_chunk(p).unwrap();
                store
                    .commit(vec![CommitOp::WriteChunk {
                        id: c,
                        bytes: b"post-recovery".to_vec(),
                    }])
                    .unwrap();
                return;
            }
        }
    }
    panic!("the injector never fired within the tested window");
}

#[test]
fn checkpoint_failure_poisons_then_recovers() {
    let (rig, store) = rig();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    let mut ids = Vec::new();
    for i in 0..10u64 {
        let id = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: vec![i as u8; 300],
            }])
            .unwrap();
        ids.push(id);
    }
    rig.injector.fail_after_writes(2);
    let result = store.checkpoint();
    rig.injector.heal();
    if result.is_err() {
        assert!(
            store.read(ids[0]).is_err(),
            "poisoned after failed checkpoint"
        );
        let store = rig.reopen().expect("recovery");
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(store.read(*id).unwrap(), vec![i as u8; 300]);
        }
        store.checkpoint().expect("checkpoint after heal");
    }
}

#[test]
fn trusted_store_failure_mid_commit() {
    // A failure updating the *trusted* register mid-commit: the commit is
    // unacknowledged; recovery may adopt or drop it (both are sound — the
    // window semantics of §4.8.2.2), but must never corrupt prior state.
    let secret = SecretKey::random(24);
    let register = Arc::new(MemTrustedStore::new(2)); // Too small: writes fail!
    let untrusted = Arc::new(MemStore::new());
    let result = ChunkStore::create(
        Arc::clone(&untrusted) as SharedUntrusted,
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&register) as Arc<dyn TrustedStore>
        ))),
        secret,
        ChunkStoreConfig::default(),
    );
    // An 8-byte counter cannot fit in a 2-byte register: creation must
    // fail cleanly rather than produce a store that cannot validate.
    assert!(result.is_err());
}
