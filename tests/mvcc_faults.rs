//! Fault and crash torture for MVCC transaction commits.
//!
//! The properties under test (ISSUE: transactional durability under MVCC):
//!
//! - An **acknowledged** MVCC commit survives a crash at any later point:
//!   recovery serves every object version the committed transaction wrote.
//! - An **unacknowledged** commit never partially applies: after a fault
//!   mid-commit, the transaction's write set is visible either completely
//!   or not at all — both live (the manager rolled back its versions) and
//!   across recovery (the chunk commit is atomic, though §4.8.2.2 allows
//!   recovery to adopt an unacknowledged-but-durable commit in counter
//!   mode).
//! - Version chains are volatile state: a recovered store starts with
//!   empty chains and fresh snapshots see exactly the durable state.

use std::any::Any;
use std::sync::Arc;

use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend, ValidationMode};
use tdb_core::{CryptoParams, PartitionId};
use tdb_crypto::SecretKey;
use tdb_object::errors::ObjectError;
use tdb_object::pickle::{StoredObject, TypeRegistry};
use tdb_object::{ObjectId, ObjectStore, ObjectStoreConfig};
use tdb_storage::{
    CounterOverTrusted, FaultKind, FaultPlan, MemStore, MemTrustedStore, PlannedFaultStore,
    SharedUntrusted, TrustedStore,
};

#[derive(Debug, PartialEq)]
struct Val(u64);

impl StoredObject for Val {
    fn type_tag(&self) -> u32 {
        7
    }
    fn pickle(&self) -> Vec<u8> {
        self.0.to_le_bytes().to_vec()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    reg.register(7, |body| {
        Ok(Arc::new(Val(u64::from_le_bytes(
            body.try_into()
                .map_err(|_| ObjectError::BadPickle("val".into()))?,
        ))))
    });
    reg
}

fn config() -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 4096,
        checkpoint_threshold: 6, // Frequent checkpoints inside the sweep.
        validation: ValidationMode::Counter {
            delta_ut: 5,
            delta_tu: 0,
        },
        ..ChunkStoreConfig::default()
    }
}

fn objects_over(chunks: Arc<ChunkStore>) -> Arc<ObjectStore> {
    ObjectStore::new(
        chunks,
        registry(),
        ObjectStoreConfig {
            mvcc: true,
            ..ObjectStoreConfig::default()
        },
    )
}

/// One transaction's effect on the model: `(id, before, after)` per
/// object, where `None` means absent.
type TxEffect = Vec<(ObjectId, Option<u64>, Option<u64>)>;

fn read_val(store: &ObjectStore, id: ObjectId) -> Option<u64> {
    let mut tx = store.begin_mvcc().unwrap();
    let out = match tx.get::<Val>(id) {
        Ok(v) => Some(v.0),
        Err(ObjectError::NotFound(_)) => None,
        Err(e) => panic!("unexpected read error on {id}: {e}"),
    };
    tx.abort();
    out
}

/// Checks every acknowledged value, then — if a transaction failed
/// mid-commit — that its write set applied all-or-nothing.
fn verify_model(
    store: &ObjectStore,
    model: &[(ObjectId, Option<u64>)],
    attempted: &Option<TxEffect>,
    ctx: &str,
) {
    let effect: &[_] = attempted.as_deref().unwrap_or(&[]);
    for (id, expected) in model {
        if effect.iter().any(|(eid, _, _)| eid == id) {
            continue; // Judged below, under the all-or-nothing rule.
        }
        assert_eq!(
            read_val(store, *id),
            *expected,
            "{ctx}: acknowledged value of {id} lost"
        );
    }
    if !effect.is_empty() {
        let applied: Vec<bool> = effect
            .iter()
            .map(|(id, before, after)| {
                let got = read_val(store, *id);
                if got == *after {
                    true
                } else if got == *before {
                    false
                } else {
                    panic!("{ctx}: {id} is neither before ({before:?}) nor after ({after:?}) the failed transaction: {got:?}")
                }
            })
            .collect();
        assert!(
            applied.iter().all(|&a| a) || applied.iter().all(|&a| !a),
            "{ctx}: failed transaction partially applied: {applied:?}"
        );
    }
}

struct Rig {
    secret: SecretKey,
    register: Arc<MemTrustedStore>,
    mem: Arc<MemStore>,
    pf: Arc<PlannedFaultStore>,
}

fn rig() -> (Rig, Arc<ChunkStore>, PartitionId) {
    let secret = SecretKey::random(24);
    let register = Arc::new(MemTrustedStore::new(64));
    let mem = Arc::new(MemStore::new());
    let pf = Arc::new(PlannedFaultStore::new(
        Arc::clone(&mem) as SharedUntrusted,
        FaultPlan::new(),
    ));
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::clone(&pf) as SharedUntrusted,
            TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
                Arc::clone(&register) as Arc<dyn TrustedStore>
            ))),
            secret.clone(),
            config(),
        )
        .unwrap(),
    );
    let p = chunks.allocate_partition().unwrap();
    chunks
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    (
        Rig {
            secret,
            register,
            mem,
            pf,
        },
        chunks,
        p,
    )
}

impl Rig {
    fn backend(&self) -> TrustedBackend {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&self.register) as Arc<dyn TrustedStore>,
        )))
    }

    fn reopen_image(&self) -> tdb_core::Result<Arc<ChunkStore>> {
        ChunkStore::open(
            Arc::new(MemStore::from_bytes(self.mem.image())) as SharedUntrusted,
            self.backend(),
            self.secret.clone(),
            config(),
        )
        .map(Arc::new)
    }
}

/// The scripted multi-key transaction workload. Each step commits one
/// MVCC transaction touching 2–3 objects (updates, a periodic create, a
/// periodic delete). Returns the acknowledged model and, if a commit
/// failed, that transaction's intended effect.
fn run_script(
    store: &ObjectStore,
    p: PartitionId,
    model: &mut Vec<(ObjectId, Option<u64>)>,
) -> Option<TxEffect> {
    let set = |model: &mut Vec<(ObjectId, Option<u64>)>, id: ObjectId, v: Option<u64>| {
        if let Some(slot) = model.iter_mut().find(|(i, _)| *i == id) {
            slot.1 = v;
        } else {
            model.push((id, v));
        }
    };
    let get = |model: &[(ObjectId, Option<u64>)], id: ObjectId| {
        model.iter().find(|(i, _)| *i == id).and_then(|(_, v)| *v)
    };

    // Seed two long-lived objects in one transaction.
    {
        let mut tx = match store.begin_mvcc() {
            Ok(tx) => tx,
            Err(_) => return Some(Vec::new()),
        };
        let a = tx.create(p, Arc::new(Val(0))).unwrap();
        let b = tx.create(p, Arc::new(Val(1))).unwrap();
        match tx.commit() {
            Ok(()) => {
                set(model, a, Some(0));
                set(model, b, Some(1));
            }
            Err(_) => {
                return Some(vec![(a, None, Some(0)), (b, None, Some(1))]);
            }
        }
    }
    let a = model[0].0;
    let b = model[1].0;

    for step in 0..30u64 {
        let mut tx = match store.begin_mvcc() {
            Ok(tx) => tx,
            Err(_) => return Some(Vec::new()),
        };
        // Values differ from every pre-image (the seed wrote 0 and 1), so
        // the all-or-nothing check can always tell applied from rolled
        // back.
        let mut effect: TxEffect = vec![
            (a, get(model, a), Some((step + 1) * 10)),
            (b, get(model, b), Some((step + 1) * 10 + 1)),
        ];
        tx.put(a, Arc::new(Val((step + 1) * 10))).unwrap();
        tx.put(b, Arc::new(Val((step + 1) * 10 + 1))).unwrap();
        match step % 3 {
            0 => {
                let c = tx.create(p, Arc::new(Val(step + 500))).unwrap();
                effect.push((c, None, Some(step + 500)));
            }
            1 => {
                // Delete the newest surviving created object, if any.
                if let Some((id, before)) = model
                    .iter()
                    .rev()
                    .find(|(i, v)| *i != a && *i != b && v.is_some())
                    .map(|(i, v)| (*i, *v))
                {
                    tx.delete(id).unwrap();
                    effect.push((id, before, None));
                }
            }
            _ => {}
        }
        match tx.commit() {
            Ok(()) => {
                for (id, _, after) in &effect {
                    set(model, *id, *after);
                }
            }
            Err(_) => return Some(effect),
        }
    }
    None
}

#[test]
fn acked_mvcc_commits_survive_crash_at_every_point() {
    let (rig, chunks, p) = rig();
    let store = objects_over(Arc::clone(&chunks));

    // Capture an image after every acknowledged transaction.
    type Image = (Vec<u8>, Vec<u8>, Vec<(ObjectId, Option<u64>)>);
    let mut images: Vec<Image> = Vec::new();
    let mut model: Vec<(ObjectId, Option<u64>)> = Vec::new();
    {
        let mut tx = store.begin_mvcc().unwrap();
        let a = tx.create(p, Arc::new(Val(0))).unwrap();
        tx.commit().unwrap();
        model.push((a, Some(0)));
        images.push((rig.mem.image(), rig.register.image(), model.clone()));
    }
    let a = model[0].0;
    for step in 1..=12u64 {
        store
            .run_mvcc(|tx| {
                tx.put(a, Arc::new(Val(step)))?;
                let extra = tx.create(p, Arc::new(Val(step + 100)))?;
                Ok(extra)
            })
            .map(|extra| {
                if let Some(slot) = model.iter_mut().find(|(i, _)| *i == a) {
                    slot.1 = Some(step);
                }
                model.push((extra, Some(step + 100)));
            })
            .unwrap();
        images.push((rig.mem.image(), rig.register.image(), model.clone()));
    }
    drop(store);

    for (i, (image, register_image, expected)) in images.iter().enumerate() {
        rig.register.restore(register_image.clone());
        let chunks = ChunkStore::open(
            Arc::new(MemStore::from_bytes(image.clone())) as SharedUntrusted,
            rig.backend(),
            rig.secret.clone(),
            config(),
        )
        .map(Arc::new)
        .unwrap_or_else(|e| panic!("crash point {i}: recovery failed: {e}"));
        let store = objects_over(chunks);
        verify_model(&store, expected, &None, &format!("crash point {i}"));
        // Recovered stores accept new MVCC transactions immediately.
        let id = store
            .run_mvcc(|tx| tx.create(p, Arc::new(Val(9999))))
            .unwrap_or_else(|e| panic!("crash point {i}: post-recovery commit failed: {e}"));
        assert_eq!(read_val(&store, id), Some(9999));
    }
    rig.register.restore(images.last().unwrap().1.clone());
}

/// Arms one write fault at every `stride`-th write index of the scripted
/// workload and checks the acked-survive / unacked-atomic contract, both
/// live and across recovery from the faulted image.
fn commit_fault_sweep(seeds: &[u64], stride: usize) {
    // Dry run to size the sweep.
    let (dry_rig, dry_chunks, dry_p) = rig();
    let dry_store = objects_over(dry_chunks);
    let base = dry_rig.pf.write_ops();
    let mut dry_model = Vec::new();
    assert!(
        run_script(&dry_store, dry_p, &mut dry_model).is_none(),
        "dry run is fault-free"
    );
    let total_writes = dry_rig.pf.write_ops() - base;
    assert!(total_writes > 20, "workload too small to be interesting");
    drop(dry_store);

    for &seed in seeds {
        let mut fired = 0u64;
        for i in (0..total_writes).step_by(stride) {
            let (rig, chunks, p) = rig();
            let store = objects_over(Arc::clone(&chunks));
            let base = rig.pf.write_ops();
            let kind = match (i + seed) % 2 {
                0 => FaultKind::WriteError,
                _ => FaultKind::TornWrite {
                    keep: ((i * 7 + seed * 13) % 96) as u32,
                },
            };
            rig.pf.set_plan(FaultPlan::new().at(base + i, kind));
            let mut model = Vec::new();
            let attempted = run_script(&store, p, &mut model);
            let ctx = format!("seed {seed}, write index {i}");
            assert!(
                !chunks.health().is_poisoned(),
                "{ctx}: plain I/O fault poisoned the store"
            );
            if attempted.is_none() {
                continue; // Fault scheduled past the script's last write.
            }
            fired += 1;

            // Live store: acked state intact, failed txn all-or-nothing
            // (read through fresh snapshots — chains must have rolled back).
            verify_model(&store, &model, &attempted, &ctx);
            drop(store);

            // Recovery from the faulted image upholds the same contract.
            rig.pf.set_plan(FaultPlan::new());
            let reopened = rig
                .reopen_image()
                .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
            let store = objects_over(reopened);
            verify_model(&store, &model, &attempted, &format!("{ctx} (reopened)"));
            let id = store
                .run_mvcc(|tx| tx.create(p, Arc::new(Val(4242))))
                .unwrap_or_else(|e| panic!("{ctx}: post-recovery commit failed: {e}"));
            assert_eq!(read_val(&store, id), Some(4242));
        }
        assert!(fired > 0, "seed {seed}: no fault in the sweep ever fired");
    }
}

#[test]
fn commit_fault_sweep_sampled() {
    commit_fault_sweep(&[1], 5);
}

#[test]
#[ignore = "exhaustive fault sweep; run in the CI mvcc-torture step"]
fn commit_fault_sweep_exhaustive() {
    commit_fault_sweep(&[1, 2, 3], 1);
}

/// Seeded pseudo-random fault plans through the MVCC workload: whatever
/// fires, acknowledged transactions survive recovery and failed ones
/// never split.
fn seeded_mvcc_torture(seeds: &[u64]) {
    for &seed in seeds {
        let (rig, chunks, p) = rig();
        let store = objects_over(Arc::clone(&chunks));
        let horizon = rig.pf.total_ops() + 400;
        rig.pf.set_plan(FaultPlan::seeded(seed, horizon, 6));
        let mut model = Vec::new();
        let attempted = run_script(&store, p, &mut model);
        let ctx = format!("seeded mvcc plan {seed}");
        assert!(!chunks.health().is_poisoned(), "{ctx}: poisoned");
        drop(store);

        rig.pf.set_plan(FaultPlan::new());
        let reopened = rig
            .reopen_image()
            .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
        let store = objects_over(reopened);
        verify_model(&store, &model, &attempted, &format!("{ctx} (reopened)"));
    }
}

#[test]
fn seeded_mvcc_torture_three_seeds() {
    seeded_mvcc_torture(&[1, 2, 3]);
}

#[test]
#[ignore = "exhaustive fault sweep; run in the CI mvcc-torture step"]
fn seeded_mvcc_torture_many_seeds() {
    seeded_mvcc_torture(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
}
