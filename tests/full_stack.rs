//! Full-stack integration: collections + objects + chunk store + backups
//! working together through the `TrustedDb` facade, across restarts.

use std::any::Any;
use std::sync::Arc;

use tdb::{
    ApproveAll, BackupSpec, IndexKey, IndexKind, StoredObject, TrustedBackend, TrustedDb,
    TrustedDbBuilder,
};
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, MemArchive, MemStore, MemTrustedStore, SharedUntrusted, TrustedStore,
};

#[derive(Debug, Clone, PartialEq)]
struct Note {
    author: String,
    body: String,
    revision: u32,
}

const NOTE_TAG: u32 = 77;

impl StoredObject for Note {
    fn type_tag(&self) -> u32 {
        NOTE_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for s in [&self.author, &self.body] {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&self.revision.to_le_bytes());
        out
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_note(b: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    let mut off = 0usize;
    let mut get_str = || {
        let n = u32::from_le_bytes(b[off..off + 4].try_into().unwrap()) as usize;
        let s = String::from_utf8(b[off + 4..off + 4 + n].to_vec()).unwrap();
        off += 4 + n;
        s
    };
    let author = get_str();
    let body = get_str();
    let revision = u32::from_le_bytes(b[off..off + 4].try_into().unwrap());
    Ok(Arc::new(Note {
        author,
        body,
        revision,
    }))
}

fn note_by_author(o: &dyn StoredObject) -> Option<Vec<u8>> {
    o.as_any()
        .downcast_ref::<Note>()
        .map(|n| IndexKey::new().str(&n.author).into_bytes())
}

struct Platform {
    secret: SecretKey,
    untrusted: Arc<MemStore>,
    register: Arc<MemTrustedStore>,
    archive: Arc<MemArchive>,
}

impl Platform {
    fn new() -> Platform {
        Platform {
            secret: SecretKey::random(24),
            untrusted: Arc::new(MemStore::new()),
            register: Arc::new(MemTrustedStore::new(64)),
            archive: Arc::new(MemArchive::new()),
        }
    }

    fn builder(&self) -> TrustedDbBuilder {
        TrustedDbBuilder::new()
            .secret(self.secret.clone())
            .register_type(NOTE_TAG, unpickle_note)
            .register_extractor("note_by_author", note_by_author)
    }

    fn backend(&self) -> TrustedBackend {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&self.register) as Arc<dyn TrustedStore>,
        )))
    }

    fn create(&self) -> TrustedDb {
        self.builder()
            .create(
                Arc::clone(&self.untrusted) as SharedUntrusted,
                self.backend(),
                self.archive.clone(),
            )
            .expect("create")
    }

    fn open(&self) -> tdb::Result<TrustedDb> {
        self.builder().open(
            Arc::clone(&self.untrusted) as SharedUntrusted,
            self.backend(),
            self.archive.clone(),
        )
    }
}

#[test]
fn collections_survive_restart_and_recovery() {
    let platform = Platform::new();
    let coll = {
        let db = platform.create();
        let coll = db
            .run(|tx| {
                let coll = db
                    .collections()
                    .create_collection(tx, db.partition(), "notes")?;
                db.collections().add_index(
                    tx,
                    coll,
                    "author",
                    "note_by_author",
                    IndexKind::Sorted,
                )?;
                Ok(coll)
            })
            .unwrap();
        for i in 0..40u32 {
            db.run(|tx| {
                db.collections().insert(
                    tx,
                    coll,
                    Arc::new(Note {
                        author: format!("author-{}", i % 4),
                        body: format!("body {i}"),
                        revision: 1,
                    }),
                )
            })
            .unwrap();
        }
        // No clean close: recovery must roll the residual log forward.
        coll
    };
    let db = platform.open().expect("recovery");
    db.run(|tx| {
        assert_eq!(db.collections().len(tx, coll)?, 40);
        let key = IndexKey::new().str("author-2").into_bytes();
        let hits = db.collections().lookup(tx, coll, "author", &key)?;
        assert_eq!(hits.len(), 10);
        for id in hits {
            let note = tx.get::<Note>(id)?;
            assert_eq!(note.author, "author-2");
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn backup_restore_through_facade_preserves_collections() {
    let platform = Platform::new();
    let db = platform.create();
    let coll = db
        .run(|tx| {
            let coll = db
                .collections()
                .create_collection(tx, db.partition(), "notes")?;
            db.collections()
                .add_index(tx, coll, "author", "note_by_author", IndexKind::Sorted)?;
            Ok(coll)
        })
        .unwrap();
    let ids: Vec<_> = (0..10u32)
        .map(|i| {
            db.run(|tx| {
                db.collections().insert(
                    tx,
                    coll,
                    Arc::new(Note {
                        author: "keeper".into(),
                        body: format!("precious {i}"),
                        revision: 1,
                    }),
                )
            })
            .unwrap()
        })
        .collect();

    let p = db.partition();
    db.backup(
        &[BackupSpec {
            source: p,
            base: None,
        }],
        "snap",
    )
    .unwrap();

    // Vandalize everything through the object store.
    for id in &ids {
        db.run(|tx| {
            tx.put(
                *id,
                Arc::new(Note {
                    author: "vandal".into(),
                    body: "gone".into(),
                    revision: 2,
                }),
            )
        })
        .unwrap();
    }

    db.restore(&["snap.0"], &ApproveAll).unwrap();

    // Collections, indexes, and objects all reflect the backup.
    db.run(|tx| {
        let key = IndexKey::new().str("keeper").into_bytes();
        let hits = db.collections().lookup(tx, coll, "author", &key)?;
        assert_eq!(hits.len(), 10);
        let vandal_key = IndexKey::new().str("vandal").into_bytes();
        assert!(db
            .collections()
            .lookup(tx, coll, "author", &vandal_key)?
            .is_empty());
        for id in &ids {
            assert_eq!(tx.get::<Note>(*id)?.revision, 1);
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn cleaner_runs_under_collection_workload() {
    let platform = Platform::new();
    let db = platform.create();
    let coll = db
        .run(|tx| {
            db.collections()
                .create_collection(tx, db.partition(), "churn")
        })
        .unwrap();
    // Heavy update churn to create obsolete versions.
    let id = db
        .run(|tx| {
            db.collections().insert(
                tx,
                coll,
                Arc::new(Note {
                    author: "a".into(),
                    body: "x".repeat(500),
                    revision: 0,
                }),
            )
        })
        .unwrap();
    for rev in 1..200u32 {
        db.run(|tx| {
            db.collections().update(
                tx,
                coll,
                id,
                Arc::new(Note {
                    author: "a".into(),
                    body: "y".repeat(500),
                    revision: rev,
                }),
            )
        })
        .unwrap();
    }
    db.checkpoint().unwrap();
    let cleaned = db.clean(50).unwrap();
    assert!(cleaned > 0, "churn should leave cleanable segments");
    db.run(|tx| {
        let note = tx.get::<Note>(id)?;
        assert_eq!(note.revision, 199);
        Ok(())
    })
    .unwrap();
    // And everything still recovers.
    drop(db);
    let db = platform.open().unwrap();
    db.run(|tx| {
        assert_eq!(tx.get::<Note>(id)?.revision, 199);
        Ok(())
    })
    .unwrap();
}

#[test]
fn secondary_partition_with_different_cipher() {
    let platform = Platform::new();
    let db = platform.create();
    let fast = db
        .create_partition(tdb::CryptoParams::generate(
            tdb_crypto::CipherKind::Aes128,
            tdb_crypto::HashKind::Sha256,
        ))
        .unwrap();
    let id = db
        .run(|tx| {
            tx.create(
                fast,
                Arc::new(Note {
                    author: "aes".into(),
                    body: "separate keys per partition".into(),
                    revision: 1,
                }),
            )
        })
        .unwrap();
    db.run(|tx| {
        assert_eq!(tx.get::<Note>(id)?.author, "aes");
        Ok(())
    })
    .unwrap();
    drop(db);
    let db = platform.open().unwrap();
    db.run(|tx| {
        assert_eq!(tx.get::<Note>(id)?.author, "aes");
        Ok(())
    })
    .unwrap();
}
