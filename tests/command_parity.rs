//! Transport parity: the embedded session and the TCP server are the
//! same database surface. One deterministic command stream, two twin
//! databases (same fixed keys, same configuration) — one driven through
//! `Session::dispatch` in-process, the other through `tdb-client` over a
//! real TCP loopback connection. The response streams must be
//! **identical** (ids, records, proofs, roots, and typed errors alike),
//! and so must the device-op shape the untrusted store saw: the network
//! layer adds no reads, writes, or flushes.

use std::any::Any;
use std::sync::Arc;

use tdb::{
    Command, IndexKey, IndexKind, ObjectId, Response, StoredObject, TrustedBackend, TrustedDb,
    TrustedDbBuilder, TxMode,
};
use tdb_client::{ClientError, TdbClient};
use tdb_crypto::{CipherKind, HashKind, SecretKey};
use tdb_server::{ServerConfig, TdbServer};
use tdb_storage::{
    CounterOverTrusted, MemArchive, MemStore, MemTrustedStore, SharedUntrusted, StatsSnapshot,
    TrustedStore, UntrustedStore,
};

const REC_TAG: u32 = 7001;
const AUTH_KEY: &[u8] = b"parity-pre-shared-key";

#[derive(Debug)]
struct Rec {
    payload: Vec<u8>,
}

impl StoredObject for Rec {
    fn type_tag(&self) -> u32 {
        REC_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        self.payload.clone()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_rec(body: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    Ok(Arc::new(Rec {
        payload: body.to_vec(),
    }))
}

fn rec_by_prefix(o: &dyn StoredObject) -> Option<Vec<u8>> {
    o.as_any().downcast_ref::<Rec>().map(|r| {
        IndexKey::new()
            .raw(&r.payload[..r.payload.len().min(4)])
            .into_bytes()
    })
}

/// A wire record for `payload` (type tag + pickle), built exactly like
/// the server's registry does.
fn record(payload: &str) -> Vec<u8> {
    let mut out = REC_TAG.to_le_bytes().to_vec();
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Twin databases must be byte-for-byte deterministic, so every key is
/// fixed: chunk hashes cover plaintext, making roots and device-op
/// counts a pure function of the command stream.
fn build_twin() -> (TrustedDb, Arc<MemStore>) {
    let untrusted = Arc::new(MemStore::new());
    let counter = Arc::new(CounterOverTrusted::new(
        Arc::new(MemTrustedStore::new(64)) as Arc<dyn TrustedStore>
    ));
    let db = TrustedDbBuilder::new()
        .secret(SecretKey::new(vec![7u8; 24]))
        .partition_params(tdb::CryptoParams {
            cipher: CipherKind::Des,
            hash: HashKind::Sha1,
            key: SecretKey::new(vec![9u8; 8]),
        })
        .mvcc(true)
        .register_type(REC_TAG, unpickle_rec)
        .register_extractor("prefix", rec_by_prefix)
        .create(
            Arc::clone(&untrusted) as SharedUntrusted,
            TrustedBackend::Counter(counter),
            Arc::new(MemArchive::new()),
        )
        .expect("create twin db");
    (db, untrusted)
}

/// The deterministic command stream. Built incrementally: later commands
/// reference ids returned by earlier ones, so the stream is constructed
/// against a scratch session first and then replayed verbatim.
fn build_script() -> Vec<Command> {
    let (db, _) = build_twin();
    let mut session = db.session("script-builder");
    let mut script: Vec<Command> = Vec::new();
    let mut run = |script: &mut Vec<Command>, cmd: Command| -> Response {
        let resp = session.dispatch(&cmd);
        script.push(cmd);
        resp
    };
    let id_of = |resp: Response| -> ObjectId {
        match resp {
            Response::Id(id) => id,
            other => panic!("expected an id, got {other:?}"),
        }
    };

    run(&mut script, Command::Ping);
    run(&mut script, Command::Health);
    let p = db.partition();
    let id0 = id_of(run(
        &mut script,
        Command::Create {
            partition: p,
            record: record("alpha"),
        },
    ));
    let id1 = id_of(run(
        &mut script,
        Command::Create {
            partition: p,
            record: record("bravo"),
        },
    ));
    run(&mut script, Command::Get(id0));
    run(
        &mut script,
        Command::Put {
            id: id0,
            record: record("alpha-rewritten"),
        },
    );
    run(&mut script, Command::Get(id0));
    // Committed proof-carrying read, outside any transaction.
    run(&mut script, Command::GetWithProof(id0));
    run(&mut script, Command::SnapshotRoot);

    // A multi-command locking transaction.
    run(&mut script, Command::Begin(TxMode::Locking));
    let id2 = id_of(run(
        &mut script,
        Command::Create {
            partition: p,
            record: record("charlie"),
        },
    ));
    run(&mut script, Command::Get(id2));
    // Buffered state: served without a proof.
    run(&mut script, Command::GetWithProof(id2));
    run(&mut script, Command::Commit);
    run(&mut script, Command::Get(id2));

    // Collections, with an index.
    let coll = tdb::CollectionId(id_of(run(
        &mut script,
        Command::CollCreate {
            partition: p,
            name: "goods".into(),
        },
    )));
    for name in ["delta", "echo", "foxtrot"] {
        run(
            &mut script,
            Command::CollInsert {
                coll,
                record: record(name),
            },
        );
    }
    run(&mut script, Command::CollLen(coll));
    run(&mut script, Command::CollScan(coll));
    run(
        &mut script,
        Command::CollAddIndex {
            coll,
            name: "by_prefix".into(),
            extractor: "prefix".into(),
            kind: IndexKind::Sorted,
        },
    );
    run(
        &mut script,
        Command::CollLookup {
            coll,
            index: "by_prefix".into(),
            key: IndexKey::new().raw(b"echo").into_bytes(),
        },
    );
    run(
        &mut script,
        Command::CollRange {
            coll,
            index: "by_prefix".into(),
            lo: Some(IndexKey::new().raw(b"d").into_bytes()),
            hi: Some(IndexKey::new().raw(b"f").into_bytes()),
        },
    );

    // Typed errors must round-trip identically too.
    run(&mut script, Command::Delete(id1));
    run(&mut script, Command::Get(id1)); // NotFound
    run(&mut script, Command::Begin(TxMode::Locking));
    run(&mut script, Command::Begin(TxMode::Locking)); // Busy
    run(&mut script, Command::Abort);
    run(&mut script, Command::Commit); // TxFinished: nothing open

    // An MVCC transaction with a proof-carrying snapshot read.
    run(&mut script, Command::Begin(TxMode::Mvcc));
    run(&mut script, Command::GetWithProof(id0));
    run(&mut script, Command::Commit);

    // Admin surface.
    run(&mut script, Command::Checkpoint);
    run(&mut script, Command::Clean(4));
    run(&mut script, Command::SnapshotRoot);
    script
}

/// Zeroes wall-clock fields: parity is about operation *shape*, not
/// timing.
fn shape(mut s: StatsSnapshot) -> StatsSnapshot {
    s.read_ns = 0;
    s.write_ns = 0;
    s.flush_ns = 0;
    s
}

#[test]
fn same_commands_same_responses_same_device_ops() {
    let script = build_script();

    // Embedded run.
    let (db_a, store_a) = build_twin();
    let mut session = db_a.session("embedded");
    let embedded: Vec<Response> = script.iter().map(|cmd| session.dispatch(cmd)).collect();
    drop(session);

    // Remote run over TCP loopback.
    let (db_b, store_b) = build_twin();
    let mut server = TdbServer::spawn(
        Arc::new(db_b),
        "127.0.0.1:0",
        ServerConfig::new(SecretKey::new(AUTH_KEY.to_vec())),
    )
    .expect("spawn server");
    let mut client = TdbClient::connect(server.addr(), "remote", AUTH_KEY).expect("connect");
    let mut remote: Vec<Response> = Vec::new();
    for cmd in &script {
        client.send(cmd).expect("send");
        let (_, resp) = client.recv().expect("recv");
        remote.push(resp);
    }
    drop(client);
    server.shutdown();

    assert_eq!(embedded.len(), remote.len());
    for (i, (e, r)) in embedded.iter().zip(&remote).enumerate() {
        assert_eq!(e, r, "command {i} ({:?}) diverged", script[i].opcode());
    }

    // Same device-op shape: the network layer added no storage traffic.
    assert_eq!(
        shape(store_a.stats().snapshot()),
        shape(store_b.stats().snapshot()),
        "embedded and TCP runs drove different device-op shapes"
    );
}

#[test]
fn pipelined_burst_answers_in_order() {
    let (db, _) = build_twin();
    let p = db.partition();
    let mut server = TdbServer::spawn(
        Arc::new(db),
        "127.0.0.1:0",
        ServerConfig::new(SecretKey::new(AUTH_KEY.to_vec())),
    )
    .expect("spawn server");
    let mut client = TdbClient::connect(server.addr(), "burst", AUTH_KEY).expect("connect");

    // Queue a burst without reading a single response.
    let mut expected_ids = Vec::new();
    for i in 0..32u32 {
        let id = client
            .send(&Command::Create {
                partition: p,
                record: record(&format!("burst-{i}")),
            })
            .expect("send");
        expected_ids.push(id);
    }
    assert_eq!(client.outstanding(), 32);
    let mut created = Vec::new();
    for expect in expected_ids {
        let (req, resp) = client.recv().expect("recv");
        assert_eq!(req, expect, "responses must arrive in send order");
        match resp {
            Response::Id(id) => created.push(id),
            other => panic!("create answered {other:?}"),
        }
    }
    // The burst really committed: every object reads back.
    for (i, id) in created.iter().enumerate() {
        let rec = client.get(*id).expect("get");
        assert_eq!(rec, record(&format!("burst-{i}")));
    }
    server.shutdown();
}

#[test]
fn wrong_key_is_rejected_and_wrong_server_is_detected() {
    let (db, _) = build_twin();
    let mut server = TdbServer::spawn(
        Arc::new(db),
        "127.0.0.1:0",
        ServerConfig::new(SecretKey::new(AUTH_KEY.to_vec())),
    )
    .expect("spawn server");

    match TdbClient::connect(server.addr(), "mallory", b"wrong-key") {
        Err(ClientError::AuthRejected(reason)) => {
            assert!(reason.contains("authentication failed"), "reason: {reason}");
        }
        other => panic!("wrong key must be rejected, got {other:?}"),
    }
    assert_eq!(
        server
            .stats()
            .rejected
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    // The right key still works afterwards.
    let mut client = TdbClient::connect(server.addr(), "alice", AUTH_KEY).expect("connect");
    client.ping().expect("ping");
    server.shutdown();
}

#[test]
fn verified_reads_pass_over_the_wire_against_a_pinned_root() {
    let (db, _) = build_twin();
    let p = db.partition();
    let mut server = TdbServer::spawn(
        Arc::new(db),
        "127.0.0.1:0",
        ServerConfig::new(SecretKey::new(AUTH_KEY.to_vec())),
    )
    .expect("spawn server");
    let mut client = TdbClient::connect(server.addr(), "verifier", AUTH_KEY).expect("connect");

    let mut ids = Vec::new();
    for i in 0..8u32 {
        ids.push(
            client
                .create(p, record(&format!("pinned-{i}")))
                .expect("create"),
        );
    }
    // Pin the committed root, then verify every object against it with
    // proofs shipped over TCP — the server is out of the trusted base.
    let root = client.snapshot_root().expect("root");
    for (i, id) in ids.iter().enumerate() {
        let rec = client.get_verified(*id, &root).expect("verified read");
        assert_eq!(rec, record(&format!("pinned-{i}")));
    }
    // A root from *before* a later commit must reject reads of the new
    // state: the stale pin cannot vouch for it.
    let moved = client.create(p, record("post-pin")).expect("create");
    match client.get_verified(moved, &root) {
        Err(ClientError::ProofInvalid) => {}
        other => panic!("stale pinned root must reject, got {other:?}"),
    }
    // Re-pinning to the current root makes the same read verify.
    let fresh = client.snapshot_root().expect("root");
    assert_eq!(
        client.get_verified(moved, &fresh).expect("verified read"),
        record("post-pin")
    );
    server.shutdown();
}

#[test]
fn session_transactions_are_isolated_per_connection() {
    let (db, _) = build_twin();
    let p = db.partition();
    let mut server = TdbServer::spawn(
        Arc::new(db),
        "127.0.0.1:0",
        ServerConfig::new(SecretKey::new(AUTH_KEY.to_vec())),
    )
    .expect("spawn server");

    let mut alice = TdbClient::connect(server.addr(), "alice", AUTH_KEY).expect("connect");
    let mut bob = TdbClient::connect(server.addr(), "bob", AUTH_KEY).expect("connect");

    // Alice opens a transaction and buffers a write; Bob's session has no
    // transaction, so his Begin succeeds independently.
    alice.begin(TxMode::Locking).expect("alice begin");
    let id = alice.create(p, record("private")).expect("alice create");
    bob.begin(TxMode::Locking).expect("bob begin");
    bob.abort().expect("bob abort");
    // Bob cannot see Alice's uncommitted object: her write lock makes his
    // autocommit read time out (two-phase locking, typed code 205).
    match bob.get(id) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code(), 205, "expected LockTimeout, got {e}"),
        other => panic!("uncommitted object must be invisible, got {other:?}"),
    }
    alice.commit().expect("alice commit");
    assert_eq!(
        bob.get(id).expect("visible after commit"),
        record("private")
    );

    // A dropped connection aborts its open transaction server-side.
    alice.begin(TxMode::Locking).expect("alice begin again");
    let doomed = alice.create(p, record("doomed")).expect("alice create");
    drop(alice);
    // Locks release once the server reaps the session; retry briefly.
    let mut gone = false;
    for _ in 0..100 {
        match bob.get(doomed) {
            Err(ClientError::Remote(e)) if e.code() == 201 => {
                gone = true;
                break;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    assert!(gone, "dropped connection must abort its transaction");
    server.shutdown();
}
