//! Seeded-fault backup/restore roundtrips (ISSUE 6 satellite).
//!
//! Properties:
//!
//! - Restoring a snapshot into a *fresh* store under a seeded `FaultPlan`
//!   either installs contents that verify exactly, or fails cleanly — and
//!   a retry after the device heals restores bit-perfect state. Transient
//!   faults never corrupt the archived snapshot.
//! - A backup taken under seeded faults never ships a corrupt-but-
//!   installable object: restore of whatever reached the archive either
//!   fails or yields exactly the source contents.
//! - A full + incremental chain survives the same treatment.

use std::collections::BTreeMap;
use std::sync::Arc;

use tdb::{
    ChunkStore, ChunkStoreConfig, CommitOp, CryptoParams, PartitionId, TrustedBackend,
    ValidationMode,
};
use tdb_core::backup::{ApproveAll, BackupSpec, BackupStore};
use tdb_core::ChunkId;
use tdb_crypto::SecretKey;
use tdb_storage::{
    ArchivalStore, CounterOverTrusted, FaultPlan, MemArchive, MemStore, MemTrustedStore,
    PlannedFaultStore, SharedUntrusted, TrustedStore,
};

fn config() -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 4096,
        checkpoint_threshold: 8,
        validation: ValidationMode::Counter {
            delta_ut: 5,
            delta_tu: 0,
        },
        ..ChunkStoreConfig::default()
    }
}

fn store_over(untrusted: SharedUntrusted, secret: &SecretKey) -> Arc<ChunkStore> {
    Arc::new(
        ChunkStore::create(
            untrusted,
            TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
                Arc::new(MemTrustedStore::new(64)) as Arc<dyn TrustedStore>,
            ))),
            secret.clone(),
            config(),
        )
        .unwrap(),
    )
}

type Model = BTreeMap<u64, Vec<u8>>;

fn fill_partition(store: &ChunkStore, p: PartitionId, n: u64) -> Model {
    let mut model = Model::new();
    for i in 0..n {
        let c = store.allocate_chunk(p).unwrap();
        let bytes = vec![(i % 240) as u8 + 7; 40 + (i as usize % 90)];
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: bytes.clone(),
            }])
            .unwrap();
        model.insert(c.pos.rank, bytes);
    }
    model
}

fn assert_partition(store: &ChunkStore, p: PartitionId, model: &Model, ctx: &str) {
    for (rank, bytes) in model {
        assert_eq!(
            &store
                .read(ChunkId::data(p, *rank))
                .unwrap_or_else(|e| panic!("{ctx}: read rank {rank}: {e}")),
            bytes,
            "{ctx}: rank {rank} content"
        );
    }
}

fn snapshot(store: &ChunkStore, p: PartitionId) -> PartitionId {
    let snap = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CopyPartition { dst: snap, src: p }])
        .unwrap();
    snap
}

#[test]
fn seeded_faults_on_restore_never_accept_corrupt_state() {
    let secret = SecretKey::random(24);
    let archive = Arc::new(MemArchive::new());

    // A clean source ships one pristine snapshot.
    let src = store_over(Arc::new(MemStore::new()) as SharedUntrusted, &secret);
    let p = src.allocate_partition().unwrap();
    src.commit(vec![CommitOp::CreatePartition {
        id: p,
        params: CryptoParams::paper_default(),
    }])
    .unwrap();
    let model = fill_partition(&src, p, 10);
    let snap = snapshot(&src, p);
    BackupStore::new(
        Arc::clone(&src),
        Arc::clone(&archive) as Arc<dyn ArchivalStore>,
    )
    .backup_one(
        &BackupSpec {
            source: p,
            base: None,
        },
        snap,
        "snap-full",
    )
    .unwrap();
    let pristine = archive.size_of("snap-full").unwrap();

    for seed in 0..24u64 {
        let ctx = format!("restore seed {seed}");
        let planned = Arc::new(PlannedFaultStore::new(
            Arc::new(MemStore::new()),
            FaultPlan::new(),
        ));
        let dst = store_over(Arc::clone(&planned) as SharedUntrusted, &secret);
        let dst_backups = BackupStore::new(
            Arc::clone(&dst),
            Arc::clone(&archive) as Arc<dyn ArchivalStore>,
        );
        let target = dst.allocate_partition().unwrap();

        planned.set_plan(FaultPlan::seeded(seed, 120, 3));
        let result = dst_backups.restore_as(&["snap-full"], &ApproveAll, target);
        planned.set_plan(FaultPlan::new());

        if result.is_err() {
            // Transient faults must leave a retryable store and an intact
            // snapshot: after the device heals, the restore is bit-perfect.
            let _ = dst.try_heal();
            dst_backups
                .restore_as(&["snap-full"], &ApproveAll, target)
                .unwrap_or_else(|e| panic!("{ctx}: retry after heal: {e}"));
        }
        assert_partition(&dst, target, &model, &ctx);
        // Destination-side faults can never corrupt the archived snapshot.
        assert_eq!(archive.size_of("snap-full"), Some(pristine), "{ctx}");
    }
}

#[test]
fn seeded_faults_on_backup_never_ship_a_corrupt_snapshot() {
    let secret = SecretKey::random(24);
    for seed in 0..24u64 {
        let ctx = format!("backup seed {seed}");
        let archive = Arc::new(MemArchive::new());
        let planned = Arc::new(PlannedFaultStore::new(
            Arc::new(MemStore::new()),
            FaultPlan::new(),
        ));
        let src = store_over(Arc::clone(&planned) as SharedUntrusted, &secret);
        let src_backups = BackupStore::new(
            Arc::clone(&src),
            Arc::clone(&archive) as Arc<dyn ArchivalStore>,
        );
        let p = src.allocate_partition().unwrap();
        src.commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
        let model = fill_partition(&src, p, 8);
        let snap = snapshot(&src, p);

        planned.set_plan(FaultPlan::seeded(seed, 150, 3));
        let shipped = src_backups.backup_one(
            &BackupSpec {
                source: p,
                base: None,
            },
            snap,
            "s",
        );
        planned.set_plan(FaultPlan::new());
        let _ = src.try_heal();

        // Whatever the fault did, the source still serves every
        // acknowledged byte.
        assert_partition(&src, p, &model, &ctx);

        let dst = store_over(Arc::new(MemStore::new()) as SharedUntrusted, &secret);
        let dst_backups = BackupStore::new(
            Arc::clone(&dst),
            Arc::clone(&archive) as Arc<dyn ArchivalStore>,
        );
        let target = dst.allocate_partition().unwrap();
        match dst_backups.restore_as(&["s"], &ApproveAll, target) {
            Ok(_) => {
                // An accepted stream is a correct stream, shipped under
                // faults or not.
                assert_partition(&dst, target, &model, &ctx);
            }
            Err(_) => {
                // A partial/absent object is rejected, never installed —
                // acceptable only when the backup itself failed.
                assert!(
                    shipped.is_err(),
                    "{ctx}: restore rejected a successfully shipped snapshot"
                );
            }
        }
    }
}

#[test]
fn incremental_chain_survives_seeded_restore_faults() {
    let secret = SecretKey::random(24);
    let archive = Arc::new(MemArchive::new());

    let src = store_over(Arc::new(MemStore::new()) as SharedUntrusted, &secret);
    let src_backups = BackupStore::new(
        Arc::clone(&src),
        Arc::clone(&archive) as Arc<dyn ArchivalStore>,
    );
    let p = src.allocate_partition().unwrap();
    src.commit(vec![CommitOp::CreatePartition {
        id: p,
        params: CryptoParams::paper_default(),
    }])
    .unwrap();
    let mut model = fill_partition(&src, p, 6);
    let base = snapshot(&src, p);
    src_backups
        .backup_one(
            &BackupSpec {
                source: p,
                base: None,
            },
            base,
            "chain-full",
        )
        .unwrap();
    // Mutate past the base, then ship the delta.
    let extra = fill_partition(&src, p, 4);
    model.extend(extra);
    let head = snapshot(&src, p);
    src_backups
        .backup_one(
            &BackupSpec {
                source: p,
                base: Some(base),
            },
            head,
            "chain-delta",
        )
        .unwrap();

    for seed in 0..12u64 {
        let ctx = format!("chain seed {seed}");
        let planned = Arc::new(PlannedFaultStore::new(
            Arc::new(MemStore::new()),
            FaultPlan::new(),
        ));
        let dst = store_over(Arc::clone(&planned) as SharedUntrusted, &secret);
        let dst_backups = BackupStore::new(
            Arc::clone(&dst),
            Arc::clone(&archive) as Arc<dyn ArchivalStore>,
        );
        let target = dst.allocate_partition().unwrap();

        planned.set_plan(FaultPlan::seeded(seed, 150, 3));
        let full = dst_backups.restore_as(&["chain-full"], &ApproveAll, target);
        let delta = match &full {
            Ok(_) => dst_backups.apply_incremental("chain-delta", &ApproveAll, target),
            Err(_) => Err(tdb_core::CoreError::Corrupt("full restore failed".into())),
        };
        planned.set_plan(FaultPlan::new());

        if full.is_err() || delta.is_err() {
            let _ = dst.try_heal();
            dst_backups
                .restore_as(&["chain-full"], &ApproveAll, target)
                .unwrap_or_else(|e| panic!("{ctx}: full retry: {e}"));
            dst_backups
                .apply_incremental("chain-delta", &ApproveAll, target)
                .map(|_| ())
                .unwrap_or_else(|e| panic!("{ctx}: delta retry: {e}"));
        }
        assert_partition(&dst, target, &model, &ctx);
    }
}
