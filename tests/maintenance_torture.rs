//! Maintenance-runtime torture: background cleaning and checkpointing
//! racing live committers over a bounded log.
//!
//! The properties under test (ISSUE: background maintenance):
//!
//! - No commit is acknowledged before its durability point while the
//!   maintenance thread cleans and checkpoints concurrently: a crash that
//!   loses every unflushed write must preserve every acknowledged commit.
//! - Seeded fault plans firing into background maintenance never poison
//!   the store, and acknowledged commits still survive recovery.
//! - Under sustained log pressure the background cleaner reclaims enough
//!   space that committers write several times the raw log capacity.
//! - `background_maintenance = false` (the default) runs no maintenance
//!   thread and records no background activity in the stats.

use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use tdb::{
    ChunkId, ChunkStore, ChunkStoreConfig, CommitOp, CryptoParams, PartitionId, TrustedBackend,
};
use tdb_core::CoreError;
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, CrashStore, FaultPlan, MemStore, MemTrustedStore, PlannedFaultStore,
    SharedUntrusted, TrustedStore,
};

const THREADS: usize = 6;

/// A bounded log small enough that the workload laps it several times:
/// without reclamation the runs below would die on `OutOfSpace`.
fn bounded_config() -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 4096,
        max_segments: 24,
        checkpoint_threshold: 6,
        background_maintenance: true,
        clean_slice_segments: 4,
        clean_low_water: 4,
        clean_high_water: 10,
        ..ChunkStoreConfig::default()
    }
}

struct Rig {
    secret: SecretKey,
    register: Arc<MemTrustedStore>,
    config: ChunkStoreConfig,
}

impl Rig {
    fn new(config: ChunkStoreConfig) -> Rig {
        Rig {
            secret: SecretKey::random(24),
            register: Arc::new(MemTrustedStore::new(64)),
            config,
        }
    }

    fn backend(&self) -> TrustedBackend {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&self.register) as Arc<dyn TrustedStore>,
        )))
    }

    fn create(&self, untrusted: SharedUntrusted) -> ChunkStore {
        ChunkStore::create(
            untrusted,
            self.backend(),
            self.secret.clone(),
            self.config.clone(),
        )
        .unwrap()
    }

    /// Reopens with background maintenance off: recovery checks stay
    /// deterministic, with no thread racing the assertions.
    fn open_foreground(&self, untrusted: SharedUntrusted) -> tdb_core::Result<ChunkStore> {
        let config = ChunkStoreConfig {
            background_maintenance: false,
            ..self.config.clone()
        };
        ChunkStore::open(untrusted, self.backend(), self.secret.clone(), config)
    }
}

fn setup_partition(store: &ChunkStore) -> PartitionId {
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    p
}

fn content(thread: usize, round: usize) -> Vec<u8> {
    vec![(thread * 29 + round * 13 + 1) as u8; 300 + (thread * 37 + round * 53) % 400]
}

/// Commits with bounded patience: `OutOfSpace` waits for the cleaner to
/// reclaim (the admission gate already throttled once), a transient
/// degrade gets one heal attempt. Returns whether the commit was
/// acknowledged.
fn commit_patiently(store: &ChunkStore, id: ChunkId, bytes: &[u8]) -> bool {
    for _ in 0..200 {
        let ops = vec![CommitOp::WriteChunk {
            id,
            bytes: bytes.to_vec(),
        }];
        match store.commit(ops) {
            Ok(()) => return true,
            Err(CoreError::OutOfSpace) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(CoreError::DegradedMode(_)) => {
                if store.try_heal().is_err() {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            Err(_) => return false,
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Durability before ack, with maintenance racing the committers.
// ---------------------------------------------------------------------------

/// Concurrent committers overwrite a shared working set over a write-back
/// cache while the maintenance thread cleans and checkpoints behind them.
/// A crash that loses *every* unflushed write must preserve the last
/// acknowledged value of every chunk — maintenance must never let a
/// commit be acknowledged before its durability point, and its own
/// relocations must never un-persist acknowledged data.
#[test]
fn acked_commits_survive_crash_during_background_maintenance() {
    const ROUNDS: usize = 20;
    let rig = Rig::new(bounded_config());
    let crash = Arc::new(CrashStore::new(Arc::new(MemStore::new())).unwrap());
    let store = rig.create(Arc::clone(&crash) as SharedUntrusted);
    assert!(store.background_maintenance());
    let p = setup_partition(&store);
    let ids: Vec<Vec<ChunkId>> = (0..THREADS)
        .map(|_| (0..4).map(|_| store.allocate_chunk(p).unwrap()).collect())
        .collect();

    // Per-chunk last acknowledged value; overwrites supersede in ack order.
    let acked: Mutex<HashMap<ChunkId, Vec<u8>>> = Mutex::new(HashMap::new());
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for (t, my_ids) in ids.iter().enumerate() {
            let (store, acked, barrier) = (&store, &acked, &barrier);
            s.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    let id = my_ids[round % my_ids.len()];
                    let bytes = content(t, round);
                    // Threads own disjoint ids, so recording after the
                    // ack keeps per-chunk entries in ack order.
                    if commit_patiently(store, id, &bytes) {
                        acked.lock().unwrap().insert(id, bytes);
                    }
                }
            });
        }
    });
    let stats = store.stats();
    let acked = acked.into_inner().unwrap();
    assert!(
        acked.len() >= THREADS,
        "the run barely committed: {} acks",
        acked.len()
    );
    // The workload overwrote a 24-segment log many times over; background
    // maintenance is what kept it alive.
    assert!(
        stats.maintenance_wakeups >= 1,
        "maintenance thread never woke"
    );
    drop(store);

    let image = crash.crash_lose_all();
    let reopened = rig
        .open_foreground(Arc::new(MemStore::from_bytes(image)) as SharedUntrusted)
        .expect("recovery after losing all unflushed writes");
    for (id, bytes) in &acked {
        assert_eq!(
            &reopened.read(*id).unwrap(),
            bytes,
            "acknowledged commit lost in the crash: {id}"
        );
    }
}

// ---------------------------------------------------------------------------
// Seeded faults firing into background maintenance.
// ---------------------------------------------------------------------------

/// Mixed seeded faults land in whatever the store happens to be doing —
/// commits, background checkpoints, or clean slices. Background
/// maintenance consuming fault indices makes the interleaving adversarial
/// by construction; the invariants must hold anyway: plain I/O faults
/// never poison, and every acknowledged commit survives recovery.
#[test]
fn seeded_faults_with_background_maintenance_never_poison() {
    for seed in [1u64, 2, 3] {
        let rig = Rig::new(bounded_config());
        let mem = Arc::new(MemStore::new());
        let pf = Arc::new(PlannedFaultStore::new(
            Arc::clone(&mem) as SharedUntrusted,
            FaultPlan::new(),
        ));
        let store = rig.create(Arc::clone(&pf) as SharedUntrusted);
        let p = setup_partition(&store);
        let ids: Vec<Vec<ChunkId>> = (0..THREADS)
            .map(|_| (0..3).map(|_| store.allocate_chunk(p).unwrap()).collect())
            .collect();
        let horizon = pf.total_ops() + 300;
        pf.set_plan(FaultPlan::seeded(seed, horizon, 5));

        // Write-once ids: a failed commit is never durably superseded, so
        // "acknowledged implies readable after recovery" stays exact even
        // though recovery may also adopt unacknowledged durable commits.
        let acked: Mutex<Vec<(ChunkId, Vec<u8>)>> = Mutex::new(Vec::new());
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for (t, my_ids) in ids.iter().enumerate() {
                let (store, acked, barrier) = (&store, &acked, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    for (round, id) in my_ids.iter().enumerate() {
                        let bytes = content(t, round);
                        if commit_patiently(store, *id, &bytes) {
                            acked.lock().unwrap().push((*id, bytes));
                        }
                    }
                });
            }
        });
        assert!(
            !store.health().is_poisoned(),
            "seed {seed}: an I/O fault during maintenance must never poison"
        );
        let acked = acked.into_inner().unwrap();
        drop(store);

        pf.set_plan(FaultPlan::new());
        let reopened = rig
            .open_foreground(Arc::new(MemStore::from_bytes(mem.image())) as SharedUntrusted)
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        for (id, bytes) in &acked {
            assert_eq!(
                &reopened.read(*id).unwrap(),
                bytes,
                "seed {seed}: acknowledged commit lost: {id}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The cleaner keeps a bounded log alive under sustained pressure.
// ---------------------------------------------------------------------------

/// Sustained overwrites push several times the raw log capacity through a
/// 24-segment store. Only background reclamation makes that possible, and
/// the stats must show it happened: segments reclaimed, versions
/// relocated, and the work done in bounded slices.
#[test]
fn background_cleaner_sustains_writes_past_raw_capacity() {
    const ROUNDS: usize = 60;
    let rig = Rig::new(bounded_config());
    let mem = Arc::new(MemStore::new());
    let store = rig.create(Arc::clone(&mem) as SharedUntrusted);
    let p = setup_partition(&store);
    let capacity = u64::from(rig.config.max_segments) * u64::from(rig.config.segment_size);

    let ids: Vec<Vec<ChunkId>> = (0..THREADS)
        .map(|_| (0..4).map(|_| store.allocate_chunk(p).unwrap()).collect())
        .collect();
    let committed: Mutex<u64> = Mutex::new(0);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for (t, my_ids) in ids.iter().enumerate() {
            let (store, committed, barrier) = (&store, &committed, &barrier);
            s.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    let id = my_ids[round % my_ids.len()];
                    let bytes = content(t, round);
                    let len = bytes.len() as u64;
                    assert!(
                        commit_patiently(store, id, &bytes),
                        "thread {t} round {round}: commit never admitted — \
                         the cleaner fell behind for good"
                    );
                    *committed.lock().unwrap() += len;
                }
            });
        }
    });

    let committed = committed.into_inner().unwrap();
    assert!(
        committed > capacity,
        "workload too small to prove reclamation: {committed} <= {capacity}"
    );
    let stats = store.stats();
    assert!(stats.segments_cleaned >= 1, "no segment was ever reclaimed");
    assert!(stats.bytes_reclaimed >= 1, "no bytes were ever reclaimed");
    assert!(
        stats.clean_slices >= 1,
        "cleaning never ran in background slices"
    );
    assert!(stats.maintenance_wakeups >= 1, "maintenance never woke");

    // Every chunk still serves its last value through the read path.
    for (t, my_ids) in ids.iter().enumerate() {
        for (i, id) in my_ids.iter().enumerate() {
            let last_round = (ROUNDS - 1) - ((ROUNDS - 1 - i) % my_ids.len());
            assert_eq!(
                store.read(*id).unwrap(),
                content(t, last_round),
                "thread {t} chunk {i}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Parity: the default runs no maintenance thread.
// ---------------------------------------------------------------------------

/// With `background_maintenance` off (the default), no thread is spawned
/// and no background activity ever lands in the stats — the engine is
/// caller-driven exactly as before.
#[test]
fn disabled_maintenance_runs_nothing_in_background() {
    let rig = Rig::new(ChunkStoreConfig {
        background_maintenance: false,
        ..bounded_config()
    });
    let store = rig.create(Arc::new(MemStore::new()) as SharedUntrusted);
    assert!(!store.background_maintenance());
    let p = setup_partition(&store);
    for round in 0..12 {
        let id = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: content(0, round),
            }])
            .unwrap();
    }
    // Give a stray thread (there must be none) time to wake and tick.
    std::thread::sleep(Duration::from_millis(100));
    let stats = store.stats();
    assert_eq!(stats.maintenance_wakeups, 0);
    assert_eq!(stats.clean_slices, 0);
    assert_eq!(stats.commit_throttle_waits, 0);
}
