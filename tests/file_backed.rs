//! End-to-end on real files: `FileStore` for the untrusted log,
//! `FileTrustedStore` for the register, `DirArchive` for backups — the
//! deployment shape of §9.1 (NTFS files on two disks plus an archive).

use std::path::PathBuf;
use std::sync::Arc;

use tdb::{
    ApproveAll, BackupSpec, ChunkStoreConfig, CommitOp, TrustedBackend, TrustedDbBuilder,
    ValidationMode,
};
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, DirArchive, FileStore, FileTrustedStore, SharedUntrusted, TrustedStore,
};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "tdb-file-backed-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn stores(dir: &TempDir) -> (SharedUntrusted, TrustedBackend, Arc<DirArchive>) {
    let untrusted: SharedUntrusted =
        Arc::new(FileStore::open(&dir.0.join("untrusted.img")).unwrap());
    let register: Arc<dyn TrustedStore> =
        Arc::new(FileTrustedStore::open(&dir.0.join("register.bin"), 64).unwrap());
    let backend = TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(register)));
    let archive = Arc::new(DirArchive::open(dir.0.join("archive")).unwrap());
    (untrusted, backend, archive)
}

#[test]
fn file_backed_full_lifecycle() {
    let dir = TempDir::new("lifecycle");
    let secret = SecretKey::random(24);

    // Session 1: create, write, back up, clean shutdown.
    let chunk_ids = {
        let (untrusted, backend, archive) = stores(&dir);
        let db = TrustedDbBuilder::new()
            .secret(secret.clone())
            .chunk_config(ChunkStoreConfig {
                segment_size: 32 * 1024,
                ..ChunkStoreConfig::default()
            })
            .create(untrusted, backend, archive)
            .unwrap();
        let p = db.partition();
        let mut ids = Vec::new();
        for i in 0..25u32 {
            let c = db.chunks().allocate_chunk(p).unwrap();
            db.chunks()
                .commit(vec![CommitOp::WriteChunk {
                    id: c,
                    bytes: format!("file-backed record {i}").into_bytes(),
                }])
                .unwrap();
            ids.push(c);
        }
        db.backup(
            &[BackupSpec {
                source: p,
                base: None,
            }],
            "disk-backup",
        )
        .unwrap();
        db.close().unwrap();
        ids
    };

    // Session 2: reopen from disk, verify, vandalize, restore from archive.
    {
        let (untrusted, backend, archive) = stores(&dir);
        let db = TrustedDbBuilder::new()
            .secret(secret.clone())
            .chunk_config(ChunkStoreConfig {
                segment_size: 32 * 1024,
                ..ChunkStoreConfig::default()
            })
            .open(untrusted, backend, archive)
            .unwrap();
        for (i, c) in chunk_ids.iter().enumerate() {
            assert_eq!(
                db.chunks().read(*c).unwrap(),
                format!("file-backed record {i}").as_bytes()
            );
        }
        db.chunks()
            .commit(vec![CommitOp::WriteChunk {
                id: chunk_ids[0],
                bytes: b"overwritten".to_vec(),
            }])
            .unwrap();
        db.restore(&["disk-backup.0"], &ApproveAll).unwrap();
        assert_eq!(
            db.chunks().read(chunk_ids[0]).unwrap(),
            b"file-backed record 0"
        );
        db.close().unwrap();
    }

    // Session 3: crash-style reopen (no clean close in session 2 after the
    // restore? close() was called; emulate an unclean session here).
    {
        let (untrusted, backend, archive) = stores(&dir);
        let db = TrustedDbBuilder::new()
            .secret(secret.clone())
            .chunk_config(ChunkStoreConfig {
                segment_size: 32 * 1024,
                ..ChunkStoreConfig::default()
            })
            .open(untrusted, backend, archive)
            .unwrap();
        let p = db.partition();
        let c = db.chunks().allocate_chunk(p).unwrap();
        db.chunks()
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: b"residual-only".to_vec(),
            }])
            .unwrap();
        // Dropped without close(): the write lives only in the residual log.
        drop(db);
        let (untrusted, backend, archive) = stores(&dir);
        let db = TrustedDbBuilder::new()
            .secret(secret)
            .chunk_config(ChunkStoreConfig {
                segment_size: 32 * 1024,
                ..ChunkStoreConfig::default()
            })
            .open(untrusted, backend, archive)
            .unwrap();
        assert_eq!(db.chunks().read(c).unwrap(), b"residual-only");
    }
}

#[test]
fn file_backed_direct_hash_mode() {
    let dir = TempDir::new("direct");
    let secret = SecretKey::random(24);
    let config = ChunkStoreConfig {
        validation: ValidationMode::DirectHash,
        ..ChunkStoreConfig::default()
    };
    let register: Arc<dyn TrustedStore> =
        Arc::new(FileTrustedStore::open(&dir.0.join("register.bin"), 64).unwrap());
    let c = {
        let untrusted: SharedUntrusted =
            Arc::new(FileStore::open(&dir.0.join("untrusted.img")).unwrap());
        let db = TrustedDbBuilder::new()
            .secret(secret.clone())
            .chunk_config(config.clone())
            .create(
                untrusted,
                TrustedBackend::Register(Arc::clone(&register)),
                Arc::new(DirArchive::open(dir.0.join("archive")).unwrap()),
            )
            .unwrap();
        let c = db.chunks().allocate_chunk(db.partition()).unwrap();
        db.chunks()
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: b"direct-hash on disk".to_vec(),
            }])
            .unwrap();
        c
    };
    let untrusted: SharedUntrusted =
        Arc::new(FileStore::open(&dir.0.join("untrusted.img")).unwrap());
    let db = TrustedDbBuilder::new()
        .secret(secret)
        .chunk_config(config)
        .open(
            untrusted,
            TrustedBackend::Register(register),
            Arc::new(DirArchive::open(dir.0.join("archive")).unwrap()),
        )
        .unwrap();
    assert_eq!(db.chunks().read(c).unwrap(), b"direct-hash on disk");
}
