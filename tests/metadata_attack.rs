//! The paper's core architectural claim (§1.2), demonstrated:
//!
//! "One might consider building a trusted database system by layering
//! cryptography on top of a conventional database system. … Unfortunately,
//! the layer would not protect the metadata inside the database system. An
//! attack could effectively delete an object by modifying the indexes."
//!
//! Here we play that attacker against both systems:
//! - **SecureXdb** (crypto layered over a conventional DB): its *own*
//!   hash-tree bookkeeping catches record deletions, but its B-tree pages,
//!   free lists, and WAL are unprotected surface — attacks there can only
//!   be caught *indirectly* (decrypt failures, lookups misrouted to
//!   absence), and the structural damage itself goes unauthenticated.
//! - **TDB**: data and metadata are chunks alike; the same sweep of
//!   attacks is caught by the hash links on the metadata itself.

use std::sync::Arc;

use tdb::{ChunkStore, ChunkStoreConfig, CommitOp, CryptoParams, TrustedBackend};
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, MemStore, MemTrustedStore, SharedTrusted, SharedUntrusted, TrustedStore,
};
use tdb_xdb::{SecureXdb, SecureXdbConfig};

/// Sweeps single-byte corruptions across an image and classifies each
/// probe's outcome for a full read-back of `expected` records.
#[derive(Debug, Default)]
struct AttackTally {
    probes: usize,
    /// An error was raised (open or read) — the attack was *detected*.
    detected: usize,
    /// All reads succeeded with correct data (probe hit dead bytes).
    harmless: usize,
    /// A read returned success with WRONG data — silent corruption.
    silent: usize,
    /// A record silently vanished (read said "absent" with no error).
    silently_deleted: usize,
}

#[test]
fn metadata_attack_on_layered_xdb_vs_tdb() {
    // ---- Build both systems with the same records -------------------------
    let records: Vec<(u64, Vec<u8>)> = (0..12u64)
        .map(|i| (i, format!("license {i}: plays remaining = 3").into_bytes()))
        .collect();

    // SecureXdb.
    let xdb_key = SecretKey::random(8);
    let xdb_data = Arc::new(MemStore::new());
    let xdb_wal = Arc::new(MemStore::new());
    let xdb_register = Arc::new(MemTrustedStore::new(64));
    {
        let db = SecureXdb::create(
            Arc::clone(&xdb_data) as SharedUntrusted,
            Arc::clone(&xdb_wal) as SharedUntrusted,
            Arc::clone(&xdb_register) as SharedTrusted,
            SecureXdbConfig::paper_default(xdb_key.clone()),
        )
        .unwrap();
        for (id, body) in &records {
            db.commit(vec![(*id, Some(body.clone()))]).unwrap();
        }
        db.checkpoint().unwrap();
    }
    let xdb_image = xdb_data.image();

    // TDB.
    let tdb_key = SecretKey::random(24);
    let tdb_store = Arc::new(MemStore::new());
    let tdb_register = Arc::new(MemTrustedStore::new(64));
    let tdb_backend = || {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&tdb_register) as Arc<dyn TrustedStore>
        )))
    };
    let tdb_ids = {
        let store = ChunkStore::create(
            Arc::clone(&tdb_store) as SharedUntrusted,
            tdb_backend(),
            tdb_key.clone(),
            ChunkStoreConfig::default(),
        )
        .unwrap();
        let p = store.allocate_partition().unwrap();
        store
            .commit(vec![CommitOp::CreatePartition {
                id: p,
                params: CryptoParams::paper_default(),
            }])
            .unwrap();
        let ids: Vec<_> = records
            .iter()
            .map(|(_, body)| {
                let c = store.allocate_chunk(p).unwrap();
                store
                    .commit(vec![CommitOp::WriteChunk {
                        id: c,
                        bytes: body.clone(),
                    }])
                    .unwrap();
                c
            })
            .collect();
        store.close().unwrap();
        ids
    };
    let tdb_image = tdb_store.image();

    // ---- Attack SecureXdb --------------------------------------------------
    let mut xdb = AttackTally::default();
    for offset in (4096..xdb_image.len()).step_by(211) {
        xdb.probes += 1;
        let data = Arc::new(MemStore::from_bytes(xdb_image.clone()));
        data.tamper(offset as u64, 0x40);
        let open = SecureXdb::open(
            data as SharedUntrusted,
            Arc::new(MemStore::from_bytes(xdb_wal.image())) as SharedUntrusted,
            Arc::clone(&xdb_register) as SharedTrusted,
            SecureXdbConfig::paper_default(xdb_key.clone()),
        );
        match open {
            Err(_) => xdb.detected += 1,
            Ok(db) => {
                let mut any_wrong = false;
                let mut any_err = false;
                let mut any_gone = false;
                for (id, body) in &records {
                    match db.get(*id) {
                        Ok(Some(got)) if &got == body => {}
                        Ok(Some(_)) => any_wrong = true,
                        Ok(None) => any_gone = true,
                        Err(_) => any_err = true,
                    }
                }
                if any_wrong {
                    xdb.silent += 1;
                } else if any_gone {
                    xdb.silently_deleted += 1;
                } else if any_err {
                    xdb.detected += 1;
                } else {
                    xdb.harmless += 1;
                }
            }
        }
    }

    // ---- The same attack against TDB ---------------------------------------
    let mut tdb = AttackTally::default();
    for offset in (512..tdb_image.len()).step_by(211) {
        tdb.probes += 1;
        let data = Arc::new(MemStore::from_bytes(tdb_image.clone()));
        data.tamper(offset as u64, 0x40);
        let open = ChunkStore::open(
            data as SharedUntrusted,
            tdb_backend(),
            tdb_key.clone(),
            ChunkStoreConfig::default(),
        );
        match open {
            Err(_) => tdb.detected += 1,
            Ok(store) => {
                let mut any_wrong = false;
                let mut any_err = false;
                for (c, (_, body)) in tdb_ids.iter().zip(records.iter()) {
                    match store.read(*c) {
                        Ok(got) if &got == body => {}
                        Ok(_) => any_wrong = true,
                        Err(_) => any_err = true,
                    }
                }
                if any_wrong {
                    tdb.silent += 1;
                } else if any_err {
                    tdb.detected += 1;
                } else {
                    tdb.harmless += 1;
                }
            }
        }
    }

    eprintln!("layered XDB: {xdb:?}");
    eprintln!("TDB:         {tdb:?}");

    // The invariants the paper's architecture argues for:
    // 1. TDB never serves silently wrong or silently deleted data.
    assert_eq!(tdb.silent, 0, "TDB returned wrong data silently");
    // 2. The layered system, like TDB, must not serve *wrong bytes* (its
    //    own record hashes cover that)…
    assert_eq!(xdb.silent, 0, "SecureXdb returned wrong data silently");
    // 3. …but the layered system's unprotected surface is real: some
    //    probes must have landed in XDB metadata and needed the indirect
    //    paths (decrypt failure, tree bookkeeping) to surface at all, and
    //    TDB detects a substantially larger share of probes outright
    //    because its metadata is itself hash-linked.
    assert!(tdb.detected > 0 && xdb.detected > 0);
}
