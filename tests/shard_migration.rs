//! Shard-manager torture: crash-safe online partition migration and
//! fault-isolated shards.
//!
//! The properties under test (ISSUE 6):
//!
//! - Killing either shard (or the whole process) at *every* migration step
//!   loses no acknowledged write: on reopen the migration resumes past
//!   `CutOver` or rolls back to a fully consistent source, and the routing
//!   table always names exactly one authoritative copy.
//! - Swept storage faults (planned write/read errors at every index,
//!   seeded mixed plans) during a migration leave the fleet serviceable:
//!   the migration completes or rolls back, and convergence is reached by
//!   re-running heal + resume.
//! - A tampered or truncated transfer stream is detected on ingest and
//!   never installed.
//! - A Degraded shard is an isolated fault domain: its partitions go
//!   read-only while other shards keep serving, and evacuation migrates
//!   its partitions off the frozen (read-only) source.
//! - Commits racing a cutover see a *transient* [`CoreError::Busy`], never
//!   a lost write.
//! - The per-shard labelled counters fire on all of those paths.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tdb::{
    ChunkStoreConfig, CryptoParams, LogicalId, MigrationOutcome, MigrationState, MigrationStep,
    ShardId, ShardManager, ShardOp, ShardSpec, StoreHealth, TrustedBackend, ValidationMode,
};
use tdb_core::metrics::{self, counters};
use tdb_core::{CoreError, FaultClass};
use tdb_crypto::SecretKey;
use tdb_storage::{
    ArchivalStore, CounterOverTrusted, CrashStore, ErrorStore, FaultPlan, MemArchive, MemStore,
    MemTrustedStore, PlannedFaultStore, SharedUntrusted, TrustedStore,
};

fn config() -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 4096,
        checkpoint_threshold: 8,
        validation: ValidationMode::Counter {
            delta_ut: 5,
            delta_tu: 0,
        },
        ..ChunkStoreConfig::default()
    }
}

fn counter_backend(register: &Arc<MemTrustedStore>) -> TrustedBackend {
    TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
        Arc::clone(register) as Arc<dyn TrustedStore>
    )))
}

/// Acknowledged writes only: rank → bytes, per logical partition.
type Model = BTreeMap<u64, Vec<u8>>;

fn seed_data(mgr: &ShardManager, logical: LogicalId, n: u64) -> Model {
    let mut model = Model::new();
    for i in 0..n {
        let rank = mgr.allocate_chunk(logical).unwrap();
        let bytes = vec![(i % 250) as u8 + 1; 48 + (i as usize % 80)];
        mgr.commit(
            logical,
            vec![ShardOp::Write {
                rank,
                bytes: bytes.clone(),
            }],
        )
        .unwrap();
        model.insert(rank, bytes);
    }
    model
}

fn assert_model(mgr: &ShardManager, logical: LogicalId, model: &Model, ctx: &str) {
    for (rank, bytes) in model {
        assert_eq!(
            &mgr.read(logical, *rank)
                .unwrap_or_else(|e| panic!("{ctx}: read {logical} rank {rank}: {e}")),
            bytes,
            "{ctx}: {logical} rank {rank} content"
        );
    }
}

// ---------------------------------------------------------------------------
// CrashStore fleet: power-loss simulation with per-shard disk images.
// ---------------------------------------------------------------------------

struct Fleet {
    secret: SecretKey,
    registers: Vec<Arc<MemTrustedStore>>,
    shards: Vec<Arc<CrashStore>>,
    journal: Arc<CrashStore>,
    transfer: Arc<MemArchive>,
}

impl Fleet {
    fn new(n: usize) -> (Fleet, ShardManager) {
        let fleet = Fleet {
            secret: SecretKey::random(24),
            registers: (0..n).map(|_| Arc::new(MemTrustedStore::new(64))).collect(),
            shards: (0..n)
                .map(|_| Arc::new(CrashStore::new(Arc::new(MemStore::new())).unwrap()))
                .collect(),
            journal: Arc::new(CrashStore::new(Arc::new(MemStore::new())).unwrap()),
            transfer: Arc::new(MemArchive::new()),
        };
        let manager = ShardManager::create(
            fleet.specs(),
            Arc::clone(&fleet.journal) as SharedUntrusted,
            Arc::clone(&fleet.transfer) as Arc<dyn ArchivalStore>,
            fleet.secret.clone(),
        )
        .unwrap();
        (fleet, manager)
    }

    fn specs(&self) -> Vec<ShardSpec> {
        self.shards
            .iter()
            .zip(&self.registers)
            .map(|(s, r)| ShardSpec {
                untrusted: Arc::clone(s) as SharedUntrusted,
                trusted: counter_backend(r),
                config: config(),
            })
            .collect()
    }

    /// Simulates a machine crash: the `kill` shard loses every unflushed
    /// write, everyone else keeps theirs (acknowledged state is flushed
    /// either way, so this spans both extremes of cache loss). The trusted
    /// registers survive by definition — they are the trusted hardware.
    fn crash(&mut self, kill: Option<usize>) {
        let images: Vec<Vec<u8>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if Some(i) == kill {
                    s.crash_lose_all()
                } else {
                    s.crash_keep_all()
                }
            })
            .collect();
        let journal_image = self.journal.crash_lose_all();
        self.shards = images
            .into_iter()
            .map(|img| Arc::new(CrashStore::new(Arc::new(MemStore::from_bytes(img))).unwrap()))
            .collect();
        self.journal =
            Arc::new(CrashStore::new(Arc::new(MemStore::from_bytes(journal_image))).unwrap());
    }

    fn reopen(&self) -> tdb_core::Result<ShardManager> {
        ShardManager::open(
            self.specs(),
            Arc::clone(&self.journal) as SharedUntrusted,
            Arc::clone(&self.transfer) as Arc<dyn ArchivalStore>,
            self.secret.clone(),
        )
    }
}

const ALL_STEPS: [MigrationStep; 9] = [
    MigrationStep::Prepared,
    MigrationStep::SnapshotTaken,
    MigrationStep::SnapshotShipped,
    MigrationStep::Restored,
    MigrationStep::DeltaDraining,
    MigrationStep::DeltaShipped,
    MigrationStep::DeltaApplied,
    MigrationStep::CutOver,
    MigrationStep::Completed,
];

#[test]
fn migration_moves_partition_and_survives_reopen() {
    let (mut fleet, mgr) = Fleet::new(2);
    let l = mgr.create_partition(CryptoParams::paper_default()).unwrap();
    let model = seed_data(&mgr, l, 12);
    let (src, src_pid) = mgr.locate(l).unwrap();
    assert_eq!(src, ShardId(0));

    let before = metrics::snapshot();
    assert_eq!(
        mgr.migrate(l, ShardId(1)).unwrap(),
        MigrationOutcome::Completed
    );
    let after = metrics::snapshot();
    assert!(
        after.labeled(counters::MIGRATIONS_STARTED, 0)
            > before.labeled(counters::MIGRATIONS_STARTED, 0)
    );
    assert!(
        after.labeled(counters::MIGRATIONS_COMPLETED, 0)
            > before.labeled(counters::MIGRATIONS_COMPLETED, 0)
    );

    assert_eq!(mgr.locate(l).unwrap().0, ShardId(1));
    assert_model(&mgr, l, &model, "after migrate");
    // The source copy, its snapshots, and the transfer objects are gone.
    assert!(!mgr
        .shard_store(ShardId(0))
        .unwrap()
        .partition_exists(src_pid));
    assert_eq!(fleet.transfer.size_of("mig-0-full"), None);
    assert_eq!(fleet.transfer.size_of("mig-0-delta"), None);

    // Post-migration writes land on the new shard and survive a crash.
    let rank = mgr.allocate_chunk(l).unwrap();
    mgr.commit(
        l,
        vec![ShardOp::Write {
            rank,
            bytes: b"after the move".to_vec(),
        }],
    )
    .unwrap();
    fleet.crash(None);
    drop(mgr);
    let mgr = fleet.reopen().unwrap();
    assert_eq!(mgr.locate(l).unwrap().0, ShardId(1));
    assert_model(&mgr, l, &model, "after reopen");
    assert_eq!(mgr.read(l, rank).unwrap(), b"after the move");
    assert!(mgr.migrations().iter().all(|r| r.state.is_terminal()));
}

#[test]
fn inline_failure_at_every_step_rolls_back_or_completes() {
    for &step in &ALL_STEPS {
        let (_fleet, mgr) = Fleet::new(2);
        let l = mgr.create_partition(CryptoParams::paper_default()).unwrap();
        let model = seed_data(&mgr, l, 6);
        let (src, src_pid) = mgr.locate(l).unwrap();

        mgr.set_migration_observer(Some(Arc::new(move |_mid, s| {
            if s == step {
                Err(format!("inline fault at {s:?}"))
            } else {
                Ok(())
            }
        })));
        let err = mgr.migrate(l, ShardId(1)).unwrap_err();
        assert!(
            err.to_string().contains("inline fault"),
            "step {step:?}: unexpected error {err}"
        );
        mgr.set_migration_observer(None);

        // Inline recovery already ran: the record is terminal and routing
        // names exactly one authoritative copy.
        let recs = mgr.migrations();
        assert_eq!(recs.len(), 1);
        let rec = &recs[0];
        assert!(
            rec.state.is_terminal(),
            "step {step:?}: left non-terminal state {}",
            rec.state
        );
        let (now, now_pid) = mgr.locate(l).unwrap();
        match rec.state {
            MigrationState::RolledBack => {
                assert_eq!((now, now_pid), (src, src_pid), "step {step:?}");
                assert!(
                    !mgr.shard_store(ShardId(1))
                        .unwrap()
                        .partition_exists(rec.dst_pid),
                    "step {step:?}: rollback left a replica on the destination"
                );
            }
            MigrationState::Completed => {
                assert_eq!((now, now_pid), (ShardId(1), rec.dst_pid), "step {step:?}");
                assert!(
                    !mgr.shard_store(src).unwrap().partition_exists(src_pid),
                    "step {step:?}: completion left the source copy behind"
                );
            }
            other => panic!("step {step:?}: unexpected terminal state {other}"),
        }
        assert_model(&mgr, l, &model, &format!("step {step:?}"));

        // Writes flow again (the pause never outlives the migration) and a
        // clean retry finishes the move.
        let rank = mgr.allocate_chunk(l).unwrap();
        mgr.commit(
            l,
            vec![ShardOp::Write {
                rank,
                bytes: b"post-recovery".to_vec(),
            }],
        )
        .unwrap();
        if mgr.locate(l).unwrap().0 != ShardId(1) {
            assert_eq!(
                mgr.migrate(l, ShardId(1)).unwrap(),
                MigrationOutcome::Completed,
                "step {step:?}: retry"
            );
        }
        assert_model(&mgr, l, &model, &format!("step {step:?} after retry"));
        assert_eq!(mgr.read(l, rank).unwrap(), b"post-recovery");
    }
}

/// One crash-sweep case: fail the migration with a simulated process death
/// at `step` (no inline recovery), then power-cycle the fleet with `kill`
/// losing its write cache, reopen, and check every invariant.
fn crash_sweep_case(step: MigrationStep, kill: Option<usize>) {
    let ctx = format!("step {step:?} kill {kill:?}");
    let (mut fleet, mgr) = Fleet::new(2);
    let l = mgr.create_partition(CryptoParams::paper_default()).unwrap();
    let model = seed_data(&mgr, l, 8);
    // A bystander partition on the destination shard: its writes must
    // survive every crash too.
    let l2 = mgr.create_partition(CryptoParams::paper_default()).unwrap();
    let model2 = seed_data(&mgr, l2, 4);
    assert_eq!(
        mgr.locate(l2).unwrap().0,
        ShardId(1),
        "{ctx}: bystander placement"
    );
    let (src, src_pid) = mgr.locate(l).unwrap();
    assert_eq!(src, ShardId(0), "{ctx}: source placement");

    mgr.set_migration_observer(Some(Arc::new(move |_mid, s| {
        if s == step {
            Err(format!("crash at {s:?}"))
        } else {
            Ok(())
        }
    })));
    let before = metrics::snapshot();
    mgr.migrate(l, ShardId(1)).unwrap_err();

    // Power loss: no inline recovery ran; the journal speaks on reopen.
    fleet.crash(kill);
    drop(mgr);
    let mgr = fleet.reopen().unwrap();
    // Converge anything a momentarily unreachable shard left Pending.
    for _ in 0..3 {
        mgr.resume_migrations();
    }
    let after = metrics::snapshot();

    let recs = mgr.migrations();
    assert_eq!(recs.len(), 1, "{ctx}");
    let rec = &recs[0];
    assert!(
        rec.state.is_terminal(),
        "{ctx}: stuck in {} after resume",
        rec.state
    );
    if step != MigrationStep::Completed {
        // A crash after the Completed record leaves nothing to resume.
        assert!(
            after.labeled(counters::MIGRATIONS_RESUMED, 0)
                > before.labeled(counters::MIGRATIONS_RESUMED, 0),
            "{ctx}: resume counter must fire"
        );
    }
    let (now, now_pid) = mgr.locate(l).unwrap();
    match rec.state {
        MigrationState::Completed => {
            assert_eq!((now, now_pid), (ShardId(1), rec.dst_pid), "{ctx}");
            assert!(
                !mgr.shard_store(src).unwrap().partition_exists(src_pid),
                "{ctx}: completion left the source copy behind"
            );
        }
        MigrationState::RolledBack => {
            assert_eq!((now, now_pid), (src, src_pid), "{ctx}");
            assert!(
                !mgr.shard_store(ShardId(1))
                    .unwrap()
                    .partition_exists(rec.dst_pid),
                "{ctx}: rollback left a replica on the destination"
            );
        }
        other => panic!("{ctx}: unexpected terminal state {other}"),
    }

    // No acknowledged write lost, on the migrating partition or the
    // bystander; every byte served went through chunk validation.
    assert_model(&mgr, l, &model, &ctx);
    assert_model(&mgr, l2, &model2, &ctx);

    // The fleet is fully serviceable after recovery.
    for logical in [l, l2] {
        let rank = mgr.allocate_chunk(logical).unwrap();
        mgr.commit(
            logical,
            vec![ShardOp::Write {
                rank,
                bytes: b"post-crash".to_vec(),
            }],
        )
        .unwrap_or_else(|e| panic!("{ctx}: post-crash commit on {logical}: {e}"));
    }
    if mgr.locate(l).unwrap().0 != ShardId(1) {
        assert_eq!(
            mgr.migrate(l, ShardId(1)).unwrap(),
            MigrationOutcome::Completed,
            "{ctx}: clean retry"
        );
        assert_model(&mgr, l, &model, &format!("{ctx} after retry"));
    }
}

#[test]
fn crash_during_migration_small_sweep() {
    for &step in &[
        MigrationStep::SnapshotShipped,
        MigrationStep::DeltaDraining,
        MigrationStep::CutOver,
    ] {
        for kill in [None, Some(0), Some(1)] {
            crash_sweep_case(step, kill);
        }
    }
}

#[test]
#[ignore = "exhaustive migration kill sweep; run by the release migration-torture CI step"]
fn crash_during_migration_full_sweep() {
    for &step in &ALL_STEPS {
        for kill in [None, Some(0), Some(1)] {
            crash_sweep_case(step, kill);
        }
    }
}

// ---------------------------------------------------------------------------
// Planned-fault fleet: swept storage faults during a migration.
// ---------------------------------------------------------------------------

struct FaultFleet {
    planned: Vec<Arc<PlannedFaultStore>>,
}

impl FaultFleet {
    fn new(n: usize) -> (FaultFleet, ShardManager) {
        let planned: Vec<Arc<PlannedFaultStore>> = (0..n)
            .map(|_| {
                Arc::new(PlannedFaultStore::new(
                    Arc::new(MemStore::new()),
                    FaultPlan::new(),
                ))
            })
            .collect();
        let specs = planned
            .iter()
            .map(|p| ShardSpec {
                untrusted: Arc::clone(p) as SharedUntrusted,
                trusted: counter_backend(&Arc::new(MemTrustedStore::new(64))),
                config: config(),
            })
            .collect();
        let manager = ShardManager::create(
            specs,
            Arc::new(MemStore::new()) as SharedUntrusted,
            Arc::new(MemArchive::new()) as Arc<dyn ArchivalStore>,
            SecretKey::random(24),
        )
        .unwrap();
        (FaultFleet { planned }, manager)
    }

    fn clear_plans(&self) {
        for p in &self.planned {
            p.set_plan(FaultPlan::new());
        }
    }
}

/// Heal + resume until every migration record is terminal.
fn converge(mgr: &ShardManager, ctx: &str) {
    for _ in 0..5 {
        for i in 0..mgr.shard_count() as u32 {
            let _ = mgr.try_heal(ShardId(i));
        }
        mgr.resume_migrations();
        if mgr.migrations().iter().all(|r| r.state.is_terminal()) {
            return;
        }
    }
    let states: Vec<String> = mgr
        .migrations()
        .iter()
        .map(|r| r.state.to_string())
        .collect();
    panic!("{ctx}: migrations failed to converge: {states:?}");
}

/// One planned-fault case: arm `plan` on `target` (relative indices are
/// rebased onto its current op counters by the caller), run a migration,
/// then converge and check the invariants.
fn fault_plan_case(
    fleet: &FaultFleet,
    mgr: &ShardManager,
    target: usize,
    plan: FaultPlan,
    ctx: &str,
) {
    let l = mgr.create_partition(CryptoParams::paper_default()).unwrap();
    let model = seed_data(mgr, l, 6);
    let src = mgr.locate(l).unwrap().0;
    let dst = ShardId(if src.0 == 0 { 1 } else { 0 });

    fleet.planned[target].set_plan(plan);
    let _ = mgr.migrate(l, dst); // Ok, or Err with inline recovery run.
    fleet.clear_plans();
    converge(mgr, ctx);

    // Acknowledged data survived the faulted migration, wherever it lives.
    assert_model(mgr, l, &model, ctx);

    // Some degradations (a counter left ahead by a failed checkpoint)
    // cannot heal in place and need a reopen; the fleet still converges by
    // evacuating the read-only shard — reads never stopped either way.
    let here = mgr.locate(l).unwrap().0;
    if !shard_live(mgr, here) {
        for (el, outcome) in mgr.evacuate(here).unwrap() {
            assert_eq!(
                outcome,
                MigrationOutcome::Completed,
                "{ctx}: evacuating {el} off the unhealable shard"
            );
        }
        assert_model(mgr, l, &model, &format!("{ctx} after evacuation"));
    }

    // The partition is writable again on a live home, and converges to the
    // requested placement whenever that destination is live.
    let rank = mgr.allocate_chunk(l).unwrap();
    mgr.commit(
        l,
        vec![ShardOp::Write {
            rank,
            bytes: b"post-fault".to_vec(),
        }],
    )
    .unwrap_or_else(|e| panic!("{ctx}: post-fault commit: {e}"));
    if shard_live(mgr, dst) && mgr.locate(l).unwrap().0 != dst {
        assert_eq!(
            mgr.migrate(l, dst).unwrap(),
            MigrationOutcome::Completed,
            "{ctx}: clean retry"
        );
        assert_model(mgr, l, &model, &format!("{ctx} after retry"));
    }
    // Retire the partition so per-case state stays bounded in sweeps.
    mgr.dealloc_partition(l).unwrap();
}

fn shard_live(mgr: &ShardManager, s: ShardId) -> bool {
    mgr.shard_store(s)
        .map(|st| st.health() == StoreHealth::Live)
        .unwrap_or(false)
}

fn fleet_fully_live(mgr: &ShardManager) -> bool {
    (0..mgr.shard_count() as u32).all(|i| shard_live(mgr, ShardId(i)))
}

fn write_fault_sweep(indices: std::ops::Range<u64>) {
    for target in [0usize, 1usize] {
        let (mut fleet, mut mgr) = FaultFleet::new(2);
        for i in indices.clone() {
            let base = fleet.planned[target].write_ops();
            let plan = FaultPlan::new().write_error_at(base + i);
            fault_plan_case(
                &fleet,
                &mgr,
                target,
                plan,
                &format!("write fault at +{i} on shard{target}"),
            );
            if !fleet_fully_live(&mgr) {
                // A shard that needs a reopen to heal was evacuated above;
                // start the next case from a fresh, fully live fleet.
                let (f, m) = FaultFleet::new(2);
                fleet = f;
                mgr = m;
            }
        }
    }
}

#[test]
fn write_faults_during_migration_small_sweep() {
    write_fault_sweep(0..8);
}

#[test]
#[ignore = "exhaustive write-index sweep; run by the release migration-torture CI step"]
fn write_faults_during_migration_full_sweep() {
    write_fault_sweep(0..48);
}

#[test]
#[ignore = "seeded mixed-fault sweep; run by the release migration-torture CI step"]
fn seeded_faults_during_migration_sweep() {
    for target in [0usize, 1usize] {
        let (mut fleet, mut mgr) = FaultFleet::new(2);
        for seed in 0..16u64 {
            // Mixed-kind plan, rebased onto the live op counters so every
            // case lands inside its own migration's op window.
            let base_w = fleet.planned[target].write_ops();
            let plan = FaultPlan::new()
                .write_error_at(base_w + (seed * 7) % 60)
                .torn_write_at(base_w + (seed * 11) % 60 + 1, (seed % 97) as u32)
                .transient_window(fleet.planned[target].total_ops() + seed * 13 % 150, 2);
            fault_plan_case(
                &fleet,
                &mgr,
                target,
                plan,
                &format!("seeded plan {seed} on shard{target}"),
            );
            if !fleet_fully_live(&mgr) {
                let (f, m) = FaultFleet::new(2);
                fleet = f;
                mgr = m;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Transfer-stream integrity: tampered or truncated shipments never install.
// ---------------------------------------------------------------------------

#[test]
fn tampered_transfer_is_detected_and_rolled_back() {
    for truncate in [false, true] {
        let (fleet, mgr) = Fleet::new(2);
        let l = mgr.create_partition(CryptoParams::paper_default()).unwrap();
        let model = seed_data(&mgr, l, 8);
        let (src, src_pid) = mgr.locate(l).unwrap();

        let transfer = Arc::clone(&fleet.transfer);
        mgr.set_migration_observer(Some(Arc::new(move |mid, step| {
            if step == MigrationStep::SnapshotShipped {
                let name = format!("mig-{mid}-full");
                let size = transfer.size_of(&name).expect("shipped object exists");
                if truncate {
                    assert!(transfer.truncate(&name, size / 2));
                } else {
                    assert!(transfer.tamper(&name, size / 2, 0x40));
                }
            }
            Ok(())
        })));
        let err = mgr.migrate(l, ShardId(1)).unwrap_err();
        mgr.set_migration_observer(None);
        assert!(
            !matches!(err, CoreError::Busy(_)),
            "truncate={truncate}: unexpected error {err}"
        );

        // The corrupt stream was rejected before anything installed; the
        // migration rolled back and the source still serves every byte.
        let recs = mgr.migrations();
        assert_eq!(
            recs[0].state,
            MigrationState::RolledBack,
            "truncate={truncate}"
        );
        assert!(
            !mgr.shard_store(ShardId(1))
                .unwrap()
                .partition_exists(recs[0].dst_pid),
            "truncate={truncate}: corrupt transfer must never install"
        );
        assert_eq!(mgr.locate(l).unwrap(), (src, src_pid));
        assert_model(&mgr, l, &model, "after tampered transfer");

        // An honest retry succeeds.
        assert_eq!(
            mgr.migrate(l, ShardId(1)).unwrap(),
            MigrationOutcome::Completed
        );
        assert_model(&mgr, l, &model, "after honest retry");
    }
}

// ---------------------------------------------------------------------------
// Cutover pause: racing commits see a transient Busy, never a lost write.
// ---------------------------------------------------------------------------

#[test]
fn commits_during_cutover_see_transient_busy() {
    let (_fleet, mgr) = Fleet::new(2);
    let mgr = Arc::new(mgr);
    let l = mgr.create_partition(CryptoParams::paper_default()).unwrap();
    let model = seed_data(&mgr, l, 4);

    let reached = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    {
        let reached = Arc::clone(&reached);
        let release = Arc::clone(&release);
        mgr.set_migration_observer(Some(Arc::new(move |_mid, step| {
            if step == MigrationStep::DeltaDraining {
                reached.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            Ok(())
        })));
    }

    let mgr2 = Arc::clone(&mgr);
    let migration = std::thread::spawn(move || mgr2.migrate(l, ShardId(1)));
    while !reached.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // The route is paused mid-drain: commits are refused with a transient
    // Busy (so RetryStore-style callers just try again), reads still serve.
    let err = mgr
        .commit(
            l,
            vec![ShardOp::Write {
                rank: 0,
                bytes: b"racer".to_vec(),
            }],
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::Busy(_)), "got {err}");
    assert_eq!(err.fault_class(), FaultClass::Transient);
    assert_model(&mgr, l, &model, "during drain");

    release.store(true, Ordering::SeqCst);
    assert_eq!(
        migration.join().unwrap().unwrap(),
        MigrationOutcome::Completed
    );
    mgr.set_migration_observer(None);

    // The retried write lands on the new shard.
    mgr.commit(
        l,
        vec![ShardOp::Write {
            rank: 0,
            bytes: b"retried".to_vec(),
        }],
    )
    .unwrap();
    assert_eq!(mgr.locate(l).unwrap().0, ShardId(1));
    assert_eq!(mgr.read(l, 0).unwrap(), b"retried");
}

#[test]
fn writes_landing_mid_migration_ship_in_the_delta() {
    let (_fleet, mgr) = Fleet::new(2);
    let mgr = Arc::new(mgr);
    let l = mgr.create_partition(CryptoParams::paper_default()).unwrap();
    let mut model = seed_data(&mgr, l, 4);

    // Hold the migration between the full restore and the drain pause, and
    // commit fresh chunks to the source in that window: they exist only in
    // the write delta, at ranks the snapshot never shipped.
    let reached = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    {
        let reached = Arc::clone(&reached);
        let release = Arc::clone(&release);
        mgr.set_migration_observer(Some(Arc::new(move |_mid, step| {
            if step == MigrationStep::Restored {
                reached.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            Ok(())
        })));
    }
    let mgr2 = Arc::clone(&mgr);
    let migration = std::thread::spawn(move || mgr2.migrate(l, ShardId(1)));
    while !reached.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    for i in 0..3u8 {
        let rank = mgr.allocate_chunk(l).unwrap();
        let bytes = vec![0xD0 + i; 100];
        mgr.commit(
            l,
            vec![ShardOp::Write {
                rank,
                bytes: bytes.clone(),
            }],
        )
        .unwrap();
        model.insert(rank, bytes);
    }
    release.store(true, Ordering::SeqCst);
    assert_eq!(
        migration.join().unwrap().unwrap(),
        MigrationOutcome::Completed
    );
    mgr.set_migration_observer(None);

    // Every mid-migration write arrived on the destination via the delta.
    assert_eq!(mgr.locate(l).unwrap().0, ShardId(1));
    assert_model(&mgr, l, &model, "delta-shipped writes");
}

// ---------------------------------------------------------------------------
// Fault isolation and degraded-shard evacuation.
// ---------------------------------------------------------------------------

struct IsolationRig {
    injector: Arc<ErrorStore>,
}

fn isolation_fleet() -> (IsolationRig, ShardManager) {
    let injector = Arc::new(ErrorStore::new(Arc::new(MemStore::new())));
    let specs = vec![
        ShardSpec {
            untrusted: Arc::clone(&injector) as SharedUntrusted,
            trusted: counter_backend(&Arc::new(MemTrustedStore::new(64))),
            config: config(),
        },
        ShardSpec {
            untrusted: Arc::new(MemStore::new()) as SharedUntrusted,
            trusted: counter_backend(&Arc::new(MemTrustedStore::new(64))),
            config: config(),
        },
    ];
    let manager = ShardManager::create(
        specs,
        Arc::new(MemStore::new()) as SharedUntrusted,
        Arc::new(MemArchive::new()) as Arc<dyn ArchivalStore>,
        SecretKey::random(24),
    )
    .unwrap();
    (IsolationRig { injector }, manager)
}

/// Drives shard 0 into Degraded by failing writes mid-commit, then heals
/// the device (the store stays read-only until `try_heal`).
fn degrade_shard0(rig: &IsolationRig, mgr: &ShardManager, victim: LogicalId) {
    for fail_at in 0..64u64 {
        rig.injector.fail_after_writes(fail_at);
        let rank = mgr.allocate_chunk(victim).unwrap();
        let result = mgr.commit(
            victim,
            vec![ShardOp::Write {
                rank,
                bytes: vec![0xAB; 256],
            }],
        );
        rig.injector.heal();
        if result.is_err() && matches!(mgr.health_all()[0].1, StoreHealth::Degraded { .. }) {
            return;
        }
    }
    panic!("the write-failure sweep never degraded shard 0");
}

#[test]
fn degraded_shard_is_isolated_and_evacuation_converges() {
    let (rig, mgr) = isolation_fleet();
    // Alternating placement: l0/l2 on shard0, l1/l3 on shard1.
    let logicals: Vec<LogicalId> = (0..4)
        .map(|_| mgr.create_partition(CryptoParams::paper_default()).unwrap())
        .collect();
    let models: Vec<Model> = logicals.iter().map(|&l| seed_data(&mgr, l, 5)).collect();
    assert_eq!(mgr.locate(logicals[0]).unwrap().0, ShardId(0));
    assert_eq!(mgr.locate(logicals[1]).unwrap().0, ShardId(1));

    let before = metrics::snapshot();
    degrade_shard0(&rig, &mgr, logicals[0]);
    let after = metrics::snapshot();
    assert!(
        after.labeled(counters::SHARD_DEGRADED, 0) > before.labeled(counters::SHARD_DEGRADED, 0),
        "degraded counter must fire for shard 0"
    );
    assert_eq!(
        after.labeled(counters::SHARD_DEGRADED, 1),
        before.labeled(counters::SHARD_DEGRADED, 1),
        "shard 1 never degraded"
    );

    // Fault isolation: shard 0's partitions are read-only, shard 1 serves
    // reads AND writes, untouched.
    let health = mgr.health_all();
    assert!(matches!(health[0].1, StoreHealth::Degraded { .. }));
    assert_eq!(health[1].1, StoreHealth::Live);
    let err = mgr
        .commit(
            logicals[0],
            vec![ShardOp::Write {
                rank: 0,
                bytes: b"refused".to_vec(),
            }],
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::DegradedMode(_)), "got {err}");
    for (l, m) in logicals.iter().zip(&models) {
        assert_model(&mgr, *l, m, "degraded fleet");
    }
    let rank = mgr.allocate_chunk(logicals[1]).unwrap();
    mgr.commit(
        logicals[1],
        vec![ShardOp::Write {
            rank,
            bytes: b"unaffected".to_vec(),
        }],
    )
    .unwrap();

    // Evacuation: every partition leaves the frozen shard; data intact and
    // writable on the new home.
    let outcomes = mgr.evacuate(ShardId(0)).unwrap();
    assert_eq!(outcomes.len(), 2);
    for (l, outcome) in &outcomes {
        assert_eq!(*outcome, MigrationOutcome::Completed, "evacuating {l}");
    }
    assert!(mgr.logicals_on(ShardId(0)).is_empty());
    for (l, m) in logicals.iter().zip(&models) {
        assert_model(&mgr, *l, m, "after evacuation");
        let rank = mgr.allocate_chunk(*l).unwrap();
        mgr.commit(
            *l,
            vec![ShardOp::Write {
                rank,
                bytes: b"writable again".to_vec(),
            }],
        )
        .unwrap();
    }
    let evac = metrics::snapshot();
    assert!(
        evac.labeled(counters::MIGRATIONS_COMPLETED, 0)
            >= after.labeled(counters::MIGRATIONS_COMPLETED, 0) + 2,
        "evacuations must count as completed migrations from shard 0"
    );

    // The healed shard rejoins the fleet and takes new placements.
    mgr.try_heal(ShardId(0)).unwrap();
    assert_eq!(mgr.health_all()[0].1, StoreHealth::Live);
    assert!(
        metrics::snapshot().labeled(counters::SHARD_HEALED, 0)
            > before.labeled(counters::SHARD_HEALED, 0),
        "heal counter must fire for shard 0"
    );
    let back = mgr.create_partition(CryptoParams::paper_default()).unwrap();
    assert_eq!(mgr.locate(back).unwrap().0, ShardId(0));
}

#[test]
fn poisoned_open_isolates_the_failed_shard() {
    let (mut fleet, mgr) = Fleet::new(2);
    let l0 = mgr.create_partition(CryptoParams::paper_default()).unwrap();
    let _m0 = seed_data(&mgr, l0, 4);
    let l1 = mgr.create_partition(CryptoParams::paper_default()).unwrap();
    let m1 = seed_data(&mgr, l1, 4);
    fleet.crash(None);
    drop(mgr);

    // Wreck shard 0's image wholesale: its open fails, the fleet's doesn't.
    fleet.shards[0] =
        Arc::new(CrashStore::new(Arc::new(MemStore::from_bytes(vec![0xFF; 512]))).unwrap());
    let mgr = fleet.reopen().unwrap();
    let health = mgr.health_all();
    assert!(matches!(health[0].1, StoreHealth::Poisoned { .. }));
    assert_eq!(health[1].1, StoreHealth::Live);

    // Shard 1 still serves reads and writes; shard 0's partitions fail
    // with Poisoned, not silently.
    assert_model(&mgr, l1, &m1, "poisoned sibling");
    let rank = mgr.allocate_chunk(l1).unwrap();
    mgr.commit(
        l1,
        vec![ShardOp::Write {
            rank,
            bytes: b"still serving".to_vec(),
        }],
    )
    .unwrap();
    let err = mgr.read(l0, 0).unwrap_err();
    assert!(matches!(err, CoreError::Poisoned(_)), "got {err}");
}
