//! Concurrency: serializability of concurrent transactions through the
//! object store's two-phase locking (§7), with lock-timeout retries.

use std::any::Any;
use std::sync::Arc;

use std::time::Duration;

use tdb::{ObjectStoreConfig, StoredObject, TrustedDbBuilder};
use tdb_crypto::SecretKey;

fn builder() -> TrustedDbBuilder {
    TrustedDbBuilder::new()
        .secret(SecretKey::random(24))
        .register_type(COUNTER_TAG, unpickle_counter)
        .object_config(ObjectStoreConfig {
            // Short timeouts keep deadlock-breaking cheap under the
            // deliberately contended workloads below.
            lock_timeout: Duration::from_millis(40),
            ..ObjectStoreConfig::default()
        })
}

#[derive(Debug)]
struct Counter {
    value: i64,
}

const COUNTER_TAG: u32 = 41;

impl StoredObject for Counter {
    fn type_tag(&self) -> u32 {
        COUNTER_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        self.value.to_le_bytes().to_vec()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_counter(b: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    Ok(Arc::new(Counter {
        value: i64::from_le_bytes(
            b.try_into()
                .map_err(|_| tdb_object::errors::ObjectError::BadPickle("counter".into()))?,
        ),
    }))
}

#[test]
fn concurrent_transfers_conserve_total() {
    let db = Arc::new(builder().build_in_memory().unwrap());
    let n_accounts = 8usize;
    let initial = 1000i64;
    let accounts: Vec<_> = (0..n_accounts)
        .map(|_| {
            db.run(|tx| tx.create(db.partition(), Arc::new(Counter { value: initial })))
                .unwrap()
        })
        .collect();

    // Threads move money between random account pairs. 2PL + retries must
    // keep the total invariant.
    crossbeam::scope(|scope| {
        for t in 0..4 {
            let db = Arc::clone(&db);
            let accounts = accounts.clone();
            scope.spawn(move |_| {
                let mut state = (t as u64 + 1) * 0x9E37_79B9;
                let mut rand = move |bound: usize| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state % bound as u64) as usize
                };
                let mut done = 0;
                while done < 50 {
                    let from = accounts[rand(accounts.len())];
                    let to = accounts[rand(accounts.len())];
                    if from == to {
                        continue;
                    }
                    // Consistent lock order (by id) avoids most deadlocks;
                    // timeouts break the rest, and `run` retries.
                    let result = db.run(|tx| {
                        let (first, second) = if from < to { (from, to) } else { (to, from) };
                        let a = tx.get_for_update::<Counter>(first)?;
                        let b = tx.get_for_update::<Counter>(second)?;
                        tx.put(first, Arc::new(Counter { value: a.value - 7 }))?;
                        tx.put(second, Arc::new(Counter { value: b.value + 7 }))?;
                        Ok(())
                    });
                    if result.is_ok() {
                        done += 1;
                    }
                }
            });
        }
    })
    .unwrap();

    let total: i64 = accounts
        .iter()
        .map(|id| {
            db.run(|tx| tx.get::<Counter>(*id).map(|c| c.value))
                .unwrap()
        })
        .sum();
    assert_eq!(
        total,
        initial * n_accounts as i64,
        "money was created or destroyed"
    );
}

#[test]
fn concurrent_increments_on_one_object_serialize() {
    let db = Arc::new(builder().build_in_memory().unwrap());
    let id = db
        .run(|tx| tx.create(db.partition(), Arc::new(Counter { value: 0 })))
        .unwrap();

    let threads = 6;
    let per_thread = 25;
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let db = Arc::clone(&db);
            scope.spawn(move |_| {
                let mut done = 0;
                while done < per_thread {
                    let result = db.run(|tx| {
                        let c = tx.get_for_update::<Counter>(id)?;
                        tx.put(id, Arc::new(Counter { value: c.value + 1 }))
                    });
                    if result.is_ok() {
                        done += 1;
                    }
                }
            });
        }
    })
    .unwrap();

    let value = db.run(|tx| tx.get::<Counter>(id).map(|c| c.value)).unwrap();
    assert_eq!(value, (threads * per_thread) as i64);
}

#[test]
fn readers_run_alongside_writer() {
    let db = Arc::new(builder().build_in_memory().unwrap());
    let ids: Vec<_> = (0..20)
        .map(|i| {
            db.run(|tx| tx.create(db.partition(), Arc::new(Counter { value: i })))
                .unwrap()
        })
        .collect();

    crossbeam::scope(|scope| {
        // One writer bumps everything repeatedly.
        {
            let db = Arc::clone(&db);
            let ids = ids.clone();
            scope.spawn(move |_| {
                for _ in 0..10 {
                    for &id in &ids {
                        let _ = db.run(|tx| {
                            let c = tx.get_for_update::<Counter>(id)?;
                            tx.put(
                                id,
                                Arc::new(Counter {
                                    value: c.value + 100,
                                }),
                            )
                        });
                    }
                }
            });
        }
        // Readers continuously observe committed values only.
        for _ in 0..3 {
            let db = Arc::clone(&db);
            let ids = ids.clone();
            scope.spawn(move |_| {
                for _ in 0..200 {
                    let i = 7 % ids.len();
                    if let Ok(v) = db.run(|tx| tx.get::<Counter>(ids[i]).map(|c| c.value)) {
                        // Committed values are the initial value plus some
                        // whole number of increments.
                        assert_eq!((v - i as i64) % 100, 0, "torn read: {v}");
                    }
                }
            });
        }
    })
    .unwrap();
}
