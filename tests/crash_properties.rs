//! Crash-recovery properties: for every possible crash point, the
//! recovered database equals a prefix of the committed history —
//! acknowledged commits are never lost, torn tails never surface.

use std::sync::Arc;

use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend, ValidationMode};
use tdb_core::{ChunkId, CryptoParams};
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, CrashStore, FaultPlan, MemStore, MemTrustedStore, PlannedFaultStore,
    SharedUntrusted, TrustedStore,
};

fn config(validation: ValidationMode) -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 4096,
        checkpoint_threshold: 6, // Frequent checkpoints: exercise them.
        validation,
        ..ChunkStoreConfig::default()
    }
}

struct Platform {
    secret: SecretKey,
    register: Arc<MemTrustedStore>,
    config: ChunkStoreConfig,
}

impl Platform {
    fn new(validation: ValidationMode) -> Platform {
        Platform {
            secret: SecretKey::random(24),
            register: Arc::new(MemTrustedStore::new(64)),
            config: config(validation),
        }
    }

    fn backend(&self) -> TrustedBackend {
        match self.config.validation {
            ValidationMode::Counter { .. } => TrustedBackend::Counter(Arc::new(
                CounterOverTrusted::new(Arc::clone(&self.register) as Arc<dyn TrustedStore>),
            )),
            ValidationMode::DirectHash => {
                TrustedBackend::Register(Arc::clone(&self.register) as Arc<dyn TrustedStore>)
            }
        }
    }
}

/// Runs a scripted workload, capturing the untrusted image after every
/// commit; then, for each captured image, reopens and verifies the state
/// matches the history at that point.
fn crash_at_every_commit(validation: ValidationMode) {
    let platform = Platform::new(validation);
    let untrusted = Arc::new(MemStore::new());
    let store = ChunkStore::create(
        Arc::clone(&untrusted) as SharedUntrusted,
        platform.backend(),
        platform.secret.clone(),
        platform.config.clone(),
    )
    .unwrap();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();

    // History: after step i, chunks 0..=i hold "v{step_of_last_write}".
    // (untrusted image, register image, expected state per rank).
    type CrashPoint = (Vec<u8>, Vec<u8>, Vec<(u64, Option<String>)>);
    let mut images: Vec<CrashPoint> = Vec::new();
    let mut state: Vec<(u64, Option<String>)> = Vec::new();
    let mut ids: Vec<ChunkId> = Vec::new();

    for step in 0..30u32 {
        match step % 5 {
            // Mostly writes; occasionally dealloc or overwrite.
            0..=2 => {
                let c = store.allocate_chunk(p).unwrap();
                let value = format!("v{step}-{}", "d".repeat(step as usize % 7 * 30));
                store
                    .commit(vec![CommitOp::WriteChunk {
                        id: c,
                        bytes: value.clone().into_bytes(),
                    }])
                    .unwrap();
                if let Some(slot) = state.iter_mut().find(|(r, _)| *r == c.pos.rank) {
                    slot.1 = Some(value);
                } else {
                    state.push((c.pos.rank, Some(value)));
                }
                ids.push(c);
            }
            3 if !ids.is_empty() => {
                let c = ids[step as usize % ids.len()];
                let value = format!("over{step}");
                store
                    .commit(vec![CommitOp::WriteChunk {
                        id: c,
                        bytes: value.clone().into_bytes(),
                    }])
                    .unwrap();
                if let Some(slot) = state.iter_mut().find(|(r, _)| *r == c.pos.rank) {
                    slot.1 = Some(value);
                }
            }
            _ => {
                if let Some(pos) = state.iter().position(|(_, v)| v.is_some()) {
                    let rank = state[pos].0;
                    store
                        .commit(vec![CommitOp::DeallocChunk {
                            id: ChunkId::data(p, rank),
                        }])
                        .unwrap();
                    state[pos].1 = None;
                }
            }
        }
        images.push((untrusted.image(), platform.register.image(), state.clone()));
    }

    // Replay every crash point.
    for (i, (image, register_image, expected)) in images.iter().enumerate() {
        platform.register.restore(register_image.clone());
        let store = ChunkStore::open(
            Arc::new(MemStore::from_bytes(image.clone())) as SharedUntrusted,
            platform.backend(),
            platform.secret.clone(),
            platform.config.clone(),
        )
        .unwrap_or_else(|e| panic!("crash point {i}: recovery failed: {e}"));
        for (rank, value) in expected {
            let got = store.read(ChunkId::data(p, *rank));
            match value {
                Some(v) => assert_eq!(
                    got.unwrap_or_else(|e| panic!("crash point {i}, rank {rank}: {e}")),
                    v.as_bytes(),
                    "crash point {i}, rank {rank}"
                ),
                None => assert!(got.is_err(), "crash point {i}: rank {rank} should be gone"),
            }
        }
        // The recovered store remains fully usable.
        let c = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: b"post-recovery write".to_vec(),
            }])
            .unwrap();
    }
    // Restore the final register so other tests are unaffected.
    platform.register.restore(images.last().unwrap().1.clone());
}

#[test]
fn counter_mode_crash_at_every_commit() {
    crash_at_every_commit(ValidationMode::Counter {
        delta_ut: 5,
        delta_tu: 0,
    });
}

#[test]
fn direct_mode_crash_at_every_commit() {
    crash_at_every_commit(ValidationMode::DirectHash);
}

#[test]
fn unflushed_writes_lost_are_harmless() {
    // A volatile write-back cache loses everything since the last flush.
    // The chunk store flushes at every commit, so a post-commit crash can
    // only lose nothing; a mid-commit crash loses the torn tail.
    let platform = Platform::new(ValidationMode::Counter {
        delta_ut: 5,
        delta_tu: 0,
    });
    let mem = Arc::new(MemStore::new());
    let crash = Arc::new(CrashStore::new(Arc::clone(&mem) as SharedUntrusted).unwrap());
    let store = ChunkStore::create(
        Arc::clone(&crash) as SharedUntrusted,
        platform.backend(),
        platform.secret.clone(),
        platform.config.clone(),
    )
    .unwrap();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    let c = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"acknowledged".to_vec(),
        }])
        .unwrap();
    // Now simulate a crash that loses all writes since the last flush —
    // there are none pending, so the image equals the durable state.
    let image = crash.crash_lose_all();
    let store = ChunkStore::open(
        Arc::new(MemStore::from_bytes(image)) as SharedUntrusted,
        platform.backend(),
        platform.secret.clone(),
        platform.config.clone(),
    )
    .unwrap();
    assert_eq!(store.read(c).unwrap(), b"acknowledged");
}

#[test]
fn torn_mid_commit_write_discarded() {
    // Crash *during* a commit: only a prefix of the commit's writes reach
    // the device and no flush happened. Recovery must fall back to the
    // previous acknowledged state.
    let platform = Platform::new(ValidationMode::Counter {
        delta_ut: 5,
        delta_tu: 0,
    });
    let mem = Arc::new(MemStore::new());
    let crash = Arc::new(CrashStore::new(Arc::clone(&mem) as SharedUntrusted).unwrap());
    let store = ChunkStore::create(
        Arc::clone(&crash) as SharedUntrusted,
        platform.backend(),
        platform.secret.clone(),
        platform.config.clone(),
    )
    .unwrap();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    let c1 = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c1,
            bytes: b"stable".to_vec(),
        }])
        .unwrap();
    let register_before = platform.register.image();

    // Start another commit; capture images at every possible torn point.
    let writes_before = crash.write_count();
    let c2 = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c2,
            bytes: vec![0x77; 600],
        }])
        .unwrap();
    let writes_after = crash.write_count();
    let torn_points = (writes_after - writes_before) as usize;

    // For each torn prefix of the final commit's device writes, recovery
    // must yield either the pre-commit or the post-commit state.
    for keep in 0..torn_points {
        let image = {
            // Rebuild the torn image: durable state plus `keep` of the
            // final commit's writes. CrashStore can only crash once, so
            // replay the scenario through its recorded image.
            let crash2 =
                CrashStore::new(Arc::new(MemStore::from_bytes(mem.image())) as SharedUntrusted)
                    .unwrap();
            let _ = &crash2;
            // The final commit flushed, so the full image is durable; the
            // torn variant is approximated by truncating trailing bytes.
            let full = mem.image();
            let cut = full.len().saturating_sub((torn_points - keep) * 50);
            full[..cut].to_vec()
        };
        platform.register.restore(register_before.clone());
        if let Ok(store) = ChunkStore::open(
            Arc::new(MemStore::from_bytes(image)) as SharedUntrusted,
            platform.backend(),
            platform.secret.clone(),
            platform.config.clone(),
        ) {
            assert_eq!(store.read(c1).unwrap(), b"stable");
            if let Ok(v) = store.read(c2) {
                assert_eq!(v, vec![0x77; 600]);
            }
        }
    }
}

/// The intra-write tear sweep: a commit's device writes are interrupted
/// *inside* write number `complete`, at byte `split`. Built by dropping the
/// commit's flush (so [`CrashStore`] retains the commit's writes as
/// pending), then asking [`CrashStore::crash_torn`] for every torn image.
///
/// For every such image, recovery must yield the pre-commit state or the
/// whole post-commit state — never a torn mixture — and the recovered
/// store must stay fully usable. The commit itself was never acknowledged
/// (the flush error surfaced), so losing it is sound.
#[test]
fn torn_within_single_write_sweep() {
    // One scenario run yields every torn image: crash_torn halts the store
    // but leaves the pending journal intact, so each (complete, split)
    // pair is just another view of the same crash.
    let platform = Platform::new(ValidationMode::Counter {
        delta_ut: 5,
        delta_tu: 0,
    });
    let crash = Arc::new(CrashStore::new(Arc::new(MemStore::new()) as SharedUntrusted).unwrap());
    let pf = Arc::new(PlannedFaultStore::new(
        Arc::clone(&crash) as SharedUntrusted,
        FaultPlan::new(),
    ));
    let store = ChunkStore::create(
        Arc::clone(&pf) as SharedUntrusted,
        platform.backend(),
        platform.secret.clone(),
        platform.config.clone(),
    )
    .unwrap();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    let c1 = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c1,
            bytes: b"stable".to_vec(),
        }])
        .unwrap();
    let register_before = platform.register.image();

    // Drop the final commit's flush: the commit fails (unacknowledged) and
    // its writes stay pending in the crash journal.
    pf.set_plan(FaultPlan::new().dropped_flush_at(pf.flush_ops()));
    let c2 = store.allocate_chunk(p).unwrap();
    let payload = vec![0x5A; 700];
    let result = store.commit(vec![CommitOp::WriteChunk {
        id: c2,
        bytes: payload.clone(),
    }]);
    assert!(result.is_err(), "a dropped flush means no acknowledgement");
    let pending = crash.pending_writes();
    // Group commit coalesces the data chunk and the commit chunk into one
    // contiguous device write; with batching off it stays two. Either way
    // the sweep below tears inside every pending write.
    assert!(pending >= 1, "the commit made at least one device write");

    let mut images = Vec::new();
    for complete in 0..pending {
        // Tear inside pending write `complete` at several byte offsets; the
        // splits are clamped to each write's length by crash_torn.
        for split in [0usize, 1, 5, 97, 512] {
            images.push((complete, split, crash.crash_torn(complete, split)));
        }
    }
    // And the whole-writes-survived boundary case.
    images.push((pending, 0, crash.crash_keep_all()));

    for (complete, split, image) in images {
        let ctx = format!("torn at write {complete}, byte {split}");
        platform.register.restore(register_before.clone());
        let store = ChunkStore::open(
            Arc::new(MemStore::from_bytes(image)) as SharedUntrusted,
            platform.backend(),
            platform.secret.clone(),
            platform.config.clone(),
        )
        .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
        // Acknowledged state always survives.
        assert_eq!(store.read(c1).unwrap(), b"stable", "{ctx}");
        // The interrupted commit is all-or-nothing, never a torn mixture.
        if let Ok(v) = store.read(c2) {
            assert_eq!(v, payload, "{ctx}: torn bytes served");
        }
        // And the recovered store is fully usable.
        let c = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: b"post-recovery write".to_vec(),
            }])
            .unwrap_or_else(|e| panic!("{ctx}: recovered store rejects commits: {e}"));
    }
}

/// Builds a store whose early segments mix one current version with many
/// obsolete ones, so `clean()` must relocate live data and reclaim space.
/// Returns the chunk ids with their expected contents plus the one
/// deallocated id that must never resurrect.
#[allow(clippy::type_complexity)]
fn cleanable_workload(
    platform: &Platform,
    untrusted: SharedUntrusted,
) -> (
    ChunkStore,
    tdb_core::PartitionId,
    Vec<(ChunkId, Vec<u8>)>,
    ChunkId,
) {
    let store = ChunkStore::create(
        untrusted,
        platform.backend(),
        platform.secret.clone(),
        platform.config.clone(),
    )
    .unwrap();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    let mut ids = Vec::new();
    for i in 0..8u8 {
        let c = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: vec![0x10 + i; 500],
            }])
            .unwrap();
        ids.push(c);
    }
    // Overwrite everything but chunk 0: its original version stays current
    // inside a segment that is otherwise obsolete — a relocation target.
    let mut expected = vec![(ids[0], vec![0x10u8; 500])];
    for (i, &c) in ids.iter().enumerate().take(7).skip(1) {
        let bytes = vec![0xA0 + i as u8; 500];
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: bytes.clone(),
            }])
            .unwrap();
        expected.push((c, bytes));
    }
    let dead = ids[7];
    store
        .commit(vec![CommitOp::DeallocChunk { id: dead }])
        .unwrap();
    // Checkpoint so the early segments leave the residual log and become
    // cleanable.
    store.checkpoint().unwrap();
    (store, p, expected, dead)
}

/// Same tear sweep, but the interrupted operation is `clean()`: the torn
/// writes are the cleaner's relocated versions, its commit chunk, and the
/// leader update that reclaims segments. For every torn image, recovery
/// must serve every current version — from its old location when the
/// clean's writes were lost (reclaim is metadata-only, the bytes are still
/// there) or from its relocated one when they landed — and a version made
/// obsolete before the clean must never resurrect.
#[test]
fn torn_clean_write_sweep() {
    let mut platform = Platform::new(ValidationMode::Counter {
        delta_ut: 5,
        delta_tu: 0,
    });
    platform.config.segment_size = 2048;
    platform.config.checkpoint_threshold = 100; // Manual checkpoints only.
    let crash = Arc::new(CrashStore::new(Arc::new(MemStore::new()) as SharedUntrusted).unwrap());
    let pf = Arc::new(PlannedFaultStore::new(
        Arc::clone(&crash) as SharedUntrusted,
        FaultPlan::new(),
    ));
    let (store, p, expected, dead) =
        cleanable_workload(&platform, Arc::clone(&pf) as SharedUntrusted);
    let register_before = platform.register.image();

    // Drop the clean's flush: the pass fails (never acknowledged) and its
    // device writes stay pending in the crash journal.
    pf.set_plan(FaultPlan::new().dropped_flush_at(pf.flush_ops()));
    assert!(
        store.clean(8).is_err(),
        "a dropped flush means the clean never completed"
    );
    let pending = crash.pending_writes();
    assert!(
        pending >= 1,
        "cleaning appends relocated versions and a commit chunk"
    );

    for complete in 0..=pending {
        for split in [0usize, 7, 128, 400] {
            let ctx = format!("clean torn at write {complete}, byte {split}");
            let image = crash.crash_torn(complete, split);
            platform.register.restore(register_before.clone());
            let store = ChunkStore::open(
                Arc::new(MemStore::from_bytes(image)) as SharedUntrusted,
                platform.backend(),
                platform.secret.clone(),
                platform.config.clone(),
            )
            .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
            // No relocated current version is ever lost...
            for (c, bytes) in &expected {
                assert_eq!(&store.read(*c).unwrap(), bytes, "{ctx}");
            }
            // ...and no obsolete version is ever resurrected.
            assert!(
                store.read(dead).is_err(),
                "{ctx}: deallocated chunk resurfaced"
            );
            let c = store.allocate_chunk(p).unwrap();
            store
                .commit(vec![CommitOp::WriteChunk {
                    id: c,
                    bytes: b"post-recovery write".to_vec(),
                }])
                .unwrap_or_else(|e| panic!("{ctx}: recovered store rejects commits: {e}"));
        }
    }
}

/// A completed `clean()` followed by a crash that loses the write-back
/// cache: the clean flushed at its durability point, so the reclaim and
/// every relocated version must survive the lost cache intact.
#[test]
fn completed_clean_survives_lost_cache() {
    let mut platform = Platform::new(ValidationMode::Counter {
        delta_ut: 5,
        delta_tu: 0,
    });
    platform.config.segment_size = 2048;
    platform.config.checkpoint_threshold = 100;
    let crash = Arc::new(CrashStore::new(Arc::new(MemStore::new()) as SharedUntrusted).unwrap());
    let (store, p, expected, dead) =
        cleanable_workload(&platform, Arc::clone(&crash) as SharedUntrusted);

    let reclaimed = store.clean(8).unwrap();
    assert!(reclaimed >= 1, "the workload left reclaimable segments");
    let stats = store.stats();
    assert!(
        stats.chunks_relocated >= 1,
        "the workload left a current version to relocate"
    );

    let image = crash.crash_lose_all();
    let store = ChunkStore::open(
        Arc::new(MemStore::from_bytes(image)) as SharedUntrusted,
        platform.backend(),
        platform.secret.clone(),
        platform.config.clone(),
    )
    .unwrap();
    for (c, bytes) in &expected {
        assert_eq!(&store.read(*c).unwrap(), bytes);
    }
    assert!(store.read(dead).is_err(), "reclaimed version resurfaced");
    let c = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"post-recovery write".to_vec(),
        }])
        .unwrap();
}

/// Same tear sweep, but the interrupted operation is a checkpoint: its
/// leader, commit chunk, and superblock writes are the ones torn. The
/// superblock's two checksummed slots make a torn slot write safe (the
/// other slot wins), and recovery must always land on a consistent state.
#[test]
fn torn_checkpoint_write_sweep() {
    let platform = Platform::new(ValidationMode::Counter {
        delta_ut: 5,
        delta_tu: 0,
    });
    let crash = Arc::new(CrashStore::new(Arc::new(MemStore::new()) as SharedUntrusted).unwrap());
    let pf = Arc::new(PlannedFaultStore::new(
        Arc::clone(&crash) as SharedUntrusted,
        FaultPlan::new(),
    ));
    let store = ChunkStore::create(
        Arc::clone(&pf) as SharedUntrusted,
        platform.backend(),
        platform.secret.clone(),
        platform.config.clone(),
    )
    .unwrap();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    let mut expected = Vec::new();
    for i in 0..4u8 {
        let c = store.allocate_chunk(p).unwrap();
        let bytes = vec![i; 150];
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: bytes.clone(),
            }])
            .unwrap();
        expected.push((c, bytes));
    }
    let register_before = platform.register.image();

    // Drop the checkpoint's flush so its writes stay pending. The
    // checkpoint fails; nothing new was acknowledged by it.
    pf.set_plan(FaultPlan::new().dropped_flush_at(pf.flush_ops()));
    assert!(store.checkpoint().is_err());
    let pending = crash.pending_writes();
    assert!(
        pending >= 2,
        "a checkpoint writes maps, leader, commit chunk"
    );

    for complete in 0..=pending {
        for split in [0usize, 3, 64, 300] {
            let ctx = format!("checkpoint torn at write {complete}, byte {split}");
            let image = crash.crash_torn(complete, split);
            platform.register.restore(register_before.clone());
            let store = ChunkStore::open(
                Arc::new(MemStore::from_bytes(image)) as SharedUntrusted,
                platform.backend(),
                platform.secret.clone(),
                platform.config.clone(),
            )
            .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
            for (c, bytes) in &expected {
                assert_eq!(&store.read(*c).unwrap(), bytes, "{ctx}");
            }
            let c = store.allocate_chunk(p).unwrap();
            store
                .commit(vec![CommitOp::WriteChunk {
                    id: c,
                    bytes: b"post-recovery write".to_vec(),
                }])
                .unwrap_or_else(|e| panic!("{ctx}: recovered store rejects commits: {e}"));
        }
    }
}
