//! MVCC through the `TrustedDb` facade: the builder knob, verifiable
//! reads with the pinned root digest, collections running unchanged under
//! snapshot isolation, and — the parity contract — `mvcc = off` leaving
//! the paper's single-writer device-op shape untouched.

use std::any::Any;
use std::sync::Arc;

use tdb::{IndexKey, IndexKind, StoredObject, TrustedBackend, TrustedDb, TrustedDbBuilder, Tx};
use tdb_crypto::SecretKey;
use tdb_object::errors::ObjectError;
use tdb_storage::{
    CounterOverTrusted, MemArchive, MemStore, MemTrustedStore, StatsSnapshot, TrustedStore,
    UntrustedStore,
};

#[derive(Debug, Clone, PartialEq)]
struct Note {
    author: String,
    body: String,
}

const NOTE_TAG: u32 = 91;

impl StoredObject for Note {
    fn type_tag(&self) -> u32 {
        NOTE_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for s in [&self.author, &self.body] {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_note(b: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    let mut off = 0usize;
    let mut get_str = || {
        let n = u32::from_le_bytes(b[off..off + 4].try_into().unwrap()) as usize;
        let s = String::from_utf8(b[off + 4..off + 4 + n].to_vec()).unwrap();
        off += 4 + n;
        s
    };
    let author = get_str();
    let body = get_str();
    Ok(Arc::new(Note { author, body }))
}

fn note_by_author(o: &dyn StoredObject) -> Option<Vec<u8>> {
    o.as_any()
        .downcast_ref::<Note>()
        .map(|n| IndexKey::new().str(&n.author).into_bytes())
}

fn note(author: &str, i: usize) -> Arc<Note> {
    Arc::new(Note {
        author: author.to_string(),
        body: format!("note body {i}"),
    })
}

struct Rig {
    db: TrustedDb,
    untrusted: Arc<MemStore>,
}

fn build(mvcc: Option<bool>) -> Rig {
    let untrusted = Arc::new(MemStore::new());
    let counter = Arc::new(CounterOverTrusted::new(
        Arc::new(MemTrustedStore::new(64)) as Arc<dyn TrustedStore>
    ));
    let mut builder = TrustedDbBuilder::new()
        // A fixed key keeps two builds byte-comparable.
        .secret(SecretKey::new(vec![7u8; 24]))
        .register_type(NOTE_TAG, unpickle_note)
        .register_extractor("note_by_author", note_by_author);
    if let Some(on) = mvcc {
        builder = builder.mvcc(on);
    }
    let db = builder
        .create(
            Arc::clone(&untrusted) as _,
            TrustedBackend::Counter(counter),
            Arc::new(MemArchive::new()),
        )
        .unwrap();
    Rig { db, untrusted }
}

/// The seed's single-writer workload: objects and an indexed collection
/// driven through legacy `Tx` transactions.
fn single_writer_workload(db: &TrustedDb) {
    let p = db.partition();
    let coll = db
        .run(|tx| {
            let coll = db.collections().create_collection(tx, p, "notes")?;
            db.collections().add_index(
                tx,
                coll,
                "by_author",
                "note_by_author",
                IndexKind::Sorted,
            )?;
            Ok(coll)
        })
        .unwrap();
    let ids: Vec<_> = (0..12)
        .map(|i| {
            db.run(|tx| {
                let id = tx.create(p, note(["ada", "bob", "eve"][i % 3], i))?;
                db.collections().add(tx, coll, id)?;
                Ok(id)
            })
            .unwrap()
        })
        .collect();
    db.run(|tx| {
        tx.put(ids[0], note("ada", 100))?;
        db.collections().remove(tx, coll, ids[5])
    })
    .unwrap();
    db.checkpoint().unwrap();
}

fn shape_of(rig: &Rig) -> StatsSnapshot {
    let mut snap = rig.untrusted.stats().snapshot();
    // Timings vary run to run; the *shape* is ops and bytes.
    snap.read_ns = 0;
    snap.write_ns = 0;
    snap.flush_ns = 0;
    snap
}

#[test]
fn mvcc_off_keeps_the_single_writer_device_op_shape() {
    // Baseline: the builder untouched (the seed's configuration).
    let baseline = build(None);
    single_writer_workload(&baseline.db);
    let expected = shape_of(&baseline);

    // Explicitly off: byte-for-byte the same device traffic.
    let off = build(Some(false));
    assert!(!off.db.objects().mvcc_enabled());
    single_writer_workload(&off.db);
    assert_eq!(shape_of(&off), expected);

    // On but unused: the knob adds no device traffic to the legacy path.
    let on = build(Some(true));
    assert!(on.db.objects().mvcc_enabled());
    single_writer_workload(&on.db);
    assert_eq!(shape_of(&on), expected);
}

#[test]
fn begin_mvcc_requires_the_knob() {
    let rig = build(None);
    assert!(matches!(
        rig.db.begin_mvcc().map(|_| ()),
        Err(tdb::TdbError::Object(ObjectError::MvccDisabled))
    ));
}

#[test]
fn facade_round_trip_with_verifiable_reads() {
    let rig = build(Some(true));
    let p = rig.db.partition();
    let id = rig.db.run_mvcc(|tx| tx.create(p, note("ada", 1))).unwrap();

    // The client pins the root digest, then verifies reads offline.
    let root = rig.db.snapshot_root().unwrap();
    let mut tx = rig.db.begin_mvcc().unwrap();
    let (read, proof) = tx.get_with_proof::<Note>(id).unwrap();
    assert_eq!(read.author, "ada");
    let proof = proof.expect("fresh snapshot reads prove");
    assert!(proof.verify(&root));
    assert!(tdb::verify_read_proof(&proof.proof, &proof.record, &root));
    tx.abort();

    // A later commit moves the root; the old digest rejects new proofs.
    rig.db.run_mvcc(|tx| tx.put(id, note("ada", 2))).unwrap();
    let new_root = rig.db.snapshot_root().unwrap();
    assert_ne!(root, new_root);
    let mut tx = rig.db.begin_mvcc().unwrap();
    let (_, proof) = tx.get_with_proof::<Note>(id).unwrap();
    let proof = proof.unwrap();
    assert!(proof.verify(&new_root));
    assert!(!proof.verify(&root));
    tx.abort();
}

#[test]
fn collections_run_unchanged_under_mvcc() {
    let rig = build(Some(true));
    let db = &rig.db;
    let p = db.partition();

    // The same collection code drives MvccTx through `Transactional`.
    let coll = db
        .run_mvcc(|tx| {
            let coll = db.collections().create_collection(tx, p, "notes")?;
            db.collections().add_index(
                tx,
                coll,
                "by_author",
                "note_by_author",
                IndexKind::Sorted,
            )?;
            Ok(coll)
        })
        .unwrap();
    for i in 0..9 {
        db.run_mvcc(|tx| {
            let id = tx.create(p, note(["ada", "bob", "eve"][i % 3], i))?;
            db.collections().add(tx, coll, id)
        })
        .unwrap();
    }

    let hits = db
        .run_mvcc(|tx| {
            db.collections().lookup(
                tx,
                coll,
                "by_author",
                &IndexKey::new().str("bob").into_bytes(),
            )
        })
        .unwrap();
    assert_eq!(hits.len(), 3);
    let len = db.run_mvcc(|tx| db.collections().len(tx, coll)).unwrap();
    assert_eq!(len, 9);

    // And the legacy Tx sees the same committed collection.
    let legacy_len = db
        .run(|tx: &mut Tx| db.collections().len(tx, coll))
        .unwrap();
    assert_eq!(legacy_len, 9);
}
