//! Lazy integrity through the `TrustedDb` facade: the builder knob, root
//! digests agreeing with the eager paper path, and — the parity contract —
//! the knob (off *or* on) leaving the device-op shape byte-identical: the
//! accumulator is pure CPU-side memoization and never changes what is read
//! from or written to the untrusted store.

use std::any::Any;
use std::sync::Arc;

use tdb::{StoredObject, TrustedBackend, TrustedDb, TrustedDbBuilder};
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, MemArchive, MemStore, MemTrustedStore, StatsSnapshot, TrustedStore,
    UntrustedStore,
};

#[derive(Debug, Clone, PartialEq)]
struct Note {
    body: String,
}

const NOTE_TAG: u32 = 93;

impl StoredObject for Note {
    fn type_tag(&self) -> u32 {
        NOTE_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        self.body.as_bytes().to_vec()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_note(b: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    Ok(Arc::new(Note {
        body: String::from_utf8(b.to_vec()).unwrap(),
    }))
}

fn note(i: usize) -> Arc<Note> {
    Arc::new(Note {
        body: format!("note body {i}"),
    })
}

struct Rig {
    db: TrustedDb,
    untrusted: Arc<MemStore>,
}

fn build(lazy: Option<bool>) -> Rig {
    let untrusted = Arc::new(MemStore::new());
    let counter = Arc::new(CounterOverTrusted::new(
        Arc::new(MemTrustedStore::new(64)) as Arc<dyn TrustedStore>
    ));
    let mut builder = TrustedDbBuilder::new()
        // A fixed key keeps two builds byte-comparable.
        .secret(SecretKey::new(vec![7u8; 24]))
        .register_type(NOTE_TAG, unpickle_note);
    if let Some(on) = lazy {
        builder = builder.lazy_integrity(on);
    }
    let db = builder
        .create(
            Arc::clone(&untrusted) as _,
            TrustedBackend::Counter(counter),
            Arc::new(MemArchive::new()),
        )
        .unwrap();
    Rig { db, untrusted }
}

/// A proof-heavy single-writer workload: batches of commits interleaved
/// with root queries (the path the accumulator memoizes), then a
/// checkpoint and more queries against the checkpointed tree.
fn proof_heavy_workload(db: &TrustedDb) -> Vec<tdb_crypto::HashValue> {
    let p = db.partition();
    let mut roots = Vec::new();
    let mut ids = Vec::new();
    for batch in 0..4 {
        for i in 0..6 {
            let id = db.run(|tx| tx.create(p, note(batch * 6 + i))).unwrap();
            ids.push(id);
        }
        // Mid-batch root queries: correct (and identical) in both modes.
        roots.push(db.snapshot_root().unwrap());
        roots.push(db.snapshot_root().unwrap());
    }
    db.run(|tx| tx.put(ids[0], note(100))).unwrap();
    db.run(|tx| tx.delete(ids[5])).unwrap();
    roots.push(db.snapshot_root().unwrap());
    db.checkpoint().unwrap();
    roots.push(db.snapshot_root().unwrap());
    db.run(|tx| tx.put(ids[1], note(200))).unwrap();
    roots.push(db.snapshot_root().unwrap());
    roots
}

fn shape_of(rig: &Rig) -> StatsSnapshot {
    let mut snap = rig.untrusted.stats().snapshot();
    // Timings vary run to run; the *shape* is ops and bytes.
    snap.read_ns = 0;
    snap.write_ns = 0;
    snap.flush_ns = 0;
    snap
}

#[test]
fn lazy_integrity_keeps_the_device_op_shape_and_roots() {
    // Baseline: the builder untouched (the seed's configuration).
    let baseline = build(None);
    let baseline_roots = proof_heavy_workload(&baseline.db);
    let expected = shape_of(&baseline);

    // Explicitly off: byte-for-byte the same device traffic.
    let off = build(Some(false));
    let off_roots = proof_heavy_workload(&off.db);
    assert_eq!(shape_of(&off), expected);
    assert_eq!(off_roots, baseline_roots);

    // On: the memo changes *when hashes are recomputed*, never what the
    // device sees — and every root digest matches the eager path.
    let on = build(Some(true));
    let on_roots = proof_heavy_workload(&on.db);
    assert_eq!(shape_of(&on), expected);
    assert_eq!(on_roots, baseline_roots);
}

#[test]
fn lazy_mode_actually_memoizes() {
    let on = build(Some(true));
    proof_heavy_workload(&on.db);
    let stats = on.db.chunks().stats();
    assert!(
        stats.lazy_hash_hits > 0,
        "repeated root queries should hit the memo: {stats:?}"
    );
    assert!(stats.lazy_hash_recomputes > 0);
    assert!(stats.lazy_invalidations > 0);

    // Eager stores never touch the accumulator.
    let off = build(Some(false));
    proof_heavy_workload(&off.db);
    let stats = off.db.chunks().stats();
    assert_eq!(stats.lazy_hash_hits, 0);
    assert_eq!(stats.lazy_hash_recomputes, 0);
    assert_eq!(stats.lazy_invalidations, 0);
}
