//! Group-commit torture: durability-before-ack under concurrency, crash
//! all-or-nothing per batch member, fault plans with batching on, and the
//! batching stats/parity contracts.
//!
//! The properties under test (ISSUE: group commit):
//!
//! - A waiter is never acknowledged before its batch's durability point:
//!   crashing with every unflushed write lost must preserve every
//!   acknowledged commit.
//! - A fault mid-batch fails members without poisoning the store, and
//!   recovery serves each member all-or-nothing — a multi-op commit is
//!   never half-applied.
//! - N concurrent commits cost fewer than N device flushes (the whole
//!   point), visible in the batch-size histogram and flush counters.
//! - `group_commit = false` reproduces the legacy write path's device-op
//!   shape exactly: two writes and one flush per single-chunk commit, no
//!   batches, no coalescing.

use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use tdb::{
    ChunkId, ChunkStore, ChunkStoreConfig, CommitOp, CryptoParams, PartitionId, TrustedBackend,
};
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, CrashStore, DiskModel, FaultKind, FaultPlan, MemStore, MemTrustedStore,
    PlannedFaultStore, SharedUntrusted, SimClock, SimDiskStore, TrustedStore, UntrustedStore,
};

const THREADS: usize = 8;

fn config() -> ChunkStoreConfig {
    ChunkStoreConfig {
        // No auto-checkpoints: commits alone drive the flush counts.
        checkpoint_threshold: 100_000,
        ..ChunkStoreConfig::default()
    }
}

struct Rig {
    secret: SecretKey,
    register: Arc<MemTrustedStore>,
    config: ChunkStoreConfig,
}

impl Rig {
    fn new(config: ChunkStoreConfig) -> Rig {
        Rig {
            secret: SecretKey::random(24),
            register: Arc::new(MemTrustedStore::new(64)),
            config,
        }
    }

    fn backend(&self) -> TrustedBackend {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&self.register) as Arc<dyn TrustedStore>,
        )))
    }

    fn create(&self, untrusted: SharedUntrusted) -> ChunkStore {
        ChunkStore::create(
            untrusted,
            self.backend(),
            self.secret.clone(),
            self.config.clone(),
        )
        .unwrap()
    }

    fn open(&self, untrusted: SharedUntrusted) -> tdb_core::Result<ChunkStore> {
        ChunkStore::open(
            untrusted,
            self.backend(),
            self.secret.clone(),
            self.config.clone(),
        )
    }
}

fn setup_partition(store: &ChunkStore) -> PartitionId {
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    p
}

fn content(thread: usize, round: usize) -> Vec<u8> {
    vec![(thread * 31 + round * 7 + 1) as u8; 120 + thread * 40 + round * 16]
}

// ---------------------------------------------------------------------------
// Durability before ack.
// ---------------------------------------------------------------------------

/// Concurrent committers over a write-back cache; after the run, a crash
/// that loses *every* unflushed write must preserve every acknowledged
/// commit — the leader flushes the batch before it wakes any waiter.
#[test]
fn acked_commits_survive_crash_losing_unflushed_writes() {
    const ROUNDS: usize = 4;
    let rig = Rig::new(config());
    let crash = Arc::new(CrashStore::new(Arc::new(MemStore::new())).unwrap());
    let store = rig.create(Arc::clone(&crash) as SharedUntrusted);
    let p = setup_partition(&store);
    let ids: Vec<Vec<ChunkId>> = (0..THREADS)
        .map(|_| {
            (0..ROUNDS)
                .map(|_| store.allocate_chunk(p).unwrap())
                .collect()
        })
        .collect();

    let acked: Mutex<Vec<(ChunkId, Vec<u8>)>> = Mutex::new(Vec::new());
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for (t, my_ids) in ids.iter().enumerate() {
            let (store, acked, barrier) = (&store, &acked, &barrier);
            s.spawn(move || {
                barrier.wait();
                for (round, id) in my_ids.iter().enumerate() {
                    let bytes = content(t, round);
                    store
                        .commit(vec![CommitOp::WriteChunk {
                            id: *id,
                            bytes: bytes.clone(),
                        }])
                        .unwrap();
                    // Acknowledged: from here on, this commit must survive
                    // any crash.
                    acked.lock().unwrap().push((*id, bytes));
                }
            });
        }
    });
    let acked = acked.into_inner().unwrap();
    assert_eq!(acked.len(), THREADS * ROUNDS);
    drop(store);

    let image = crash.crash_lose_all();
    let reopened = rig
        .open(Arc::new(MemStore::from_bytes(image)) as SharedUntrusted)
        .expect("recovery after losing all unflushed writes");
    for (id, bytes) in &acked {
        assert_eq!(
            &reopened.read(*id).unwrap(),
            bytes,
            "acknowledged commit lost in the crash: {id}"
        );
    }
}

// ---------------------------------------------------------------------------
// Mid-batch faults: per-member atomicity across recovery.
// ---------------------------------------------------------------------------

/// Concurrent two-op commits with a write fault armed mid-run: failed
/// members never poison the store, and after recovery every member is
/// all-or-nothing — both of its chunks or neither.
#[test]
fn mid_batch_write_fault_is_all_or_nothing_per_member() {
    for fault_offset in [3u64, 11, 23] {
        let rig = Rig::new(config());
        let mem = Arc::new(MemStore::new());
        let pf = Arc::new(PlannedFaultStore::new(
            Arc::clone(&mem) as SharedUntrusted,
            FaultPlan::new(),
        ));
        let store = rig.create(Arc::clone(&pf) as SharedUntrusted);
        let p = setup_partition(&store);
        let ids: Vec<(ChunkId, ChunkId)> = (0..THREADS)
            .map(|_| {
                (
                    store.allocate_chunk(p).unwrap(),
                    store.allocate_chunk(p).unwrap(),
                )
            })
            .collect();
        pf.set_plan(FaultPlan::new().at(pf.write_ops() + fault_offset, FaultKind::WriteError));

        let acked: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for (t, (a, b)) in ids.iter().enumerate() {
                let (store, acked, barrier) = (&store, &acked, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    // One atomic two-chunk commit per thread; under the
                    // armed fault it may fail, which is fine — it must then
                    // be invisible or fully adopted, never torn.
                    let result = store.commit(vec![
                        CommitOp::WriteChunk {
                            id: *a,
                            bytes: content(t, 0),
                        },
                        CommitOp::WriteChunk {
                            id: *b,
                            bytes: content(t, 1),
                        },
                    ]);
                    if result.is_ok() {
                        acked.lock().unwrap().push(t);
                    }
                });
            }
        });
        assert!(
            !store.health().is_poisoned(),
            "fault_offset {fault_offset}: a plain I/O fault must never poison"
        );
        let acked = acked.into_inner().unwrap();
        drop(store);

        pf.set_plan(FaultPlan::new());
        let reopened = rig
            .open(Arc::new(MemStore::from_bytes(mem.image())) as SharedUntrusted)
            .unwrap_or_else(|e| panic!("fault_offset {fault_offset}: recovery failed: {e}"));
        for (t, (a, b)) in ids.iter().enumerate() {
            let got_a = reopened.read(*a).ok();
            let got_b = reopened.read(*b).ok();
            if acked.contains(&t) {
                assert_eq!(
                    got_a,
                    Some(content(t, 0)),
                    "fault_offset {fault_offset}: acknowledged member {t} lost chunk a"
                );
                assert_eq!(
                    got_b,
                    Some(content(t, 1)),
                    "fault_offset {fault_offset}: acknowledged member {t} lost chunk b"
                );
            } else {
                // Unacknowledged: recovery may adopt the durable set or drop
                // it, but never split it.
                let applied = (got_a == Some(content(t, 0)), got_b == Some(content(t, 1)));
                assert!(
                    applied == (true, true) || applied == (false, false),
                    "fault_offset {fault_offset}: member {t} recovered torn: {applied:?}"
                );
            }
        }
    }
}

/// The seeded-fault-plan torture of the fault_injection suite runs with
/// group commit ON by default; this variant drives it concurrently — mixed
/// faults firing into live batches must never poison and must keep every
/// acknowledged single-commit readable after recovery.
#[test]
fn seeded_fault_plans_with_concurrent_batching() {
    for seed in [1u64, 2, 3] {
        let rig = Rig::new(config());
        let mem = Arc::new(MemStore::new());
        let pf = Arc::new(PlannedFaultStore::new(
            Arc::clone(&mem) as SharedUntrusted,
            FaultPlan::new(),
        ));
        let store = rig.create(Arc::clone(&pf) as SharedUntrusted);
        let p = setup_partition(&store);
        let ids: Vec<Vec<ChunkId>> = (0..THREADS)
            .map(|_| (0..3).map(|_| store.allocate_chunk(p).unwrap()).collect())
            .collect();
        let horizon = pf.total_ops() + 300;
        pf.set_plan(FaultPlan::seeded(seed, horizon, 5));

        let acked: Mutex<Vec<(ChunkId, Vec<u8>)>> = Mutex::new(Vec::new());
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for (t, my_ids) in ids.iter().enumerate() {
                let (store, acked, barrier) = (&store, &acked, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    for (round, id) in my_ids.iter().enumerate() {
                        let bytes = content(t, round);
                        if store
                            .commit(vec![CommitOp::WriteChunk {
                                id: *id,
                                bytes: bytes.clone(),
                            }])
                            .is_ok()
                        {
                            acked.lock().unwrap().push((*id, bytes));
                        }
                    }
                });
            }
        });
        assert!(!store.health().is_poisoned(), "seed {seed}: poisoned");
        let acked = acked.into_inner().unwrap();
        drop(store);

        pf.set_plan(FaultPlan::new());
        let reopened = rig
            .open(Arc::new(MemStore::from_bytes(mem.image())) as SharedUntrusted)
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        for (id, bytes) in &acked {
            assert_eq!(
                &reopened.read(*id).unwrap(),
                bytes,
                "seed {seed}: acknowledged commit lost: {id}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Stats: the batching actually batches, and flushes amortize.
// ---------------------------------------------------------------------------

/// N concurrent commits over a slow-flush device produce fewer than N
/// device flushes, at least one multi-member batch, and a batch-size
/// histogram that accounts for every batch. A slow flush keeps the leader
/// busy long enough for followers to enqueue, but scheduling is still
/// nondeterministic, so the flush inequality gets three attempts.
#[test]
fn concurrent_commits_flush_less_than_once_per_commit() {
    const ROUNDS: usize = 6;
    let slow_disk = DiskModel {
        seek: Duration::from_micros(20),
        rotational: Duration::from_micros(10),
        bandwidth: 512 * 1024 * 1024,
        flush: Duration::from_millis(1),
        flush_doubling_threshold: None,
    };
    let attempt = || -> bool {
        let rig = Rig::new(config());
        let disk: SharedUntrusted = Arc::new(SimDiskStore::new(
            Arc::new(MemStore::new()) as SharedUntrusted,
            slow_disk,
            Arc::new(SimClock::new(true)),
        ));
        let store = rig.create(disk);
        let p = setup_partition(&store);
        let ids: Vec<ChunkId> = (0..THREADS)
            .map(|_| store.allocate_chunk(p).unwrap())
            .collect();
        let before = store.stats();

        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for (t, id) in ids.iter().enumerate() {
                let (store, barrier) = (&store, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    for round in 0..ROUNDS {
                        store
                            .commit(vec![CommitOp::WriteChunk {
                                id: *id,
                                bytes: content(t, round),
                            }])
                            .unwrap();
                    }
                });
            }
        });

        let after = store.stats();
        let commits = after.commits - before.commits;
        let flushes = after.flushes - before.flushes;
        let batches = after.commit_batches - before.commit_batches;
        assert_eq!(commits, (THREADS * ROUNDS) as u64);
        // Every commit rode in a batch, and every batch is in the
        // histogram.
        assert_eq!(after.batched_commits - before.batched_commits, commits);
        assert!(batches >= 1, "no batches recorded");
        let hist_delta: u64 = after
            .batch_size_hist
            .iter()
            .zip(before.batch_size_hist)
            .map(|(a, b)| a - b)
            .sum();
        assert_eq!(hist_delta, batches, "histogram misses batches");
        // The headline: amortization happened. Multi-member batches showed
        // up and the device flushed fewer times than it committed.
        let multi: u64 = after.batch_size_hist[1..]
            .iter()
            .zip(&before.batch_size_hist[1..])
            .map(|(a, b)| a - b)
            .sum();
        multi >= 1 && flushes < commits
    };
    assert!(
        (0..3).any(|_| attempt()),
        "three concurrent runs never amortized a flush"
    );
}

// ---------------------------------------------------------------------------
// Parity: group_commit = false is the legacy write path.
// ---------------------------------------------------------------------------

/// With group commit off, the device-op shape per single-chunk commit is
/// the legacy one exactly — two writes (data chunk, commit chunk) and one
/// flush — with no batches and no coalescing anywhere in the stats.
#[test]
fn group_commit_off_reproduces_legacy_device_op_shape() {
    const COMMITS: u64 = 6;
    let rig = Rig::new(ChunkStoreConfig {
        group_commit: false,
        ..config()
    });
    let mem = Arc::new(MemStore::new());
    let store = rig.create(Arc::clone(&mem) as SharedUntrusted);
    let p = setup_partition(&store);
    let ids: Vec<ChunkId> = (0..COMMITS)
        .map(|_| store.allocate_chunk(p).unwrap())
        .collect();
    let io_before = mem.stats().snapshot();
    for (i, id) in ids.iter().enumerate() {
        store
            .commit(vec![CommitOp::WriteChunk {
                id: *id,
                bytes: content(i, 0),
            }])
            .unwrap();
    }
    let io = mem.stats().snapshot().since(&io_before);
    assert_eq!(io.writes, 2 * COMMITS, "legacy path: 2 writes per commit");
    assert_eq!(io.flushes, COMMITS, "legacy path: 1 flush per commit");
    let stats = store.stats();
    assert_eq!(stats.commit_batches, 0);
    assert_eq!(stats.batched_commits, 0);
    assert_eq!(stats.log_writes_coalesced, 0);
    assert_eq!(stats.log_coalesced_bytes, 0);
    assert_eq!(stats.batch_size_hist, [0u64; 8]);
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(store.read(*id).unwrap(), content(i, 0));
    }
}

/// The same single-threaded workload with group commit on: batches of one,
/// whose data and commit chunks coalesce into a single device write — and
/// the result recovers identically.
#[test]
fn group_commit_on_coalesces_single_commits() {
    const COMMITS: u64 = 6;
    let rig = Rig::new(config());
    let mem = Arc::new(MemStore::new());
    let store = rig.create(Arc::clone(&mem) as SharedUntrusted);
    let p = setup_partition(&store);
    let ids: Vec<ChunkId> = (0..COMMITS)
        .map(|_| store.allocate_chunk(p).unwrap())
        .collect();
    let io_before = mem.stats().snapshot();
    for (i, id) in ids.iter().enumerate() {
        store
            .commit(vec![CommitOp::WriteChunk {
                id: *id,
                bytes: content(i, 0),
            }])
            .unwrap();
    }
    let io = mem.stats().snapshot().since(&io_before);
    assert_eq!(io.writes, COMMITS, "coalesced: 1 write per commit");
    assert_eq!(io.flushes, COMMITS, "durability rule unchanged");
    let stats = store.stats();
    assert_eq!(stats.batched_commits, COMMITS + 1); // + CreatePartition.
    assert!(stats.log_writes_coalesced >= COMMITS);
    drop(store);
    let reopened = rig
        .open(Arc::new(MemStore::from_bytes(mem.image())) as SharedUntrusted)
        .expect("recovery of the coalesced log");
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(reopened.read(*id).unwrap(), content(i, 0));
    }
}

// ---------------------------------------------------------------------------
// Incremental checkpoints.
// ---------------------------------------------------------------------------

/// A checkpoint right after a clean one finds every cached map level clean
/// and skips them all; a single write dirties only one leaf level at
/// checkpoint start, so higher levels still count as skipped.
#[test]
fn clean_levels_are_skipped_by_incremental_checkpoints() {
    let rig = Rig::new(config());
    let store = rig.create(Arc::new(MemStore::new()) as SharedUntrusted);
    let p = setup_partition(&store);
    for i in 0..24usize {
        let id = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: content(i, 2),
            }])
            .unwrap();
    }
    store.checkpoint().unwrap();
    let after_first = store.stats().dirty_map_levels_skipped;
    // Nothing dirtied since: the second checkpoint skips every cached
    // level.
    store.checkpoint().unwrap();
    let after_second = store.stats().dirty_map_levels_skipped;
    assert!(
        after_second > after_first,
        "clean checkpoint skipped no levels ({after_first} -> {after_second})"
    );
}
