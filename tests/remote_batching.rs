//! §10 extension, end to end: TDB over a *remote* untrusted store, with
//! and without client-side write batching. The batched configuration must
//! be correct (recovery included) and pay far fewer round trips.

use std::sync::Arc;
use std::time::Duration;

use tdb::{ChunkStore, ChunkStoreConfig, CommitOp, CryptoParams, TrustedBackend};
use tdb_crypto::SecretKey;
use tdb_storage::{
    BatchingStore, CounterOverTrusted, MemStore, MemTrustedStore, RemoteStore, SharedUntrusted,
    SimClock, UntrustedStore,
};

struct Remote {
    mem: Arc<MemStore>,
    clock: Arc<SimClock>,
    store: SharedUntrusted,
}

fn remote(batched: bool) -> Remote {
    let mem = Arc::new(MemStore::new());
    let clock = Arc::new(SimClock::new(false)); // Account, don't sleep.
    let remote = Arc::new(RemoteStore::new(
        Arc::clone(&mem) as SharedUntrusted,
        Duration::from_millis(2),
        Arc::clone(&clock),
    ));
    let store: SharedUntrusted = if batched {
        Arc::new(BatchingStore::new(remote))
    } else {
        remote
    };
    Remote { mem, clock, store }
}

fn backend(register: &Arc<MemTrustedStore>) -> TrustedBackend {
    TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
        Arc::clone(register) as Arc<dyn tdb_storage::TrustedStore>
    )))
}

fn workload(store: &ChunkStore) -> Vec<(tdb::ChunkId, Vec<u8>)> {
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    let mut written = Vec::new();
    for i in 0..30u64 {
        let id = store.allocate_chunk(p).unwrap();
        let data = vec![(i % 251) as u8; 200 + (i as usize % 5) * 100];
        store
            .commit(vec![CommitOp::WriteChunk {
                id,
                bytes: data.clone(),
            }])
            .unwrap();
        written.push((id, data));
    }
    store.checkpoint().unwrap();
    written
}

#[test]
fn batched_remote_is_correct_across_recovery() {
    let secret = SecretKey::random(24);
    let register = Arc::new(MemTrustedStore::new(64));
    let r = remote(true);
    let written = {
        let store = ChunkStore::create(
            Arc::clone(&r.store),
            backend(&register),
            secret.clone(),
            ChunkStoreConfig::default(),
        )
        .unwrap();
        workload(&store)
    };
    // Recover from the *server-side* bytes only (the batching layer's
    // buffer is gone — like a client restart).
    let fresh_client = Arc::new(BatchingStore::new(Arc::new(RemoteStore::new(
        Arc::new(MemStore::from_bytes(r.mem.image())) as SharedUntrusted,
        Duration::from_millis(2),
        Arc::new(SimClock::new(false)),
    ))));
    let store = ChunkStore::open(
        fresh_client as SharedUntrusted,
        backend(&register),
        secret,
        ChunkStoreConfig::default(),
    )
    .unwrap();
    for (id, data) in &written {
        assert_eq!(&store.read(*id).unwrap(), data);
    }
}

#[test]
fn batching_saves_round_trips() {
    let run = |batched: bool| -> Duration {
        let secret = SecretKey::random(24);
        let register = Arc::new(MemTrustedStore::new(64));
        let r = remote(batched);
        // Pin engine-side group commit off: it coalesces a commit's appends
        // into one device write itself, which shrinks the unbatched baseline
        // this test measures the *storage-layer* batching win against.
        let config = ChunkStoreConfig {
            group_commit: false,
            ..ChunkStoreConfig::default()
        };
        let store =
            ChunkStore::create(Arc::clone(&r.store), backend(&register), secret, config).unwrap();
        workload(&store);
        r.clock.elapsed()
    };
    let unbatched = run(false);
    let batched = run(true);
    // Writes coalesce to ~2 round trips per commit instead of one per
    // version; reads cost the same on both sides (the descriptor cache is
    // the read-side optimization), so expect a solid but not total win.
    assert!(
        batched.as_secs_f64() * 1.3 < unbatched.as_secs_f64(),
        "batching should save ≥30% of round-trip time: batched {batched:?} vs unbatched {unbatched:?}"
    );
}

#[test]
fn tamper_detection_survives_the_remote_path() {
    // The server is untrusted: server-side modifications must still be
    // detected through the batching client.
    let secret = SecretKey::random(24);
    let register = Arc::new(MemTrustedStore::new(64));
    let r = remote(true);
    let written = {
        let store = ChunkStore::create(
            Arc::clone(&r.store),
            backend(&register),
            secret.clone(),
            ChunkStoreConfig::default(),
        )
        .unwrap();
        workload(&store)
    };
    // The server flips bytes in its copy.
    let len = r.mem.len().unwrap();
    let mut detected = 0;
    for offset in (512..len).step_by(997) {
        let server_copy = Arc::new(MemStore::from_bytes(r.mem.image()));
        server_copy.tamper(offset, 0x10);
        let client = Arc::new(BatchingStore::new(Arc::new(RemoteStore::new(
            server_copy as SharedUntrusted,
            Duration::from_millis(1),
            Arc::new(SimClock::new(false)),
        ))));
        match ChunkStore::open(
            client as SharedUntrusted,
            backend(&register),
            secret.clone(),
            ChunkStoreConfig::default(),
        ) {
            Err(_) => detected += 1,
            Ok(store) => {
                for (id, data) in &written {
                    match store.read(*id) {
                        Ok(got) => assert_eq!(&got, data, "silent corruption at {id}"),
                        Err(_) => detected += 1,
                    }
                }
            }
        }
    }
    assert!(detected > 0);
}
