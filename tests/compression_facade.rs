//! Chunk-body compression through the facade and the chunk store (ISSUE 9):
//! the parity contract (knob off = byte-identical device-op shape to the
//! seed), knob-gated counters, flag-driven reads, verify-then-decompress
//! under a tamper sweep, and crash/fault torture with compression on.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use tdb::{
    ChunkId, ChunkStore, ChunkStoreConfig, CommitOp, CryptoParams, PartitionId, StoredObject,
    TrustedBackend, TrustedDb, TrustedDbBuilder,
};
use tdb_core::proof::verify_read_proof;
use tdb_core::CoreError;
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, CrashStore, FaultPlan, MemArchive, MemStore, MemTrustedStore,
    PlannedFaultStore, SharedUntrusted, StatsSnapshot, TrustedStore, UntrustedStore,
};

// ---------------------------------------------------------------------------
// Payload helpers: compressible and incompressible bodies.
// ---------------------------------------------------------------------------

/// Text-like, highly compressible body (the workload compression targets).
fn compressible(tag: usize, len: usize) -> Vec<u8> {
    let line = format!("record {tag}: the quick brown fox jumps over the lazy dog; ");
    line.as_bytes().iter().cycle().take(len).copied().collect()
}

/// Incompressible body: xorshift noise, always takes the stored-raw hatch.
fn incompressible(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Facade rig (mirrors tests/lazy_facade.rs so the parity story is shared).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    body: Vec<u8>,
}

const DOC_TAG: u32 = 94;

impl StoredObject for Doc {
    fn type_tag(&self) -> u32 {
        DOC_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        self.body.clone()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_doc(b: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    Ok(Arc::new(Doc { body: b.to_vec() }))
}

struct Rig {
    db: TrustedDb,
    untrusted: Arc<MemStore>,
}

fn build(compression: Option<bool>) -> Rig {
    let untrusted = Arc::new(MemStore::new());
    let counter = Arc::new(CounterOverTrusted::new(
        Arc::new(MemTrustedStore::new(64)) as Arc<dyn TrustedStore>
    ));
    let mut builder = TrustedDbBuilder::new()
        // A fixed key keeps two builds byte-comparable.
        .secret(SecretKey::new(vec![7u8; 24]))
        .register_type(DOC_TAG, unpickle_doc);
    if let Some(on) = compression {
        builder = builder.compression(on);
    }
    let db = builder
        .create(
            Arc::clone(&untrusted) as _,
            TrustedBackend::Counter(counter),
            Arc::new(MemArchive::new()),
        )
        .unwrap();
    Rig { db, untrusted }
}

/// Commits a mix of compressible documents, overwrites, a delete, and a
/// checkpoint — enough to touch the commit, checkpoint, and read paths.
fn doc_workload(db: &TrustedDb) -> Vec<Vec<u8>> {
    let p = db.partition();
    let mut ids = Vec::new();
    for i in 0..12 {
        let body = compressible(i, 900 + 37 * i);
        let id = db
            .run(|tx| tx.create(p, Arc::new(Doc { body: body.clone() })))
            .unwrap();
        ids.push(id);
    }
    db.run(|tx| {
        tx.put(
            ids[0],
            Arc::new(Doc {
                body: compressible(100, 1200),
            }),
        )
    })
    .unwrap();
    db.run(|tx| tx.delete(ids[11])).unwrap();
    ids.pop();
    db.checkpoint().unwrap();
    ids.iter()
        .map(|id| {
            let obj: Arc<Doc> = db.run(|tx| tx.get(*id)).unwrap();
            obj.body.clone()
        })
        .collect()
}

fn shape_of(rig: &Rig) -> StatsSnapshot {
    let mut snap = rig.untrusted.stats().snapshot();
    // Timings vary run to run; the *shape* is ops and bytes.
    snap.read_ns = 0;
    snap.write_ns = 0;
    snap.flush_ns = 0;
    snap
}

/// The parity contract: with the knob off (or left at its default) the
/// device-op shape is byte-identical to the seed's — compression must be
/// invisible until asked for. With the knob on, the same workload appends
/// strictly fewer bytes and every document reads back intact.
#[test]
fn compression_off_is_byte_identical_and_on_shrinks_the_log() {
    let baseline = build(None);
    let baseline_docs = doc_workload(&baseline.db);
    let expected = shape_of(&baseline);

    let off = build(Some(false));
    let off_docs = doc_workload(&off.db);
    assert_eq!(shape_of(&off), expected);
    assert_eq!(off_docs, baseline_docs);

    let on = build(Some(true));
    let on_docs = doc_workload(&on.db);
    assert_eq!(on_docs, baseline_docs, "compression must be transparent");
    let off_appended = off.db.chunks().stats().bytes_appended;
    let on_appended = on.db.chunks().stats().bytes_appended;
    assert!(
        on_appended < off_appended,
        "compressible workload must shrink the log: {on_appended} >= {off_appended}"
    );
}

// ---------------------------------------------------------------------------
// Chunk-store rig for knob, tamper, and torture tests.
// ---------------------------------------------------------------------------

fn store_config(compression: bool) -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 8192,
        compression,
        ..ChunkStoreConfig::default()
    }
}

struct StoreRig {
    secret: SecretKey,
    register: Arc<MemTrustedStore>,
    config: ChunkStoreConfig,
}

impl StoreRig {
    fn new(config: ChunkStoreConfig) -> StoreRig {
        StoreRig {
            secret: SecretKey::new(vec![9u8; 24]),
            register: Arc::new(MemTrustedStore::new(64)),
            config,
        }
    }

    fn backend(&self) -> TrustedBackend {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&self.register) as Arc<dyn TrustedStore>,
        )))
    }

    fn create(&self, untrusted: SharedUntrusted) -> ChunkStore {
        ChunkStore::create(
            untrusted,
            self.backend(),
            self.secret.clone(),
            self.config.clone(),
        )
        .unwrap()
    }

    fn open_with(
        &self,
        untrusted: SharedUntrusted,
        config: ChunkStoreConfig,
    ) -> tdb_core::Result<ChunkStore> {
        ChunkStore::open(untrusted, self.backend(), self.secret.clone(), config)
    }
}

fn setup_partition(store: &ChunkStore) -> PartitionId {
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    p
}

fn write(store: &ChunkStore, id: ChunkId, bytes: Vec<u8>) {
    store
        .commit(vec![CommitOp::WriteChunk { id, bytes }])
        .unwrap();
}

/// The four compression counters move only when the knob is on, and the
/// escape hatch shows up as `bodies_stored_raw` for incompressible input.
#[test]
fn counters_move_only_with_the_knob_on() {
    for on in [false, true] {
        let rig = StoreRig::new(store_config(on));
        let store = rig.create(Arc::new(MemStore::new()) as SharedUntrusted);
        let p = setup_partition(&store);
        for i in 0..6 {
            let id = store.allocate_chunk(p).unwrap();
            write(&store, id, compressible(i, 1000));
        }
        for i in 0..3 {
            let id = store.allocate_chunk(p).unwrap();
            write(&store, id, incompressible(i as u64 + 1, 1000));
        }
        store.checkpoint().unwrap();
        let stats = store.stats();
        if on {
            assert_eq!(stats.bodies_compressed, 6, "{stats:?}");
            assert_eq!(stats.bodies_stored_raw, 3, "{stats:?}");
            assert!(stats.log_bytes_saved > 0, "{stats:?}");
        } else {
            assert_eq!(stats.bodies_compressed, 0, "{stats:?}");
            assert_eq!(stats.bodies_stored_raw, 0, "{stats:?}");
            assert_eq!(stats.log_bytes_saved, 0, "{stats:?}");
        }
        assert_eq!(stats.decompress_fallbacks, 0, "{stats:?}");
    }
}

/// Reads are driven by the per-version flag, not the knob: an image
/// written with compression on recovers and reads back correctly under a
/// store opened with compression off (and vice versa, trivially).
#[test]
fn reads_are_flag_driven_not_knob_driven() {
    let rig = StoreRig::new(store_config(true));
    let mem = Arc::new(MemStore::new());
    let store = rig.create(Arc::clone(&mem) as SharedUntrusted);
    let p = setup_partition(&store);
    let mut expected = Vec::new();
    for i in 0..8 {
        let id = store.allocate_chunk(p).unwrap();
        let body = compressible(i, 700 + 91 * i);
        write(&store, id, body.clone());
        expected.push((id, body));
    }
    // Leave some versions only in the residual log (no checkpoint after),
    // so recovery's declared-length reconstruction is exercised too.
    store.checkpoint().unwrap();
    for (i, (id, body)) in expected.iter_mut().enumerate().take(4) {
        *body = compressible(50 + i, 1100);
        write(&store, *id, body.clone());
    }
    assert!(store.stats().bodies_compressed > 0);
    drop(store);

    let reopened = rig
        .open_with(
            Arc::new(MemStore::from_bytes(mem.image())) as SharedUntrusted,
            store_config(false),
        )
        .expect("recovery over compressed versions");
    for (id, body) in &expected {
        assert_eq!(&reopened.read(*id).unwrap(), body, "{id}");
    }
    // The knob is off on this handle: overwrites are stored raw.
    let (id0, _) = expected[0];
    write(&reopened, id0, compressible(999, 1500));
    assert_eq!(reopened.stats().bodies_compressed, 0);
}

/// Verify-then-decompress, end to end: flipping bytes anywhere in an
/// image holding compressed versions is either detected (a read error /
/// failed open) or harmless (an untouched read) — never a panic, never a
/// silently wrong body, because the descriptor hash over the *stored*
/// envelope is checked before the decompressor sees a single byte.
#[test]
fn tamper_sweep_over_compressed_image_never_corrupts_silently() {
    let rig = StoreRig::new(store_config(true));
    let mem = Arc::new(MemStore::new());
    let store = rig.create(Arc::clone(&mem) as SharedUntrusted);
    let p = setup_partition(&store);
    let mut expected = Vec::new();
    for i in 0..6 {
        let id = store.allocate_chunk(p).unwrap();
        let body = compressible(i, 800);
        write(&store, id, body.clone());
        expected.push((id, body));
    }
    store.checkpoint().unwrap();
    assert!(store.stats().bodies_compressed >= 6);
    drop(store);
    let image = mem.image();

    let mut detected = 0usize;
    for offset in (0..image.len()).step_by(131) {
        let mut tampered = image.clone();
        tampered[offset] ^= 0x10;
        let reopened = match rig.open_with(
            Arc::new(MemStore::from_bytes(tampered)) as SharedUntrusted,
            store_config(true),
        ) {
            Ok(s) => s,
            Err(_) => {
                detected += 1;
                continue;
            }
        };
        for (id, body) in &expected {
            match reopened.read(*id) {
                Ok(read) => assert_eq!(&read, body, "silent corruption at offset {offset}"),
                Err(_) => detected += 1,
            }
        }
    }
    assert!(detected > 0, "the sweep never hit a live byte");
}

/// Proofs over compressed chunks carry the stored envelope and stay
/// binding: the verifier demands the envelope hash AND that it decompress
/// to exactly the claimed plaintext.
#[test]
fn proofs_bind_the_stored_envelope() {
    let rig = StoreRig::new(store_config(true));
    let store = rig.create(Arc::new(MemStore::new()) as SharedUntrusted);
    let p = setup_partition(&store);
    let id = store.allocate_chunk(p).unwrap();
    let body = compressible(7, 1500);
    write(&store, id, body.clone());
    let raw_id = store.allocate_chunk(p).unwrap();
    let noise = incompressible(42, 1500);
    write(&store, raw_id, noise.clone());

    let root = store.snapshot_root(p).unwrap();
    let (got, proof) = store.read_with_proof(id).unwrap();
    assert_eq!(got, body);
    let stored = proof.stored_body.clone().expect("compressed leaf");
    assert!(stored.len() < body.len());
    assert!(verify_read_proof(&proof, &body, &root));

    // Dropping the envelope breaks the leaf hash (it covers stored bytes).
    let mut no_env = proof.clone();
    no_env.stored_body = None;
    assert!(!verify_read_proof(&no_env, &body, &root));
    // Tampering the envelope breaks either the hash or the decompression.
    let mut bad_env = proof.clone();
    bad_env.stored_body.as_mut().unwrap()[10] ^= 1;
    assert!(!verify_read_proof(&bad_env, &body, &root));
    // A proof cannot vouch for a different plaintext than its envelope.
    let mut other = body.clone();
    other[0] ^= 1;
    assert!(!verify_read_proof(&proof, &other, &root));
    // The wire format round-trips the envelope.
    let back = tdb::ReadProof::decode(&proof.encode()).unwrap();
    assert_eq!(back, proof);

    // Raw-stored chunks keep the seed's proof shape: no envelope at all.
    let (got, raw_proof) = store.read_with_proof(raw_id).unwrap();
    assert_eq!(got, noise);
    assert!(raw_proof.stored_body.is_none());
    assert!(verify_read_proof(&raw_proof, &noise, &root));
}

// ---------------------------------------------------------------------------
// Torture: crash and fault plans with compression on.
// ---------------------------------------------------------------------------

fn torture_config() -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 4096,
        max_segments: 24,
        checkpoint_threshold: 6,
        compression: true,
        ..ChunkStoreConfig::default()
    }
}

fn content(thread: usize, round: usize) -> Vec<u8> {
    // Compressible, like real records — so the crash/fault paths run over
    // compressed versions, not raw ones.
    compressible(thread * 31 + round, 300 + (thread * 37 + round * 53) % 400)
}

fn commit_patiently(store: &ChunkStore, id: ChunkId, bytes: &[u8]) -> bool {
    for _ in 0..200 {
        let ops = vec![CommitOp::WriteChunk {
            id,
            bytes: bytes.to_vec(),
        }];
        match store.commit(ops) {
            Ok(()) => return true,
            Err(CoreError::OutOfSpace) => std::thread::sleep(Duration::from_millis(5)),
            Err(CoreError::DegradedMode(_)) => {
                if store.try_heal().is_err() {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            Err(_) => return false,
        }
    }
    false
}

/// Acked commits of compressed versions survive a crash that loses every
/// unflushed write; recovery rebuilds descriptors (logical sizes included)
/// from the residual log.
#[test]
fn acked_compressed_commits_survive_crash() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 12;
    let rig = StoreRig::new(torture_config());
    let crash = Arc::new(CrashStore::new(Arc::new(MemStore::new())).unwrap());
    let store = rig.create(Arc::clone(&crash) as SharedUntrusted);
    let p = setup_partition(&store);
    let ids: Vec<Vec<ChunkId>> = (0..THREADS)
        .map(|_| (0..4).map(|_| store.allocate_chunk(p).unwrap()).collect())
        .collect();

    let acked: Mutex<HashMap<ChunkId, Vec<u8>>> = Mutex::new(HashMap::new());
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for (t, my_ids) in ids.iter().enumerate() {
            let (store, acked, barrier) = (&store, &acked, &barrier);
            s.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    let id = my_ids[round % my_ids.len()];
                    let bytes = content(t, round);
                    if commit_patiently(store, id, &bytes) {
                        acked.lock().unwrap().insert(id, bytes);
                    }
                }
            });
        }
    });
    assert!(store.stats().bodies_compressed > 0, "nothing compressed");
    let acked = acked.into_inner().unwrap();
    assert!(!acked.is_empty());
    drop(store);

    let image = crash.crash_lose_all();
    let reopened = rig
        .open_with(
            Arc::new(MemStore::from_bytes(image)) as SharedUntrusted,
            torture_config(),
        )
        .expect("recovery after losing all unflushed writes");
    for (id, bytes) in &acked {
        assert_eq!(
            &reopened.read(*id).unwrap(),
            bytes,
            "acked commit lost: {id}"
        );
    }
}

/// Seeded I/O faults with compression on never poison the store, and
/// every acknowledged commit survives recovery — the compressed write and
/// recovery paths inherit the seed's fault-isolation contract.
#[test]
#[ignore = "seeded fault sweep; run in the CI compression-torture step"]
fn seeded_faults_with_compression_never_poison() {
    const THREADS: usize = 4;
    for seed in [1u64, 2, 3, 4, 5] {
        let rig = StoreRig::new(torture_config());
        let mem = Arc::new(MemStore::new());
        let pf = Arc::new(PlannedFaultStore::new(
            Arc::clone(&mem) as SharedUntrusted,
            FaultPlan::new(),
        ));
        let store = rig.create(Arc::clone(&pf) as SharedUntrusted);
        let p = setup_partition(&store);
        let ids: Vec<Vec<ChunkId>> = (0..THREADS)
            .map(|_| (0..3).map(|_| store.allocate_chunk(p).unwrap()).collect())
            .collect();
        let horizon = pf.total_ops() + 300;
        pf.set_plan(FaultPlan::seeded(seed, horizon, 5));

        let acked: Mutex<Vec<(ChunkId, Vec<u8>)>> = Mutex::new(Vec::new());
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for (t, my_ids) in ids.iter().enumerate() {
                let (store, acked, barrier) = (&store, &acked, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    for (round, id) in my_ids.iter().enumerate() {
                        let bytes = content(t, round);
                        if commit_patiently(store, *id, &bytes) {
                            acked.lock().unwrap().push((*id, bytes));
                        }
                    }
                });
            }
        });
        assert!(
            !store.health().is_poisoned(),
            "seed {seed}: an I/O fault must never poison"
        );
        let acked = acked.into_inner().unwrap();
        drop(store);

        pf.set_plan(FaultPlan::new());
        let reopened = rig
            .open_with(
                Arc::new(MemStore::from_bytes(mem.image())) as SharedUntrusted,
                torture_config(),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        for (id, bytes) in &acked {
            assert_eq!(
                &reopened.read(*id).unwrap(),
                bytes,
                "seed {seed}: acknowledged commit lost: {id}"
            );
        }
    }
}
