//! The tamper matrix: systematic attacks on the untrusted store under both
//! validation protocols. The invariant throughout: **no silent corruption**
//! — every read either returns exactly what the trusted program wrote or
//! fails (ideally with a tamper signal).

use std::sync::Arc;

use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend, ValidationMode};
use tdb_core::{ChunkId, CryptoParams, PartitionId};
use tdb_crypto::SecretKey;
use tdb_storage::{CounterOverTrusted, MemStore, MemTrustedStore, SharedUntrusted, TrustedStore};

struct World {
    secret: SecretKey,
    register: Arc<MemTrustedStore>,
    config: ChunkStoreConfig,
    /// Chunk contents written, by id.
    expected: Vec<(ChunkId, Vec<u8>)>,
    /// Clean image after close.
    image: Vec<u8>,
}

fn build_world(validation: ValidationMode) -> World {
    let secret = SecretKey::random(24);
    let register = Arc::new(MemTrustedStore::new(64));
    let config = ChunkStoreConfig {
        fanout: 4,
        segment_size: 4096,
        validation,
        ..ChunkStoreConfig::default()
    };
    let untrusted = Arc::new(MemStore::new());
    let store = ChunkStore::create(
        Arc::clone(&untrusted) as SharedUntrusted,
        backend_for(&config, &register),
        secret.clone(),
        config.clone(),
    )
    .unwrap();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    let mut expected = Vec::new();
    for i in 0..12u32 {
        let c = store.allocate_chunk(p).unwrap();
        let data = format!("protected record {i}: {}", "x".repeat(i as usize * 20)).into_bytes();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: data.clone(),
            }])
            .unwrap();
        expected.push((c, data));
    }
    // Leave some state in the residual log (no checkpoint for half the
    // writes) to cover both checkpointed and residual validation paths.
    store.close().unwrap();
    for i in 12..16u32 {
        let c = store.allocate_chunk(p).unwrap();
        let data = format!("residual record {i}").into_bytes();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: data.clone(),
            }])
            .unwrap();
        expected.push((c, data));
    }
    World {
        secret,
        register,
        config,
        expected,
        image: untrusted.image(),
    }
}

fn backend_for(config: &ChunkStoreConfig, register: &Arc<MemTrustedStore>) -> TrustedBackend {
    match config.validation {
        ValidationMode::Counter { .. } => TrustedBackend::Counter(Arc::new(
            CounterOverTrusted::new(Arc::clone(register) as Arc<dyn TrustedStore>),
        )),
        ValidationMode::DirectHash => {
            TrustedBackend::Register(Arc::clone(register) as Arc<dyn TrustedStore>)
        }
    }
}

impl World {
    fn open_image(&self, image: Vec<u8>) -> tdb_core::Result<ChunkStore> {
        ChunkStore::open(
            Arc::new(MemStore::from_bytes(image)) as SharedUntrusted,
            backend_for(&self.config, &self.register),
            self.secret.clone(),
            self.config.clone(),
        )
    }

    /// Opens a (possibly tampered) image and checks the no-silent-corruption
    /// invariant; returns how many reads failed.
    fn audit(&self, image: Vec<u8>) -> usize {
        let mut failures = 0;
        match self.open_image(image) {
            Err(_) => failures += self.expected.len(),
            Ok(store) => {
                for (id, data) in &self.expected {
                    match store.read(*id) {
                        Ok(got) => assert_eq!(&got, data, "SILENT CORRUPTION at {id}"),
                        Err(_) => failures += 1,
                    }
                }
            }
        }
        failures
    }
}

fn modes() -> [ValidationMode; 2] {
    [
        ValidationMode::Counter {
            delta_ut: 5,
            delta_tu: 0,
        },
        ValidationMode::DirectHash,
    ]
}

#[test]
fn clean_image_reads_perfectly() {
    for mode in modes() {
        let w = build_world(mode);
        assert_eq!(w.audit(w.image.clone()), 0, "{mode:?}");
    }
}

#[test]
fn single_bit_flips_never_corrupt_silently() {
    for mode in modes() {
        let w = build_world(mode);
        let mut total_detected = 0;
        // Sweep the image, including the superblock region.
        for offset in (0..w.image.len()).step_by(61) {
            let mut image = w.image.clone();
            image[offset] ^= 0x04;
            total_detected += w.audit(image);
        }
        assert!(total_detected > 0, "{mode:?}: nothing ever detected");
    }
}

#[test]
fn byte_zeroing_never_corrupts_silently() {
    for mode in modes() {
        let w = build_world(mode);
        for offset in (0..w.image.len()).step_by(247) {
            let mut image = w.image.clone();
            image[offset] = 0;
            let _ = w.audit(image);
        }
    }
}

#[test]
fn truncation_detected() {
    for mode in modes() {
        let w = build_world(mode);
        for keep in [
            w.image.len() / 2,
            w.image.len() - 1,
            w.image.len() - 100,
            600,
        ] {
            let image = w.image[..keep].to_vec();
            let failures = w.audit(image);
            assert!(failures > 0, "{mode:?}: truncation to {keep} undetected");
        }
    }
}

#[test]
fn splice_attack_never_corrupts_silently() {
    // Copy one region of the image over another (e.g. trying to duplicate
    // a version or transplant an old one).
    for mode in modes() {
        let w = build_world(mode);
        let len = w.image.len();
        for (src, dst, n) in [
            (512usize, 2048usize, 256usize),
            (2048, 512, 256),
            (len / 2, len / 4, 128),
            (600, 700, 64),
        ] {
            if src + n > len || dst + n > len {
                continue;
            }
            let mut image = w.image.clone();
            let chunk: Vec<u8> = image[src..src + n].to_vec();
            image[dst..dst + n].copy_from_slice(&chunk);
            let _ = w.audit(image);
        }
    }
}

#[test]
fn whole_image_replay_detected() {
    for mode in modes() {
        let w = build_world(mode);
        // Continue operating past the captured image, then replay it.
        let store = w.open_image(w.image.clone()).unwrap();
        let p = PartitionId(1);
        for i in 0..8u32 {
            let c = store.allocate_chunk(p).unwrap();
            store
                .commit(vec![CommitOp::WriteChunk {
                    id: c,
                    bytes: format!("later {i}").into_bytes(),
                }])
                .unwrap();
        }
        store.close().unwrap();
        drop(store);
        // The old image now fails validation against the advanced trusted
        // store.
        let failures = w.audit(w.image.clone());
        assert!(failures > 0, "{mode:?}: replay undetected");
    }
}

#[test]
fn cross_chunk_version_swap_detected() {
    // Swap the bodies of two same-size versions: both should fail their
    // hash checks (or the log validation).
    for mode in modes() {
        let w = build_world(mode);
        // Find two equal-length runs by brute force at fixed offsets.
        let mut image = w.image.clone();
        let a = 700usize;
        let b = 1500usize;
        let n = 128usize;
        if b + n < image.len() {
            let tmp: Vec<u8> = image[a..a + n].to_vec();
            let tmp2: Vec<u8> = image[b..b + n].to_vec();
            image[a..a + n].copy_from_slice(&tmp2);
            image[b..b + n].copy_from_slice(&tmp);
            let _ = w.audit(image);
        }
    }
}

#[test]
fn secrecy_plaintext_never_on_device() {
    for mode in modes() {
        let w = build_world(mode);
        for (_, data) in &w.expected {
            if data.len() < 8 {
                continue;
            }
            assert!(
                !w.image
                    .windows(data.len())
                    .any(|win| win == data.as_slice()),
                "{mode:?}: plaintext found in untrusted image"
            );
        }
    }
}

#[test]
fn superblock_corruption_fails_closed() {
    for mode in modes() {
        let w = build_world(mode);
        for offset in 0..48usize {
            let mut image = w.image.clone();
            image[offset] ^= 0xFF;
            match w.open_image(image) {
                Err(_) => {}
                Ok(store) => {
                    // A surviving open must still read everything correctly
                    // (the checksummed superblock either rejects or the
                    // recovery validates end-to-end).
                    for (id, data) in &w.expected {
                        if let Ok(got) = store.read(*id) {
                            assert_eq!(&got, data);
                        }
                    }
                }
            }
        }
    }
}
