//! The tamper matrix: systematic attacks on the untrusted store under both
//! validation protocols. The invariant throughout: **no silent corruption**
//! — every read either returns exactly what the trusted program wrote or
//! fails (ideally with a tamper signal).

use std::sync::Arc;

use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend, ValidationMode};
use tdb_core::{ChunkId, CryptoParams, PartitionId};
use tdb_crypto::SecretKey;
use tdb_storage::{CounterOverTrusted, MemStore, MemTrustedStore, SharedUntrusted, TrustedStore};

struct World {
    secret: SecretKey,
    register: Arc<MemTrustedStore>,
    config: ChunkStoreConfig,
    /// Chunk contents written, by id.
    expected: Vec<(ChunkId, Vec<u8>)>,
    /// Clean image after close.
    image: Vec<u8>,
}

fn build_world(validation: ValidationMode) -> World {
    let secret = SecretKey::random(24);
    let register = Arc::new(MemTrustedStore::new(64));
    let config = ChunkStoreConfig {
        fanout: 4,
        segment_size: 4096,
        validation,
        ..ChunkStoreConfig::default()
    };
    let untrusted = Arc::new(MemStore::new());
    let store = ChunkStore::create(
        Arc::clone(&untrusted) as SharedUntrusted,
        backend_for(&config, &register),
        secret.clone(),
        config.clone(),
    )
    .unwrap();
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    let mut expected = Vec::new();
    for i in 0..12u32 {
        let c = store.allocate_chunk(p).unwrap();
        let data = format!("protected record {i}: {}", "x".repeat(i as usize * 20)).into_bytes();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: data.clone(),
            }])
            .unwrap();
        expected.push((c, data));
    }
    // Leave some state in the residual log (no checkpoint for half the
    // writes) to cover both checkpointed and residual validation paths.
    store.close().unwrap();
    for i in 12..16u32 {
        let c = store.allocate_chunk(p).unwrap();
        let data = format!("residual record {i}").into_bytes();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: data.clone(),
            }])
            .unwrap();
        expected.push((c, data));
    }
    World {
        secret,
        register,
        config,
        expected,
        image: untrusted.image(),
    }
}

fn backend_for(config: &ChunkStoreConfig, register: &Arc<MemTrustedStore>) -> TrustedBackend {
    match config.validation {
        ValidationMode::Counter { .. } => TrustedBackend::Counter(Arc::new(
            CounterOverTrusted::new(Arc::clone(register) as Arc<dyn TrustedStore>),
        )),
        ValidationMode::DirectHash => {
            TrustedBackend::Register(Arc::clone(register) as Arc<dyn TrustedStore>)
        }
    }
}

impl World {
    fn open_image(&self, image: Vec<u8>) -> tdb_core::Result<ChunkStore> {
        ChunkStore::open(
            Arc::new(MemStore::from_bytes(image)) as SharedUntrusted,
            backend_for(&self.config, &self.register),
            self.secret.clone(),
            self.config.clone(),
        )
    }

    /// Opens a (possibly tampered) image and checks the no-silent-corruption
    /// invariant; returns how many reads failed.
    fn audit(&self, image: Vec<u8>) -> usize {
        let mut failures = 0;
        match self.open_image(image) {
            Err(_) => failures += self.expected.len(),
            Ok(store) => {
                for (id, data) in &self.expected {
                    match store.read(*id) {
                        Ok(got) => assert_eq!(&got, data, "SILENT CORRUPTION at {id}"),
                        Err(_) => failures += 1,
                    }
                }
            }
        }
        failures
    }
}

fn modes() -> [ValidationMode; 2] {
    [
        ValidationMode::Counter {
            delta_ut: 5,
            delta_tu: 0,
        },
        ValidationMode::DirectHash,
    ]
}

#[test]
fn clean_image_reads_perfectly() {
    for mode in modes() {
        let w = build_world(mode);
        assert_eq!(w.audit(w.image.clone()), 0, "{mode:?}");
    }
}

#[test]
fn single_bit_flips_never_corrupt_silently() {
    for mode in modes() {
        let w = build_world(mode);
        let mut total_detected = 0;
        // Sweep the image, including the superblock region.
        for offset in (0..w.image.len()).step_by(61) {
            let mut image = w.image.clone();
            image[offset] ^= 0x04;
            total_detected += w.audit(image);
        }
        assert!(total_detected > 0, "{mode:?}: nothing ever detected");
    }
}

#[test]
fn byte_zeroing_never_corrupts_silently() {
    for mode in modes() {
        let w = build_world(mode);
        for offset in (0..w.image.len()).step_by(247) {
            let mut image = w.image.clone();
            image[offset] = 0;
            let _ = w.audit(image);
        }
    }
}

#[test]
fn truncation_detected() {
    for mode in modes() {
        let w = build_world(mode);
        for keep in [
            w.image.len() / 2,
            w.image.len() - 1,
            w.image.len() - 100,
            600,
        ] {
            let image = w.image[..keep].to_vec();
            let failures = w.audit(image);
            assert!(failures > 0, "{mode:?}: truncation to {keep} undetected");
        }
    }
}

#[test]
fn splice_attack_never_corrupts_silently() {
    // Copy one region of the image over another (e.g. trying to duplicate
    // a version or transplant an old one).
    for mode in modes() {
        let w = build_world(mode);
        let len = w.image.len();
        for (src, dst, n) in [
            (512usize, 2048usize, 256usize),
            (2048, 512, 256),
            (len / 2, len / 4, 128),
            (600, 700, 64),
        ] {
            if src + n > len || dst + n > len {
                continue;
            }
            let mut image = w.image.clone();
            let chunk: Vec<u8> = image[src..src + n].to_vec();
            image[dst..dst + n].copy_from_slice(&chunk);
            let _ = w.audit(image);
        }
    }
}

#[test]
fn whole_image_replay_detected() {
    for mode in modes() {
        let w = build_world(mode);
        // Continue operating past the captured image, then replay it.
        let store = w.open_image(w.image.clone()).unwrap();
        let p = PartitionId(1);
        for i in 0..8u32 {
            let c = store.allocate_chunk(p).unwrap();
            store
                .commit(vec![CommitOp::WriteChunk {
                    id: c,
                    bytes: format!("later {i}").into_bytes(),
                }])
                .unwrap();
        }
        store.close().unwrap();
        drop(store);
        // The old image now fails validation against the advanced trusted
        // store.
        let failures = w.audit(w.image.clone());
        assert!(failures > 0, "{mode:?}: replay undetected");
    }
}

#[test]
fn cross_chunk_version_swap_detected() {
    // Swap the bodies of two same-size versions: both should fail their
    // hash checks (or the log validation).
    for mode in modes() {
        let w = build_world(mode);
        // Find two equal-length runs by brute force at fixed offsets.
        let mut image = w.image.clone();
        let a = 700usize;
        let b = 1500usize;
        let n = 128usize;
        if b + n < image.len() {
            let tmp: Vec<u8> = image[a..a + n].to_vec();
            let tmp2: Vec<u8> = image[b..b + n].to_vec();
            image[a..a + n].copy_from_slice(&tmp2);
            image[b..b + n].copy_from_slice(&tmp);
            let _ = w.audit(image);
        }
    }
}

#[test]
fn secrecy_plaintext_never_on_device() {
    for mode in modes() {
        let w = build_world(mode);
        for (_, data) in &w.expected {
            if data.len() < 8 {
                continue;
            }
            assert!(
                !w.image
                    .windows(data.len())
                    .any(|win| win == data.as_slice()),
                "{mode:?}: plaintext found in untrusted image"
            );
        }
    }
}

#[test]
fn superblock_corruption_fails_closed() {
    for mode in modes() {
        let w = build_world(mode);
        for offset in 0..48usize {
            let mut image = w.image.clone();
            image[offset] ^= 0xFF;
            match w.open_image(image) {
                Err(_) => {}
                Ok(store) => {
                    // A surviving open must still read everything correctly
                    // (the checksummed superblock either rejects or the
                    // recovery validates end-to-end).
                    for (id, data) in &w.expected {
                        if let Ok(got) = store.read(*id) {
                            assert_eq!(&got, data);
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The read-proof tamper matrix (ISSUE 7): a client holding only the root
// digest must reject every single-byte perturbation of a `ReadProof` — the
// record body, any path sibling (level body), the embedded root, and the
// pinned root itself.
// ---------------------------------------------------------------------------

mod proof_tamper {
    use super::*;
    use tdb_core::{verify_read_proof, ReadProof};
    use tdb_crypto::HashValue;

    struct Proven {
        body: Vec<u8>,
        proof: ReadProof,
        root: HashValue,
    }

    /// Writes a tree several levels deep and extracts a proof per chunk.
    fn proven_reads() -> Vec<Proven> {
        let register = Arc::new(MemTrustedStore::new(64));
        let config = ChunkStoreConfig {
            fanout: 4,
            segment_size: 4096,
            validation: ValidationMode::Counter {
                delta_ut: 5,
                delta_tu: 0,
            },
            ..ChunkStoreConfig::default()
        };
        let store = ChunkStore::create(
            Arc::new(MemStore::new()) as SharedUntrusted,
            backend_for(&config, &register),
            SecretKey::random(24),
            config,
        )
        .unwrap();
        let p = store.allocate_partition().unwrap();
        store
            .commit(vec![CommitOp::CreatePartition {
                id: p,
                params: CryptoParams::paper_default(),
            }])
            .unwrap();
        let mut ids = Vec::new();
        for i in 0..9u32 {
            let c = store.allocate_chunk(p).unwrap();
            store
                .commit(vec![CommitOp::WriteChunk {
                    id: c,
                    bytes: format!("proven record {i}: {}", "y".repeat(i as usize * 11))
                        .into_bytes(),
                }])
                .unwrap();
            ids.push(c);
        }
        let root = store.snapshot_root(p).unwrap();
        ids.into_iter()
            .map(|id| {
                let (body, proof) = store.read_with_proof(id).unwrap();
                Proven { body, proof, root }
            })
            .collect()
    }

    #[test]
    fn intact_proofs_verify() {
        for pr in proven_reads() {
            assert!(
                pr.proof.levels.len() >= 2,
                "tree too shallow to exercise paths"
            );
            assert!(verify_read_proof(&pr.proof, &pr.body, &pr.root));
        }
    }

    #[test]
    fn every_record_byte_flip_rejected() {
        for pr in proven_reads() {
            for i in 0..pr.body.len() {
                let mut body = pr.body.clone();
                body[i] ^= 0x01;
                assert!(
                    !verify_read_proof(&pr.proof, &body, &pr.root),
                    "flipped record byte {i} still verified"
                );
            }
            // Truncation and extension: the leaf descriptor pins the size.
            assert!(!verify_read_proof(
                &pr.proof,
                &pr.body[..pr.body.len() - 1],
                &pr.root
            ));
            let mut longer = pr.body.clone();
            longer.push(0);
            assert!(!verify_read_proof(&pr.proof, &longer, &pr.root));
        }
    }

    #[test]
    fn every_path_sibling_byte_flip_rejected() {
        for pr in proven_reads() {
            for level in 0..pr.proof.levels.len() {
                for i in 0..pr.proof.levels[level].body.len() {
                    let mut proof = pr.proof.clone();
                    proof.levels[level].body[i] ^= 0x01;
                    assert!(
                        !verify_read_proof(&proof, &pr.body, &pr.root),
                        "flipped byte {i} of level {level} body still verified"
                    );
                }
                // A redirected slot index must not verify either.
                let mut proof = pr.proof.clone();
                proof.levels[level].slot = (proof.levels[level].slot + 1) % 4;
                assert!(!verify_read_proof(&proof, &pr.body, &pr.root));
            }
        }
    }

    #[test]
    fn every_root_byte_flip_rejected() {
        for pr in proven_reads() {
            // The root embedded in the proof…
            for i in 0..pr.proof.root.as_bytes().len() {
                let mut bytes = pr.proof.root.as_bytes().to_vec();
                bytes[i] ^= 0x01;
                let mut proof = pr.proof.clone();
                proof.root = HashValue::new(&bytes);
                assert!(
                    !verify_read_proof(&proof, &pr.body, &pr.root),
                    "flipped embedded-root byte {i} still verified"
                );
            }
            // …and the digest the client pinned.
            for i in 0..pr.root.as_bytes().len() {
                let mut bytes = pr.root.as_bytes().to_vec();
                bytes[i] ^= 0x01;
                assert!(
                    !verify_read_proof(&pr.proof, &pr.body, &HashValue::new(&bytes)),
                    "flipped pinned-root byte {i} still verified"
                );
            }
        }
    }

    #[test]
    fn proof_cannot_vouch_for_an_aliased_rank() {
        // Slot indices are the rank's base-fanout digits, so rank
        // r + fanout^levels walks the same path; the verifier must reject
        // the alias by requiring the walk to end at the root.
        for pr in proven_reads() {
            let mut proof = pr.proof.clone();
            proof.id.pos.rank += 4u64.pow(proof.levels.len() as u32);
            assert!(
                !verify_read_proof(&proof, &pr.body, &pr.root),
                "out-of-range alias rank verified"
            );
        }
    }

    #[test]
    fn encoded_proof_byte_flips_never_vouch_for_the_claimed_id() {
        // Sweep the wire form: each flip must fail to decode, fail to
        // verify, or change the claimed id (which callers compare against
        // the id they requested).
        let pr = &proven_reads()[3];
        let encoded = pr.proof.encode();
        for i in 0..encoded.len() {
            let mut bytes = encoded.clone();
            bytes[i] ^= 0x01;
            let Ok(decoded) = ReadProof::decode(&bytes) else {
                continue;
            };
            if decoded.id != pr.proof.id {
                continue;
            }
            assert!(
                !verify_read_proof(&decoded, &pr.body, &pr.root),
                "flipped encoded byte {i} still verified for the claimed id"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The wire dimension: proofs and proof-carrying responses as a network
// client receives them. The serialized forms must round-trip losslessly,
// and no single-byte tampering of a framed response may make a verifying
// client accept a record other than the one the server committed.
// ---------------------------------------------------------------------------

mod framed_tamper {
    use super::*;
    use tdb::wire;
    use tdb_core::{verify_read_proof, ReadProof};
    use tdb_crypto::HashValue;

    const REC_TAG: u32 = 7003;

    #[derive(Debug)]
    struct Rec(Vec<u8>);

    impl tdb::StoredObject for Rec {
        fn type_tag(&self) -> u32 {
            REC_TAG
        }
        fn pickle(&self) -> Vec<u8> {
            self.0.clone()
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn unpickle_rec(body: &[u8]) -> tdb_object::errors::Result<Arc<dyn tdb::StoredObject>> {
        Ok(Arc::new(Rec(body.to_vec())))
    }

    /// A database, an object in it, and the pinned root of the committed
    /// state.
    fn populated_db() -> (tdb::TrustedDb, tdb::ObjectId, HashValue) {
        let db = tdb::TrustedDbBuilder::new()
            .register_type(REC_TAG, unpickle_rec)
            .chunk_config(ChunkStoreConfig {
                fanout: 4,
                segment_size: 4096,
                ..ChunkStoreConfig::default()
            })
            .build_in_memory()
            .unwrap();
        let partition = db.partition();
        let mut ids = Vec::new();
        let mut session = db.session("setup");
        for i in 0..10u32 {
            let mut record = REC_TAG.to_le_bytes().to_vec();
            record.extend_from_slice(format!("framed record {i}").as_bytes());
            match session.dispatch(&tdb::Command::Create { partition, record }) {
                tdb::Response::Id(id) => ids.push(id),
                other => panic!("create answered {other:?}"),
            }
        }
        drop(session);
        let root = db.snapshot_root().unwrap();
        (db, ids[4], root)
    }

    /// What a verifying client does with one framed response: strip the
    /// frame, decode the envelope, check the request id, decode the
    /// proof, verify the record against the pinned root. Returns the
    /// record only if every step accepts.
    fn client_accepts(
        frame: &[u8],
        expected_request: u64,
        pinned_root: &HashValue,
    ) -> Option<Vec<u8>> {
        let mut cursor = std::io::Cursor::new(frame);
        let payload = wire::read_frame(&mut cursor).ok()?;
        // Trailing bytes after the framed payload are a protocol error.
        if (cursor.position() as usize) != frame.len() {
            return None;
        }
        let envelope = wire::decode_response(&payload).ok()?;
        if envelope.request_id != expected_request {
            return None;
        }
        match envelope.response {
            tdb::Response::VerifiedRecord { record, proof, .. } => {
                let proof = ReadProof::decode(&proof?).ok()?;
                if verify_read_proof(&proof, &record, pinned_root) {
                    Some(record)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    #[test]
    fn read_proof_wire_round_trip_is_lossless() {
        let (db, id, root) = populated_db();
        let (body, proof) = db.chunks().read_with_proof(id.0).unwrap();
        assert!(proof.levels.len() >= 2, "tree too shallow");
        let encoded = proof.encode();
        let decoded = ReadProof::decode(&encoded).unwrap();
        assert_eq!(decoded, proof, "decode(encode(p)) must equal p");
        assert_eq!(decoded.encode(), encoded, "re-encoding must be stable");
        assert!(verify_read_proof(&decoded, &body, &root));
        // Every truncation of the wire form must fail to decode — a
        // shortened proof can never pass for a complete one.
        for len in 0..encoded.len() {
            assert!(
                ReadProof::decode(&encoded[..len]).is_err(),
                "truncation to {len} bytes decoded"
            );
        }
    }

    #[test]
    fn framed_response_single_byte_tamper_sweep() {
        let (db, id, root) = populated_db();
        let mut session = db.session("prover");
        let response = session.dispatch(&tdb::Command::GetWithProof(id));
        let envelope = wire::encode_response(42, wire::health::LIVE, "", &response);
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, &envelope).unwrap();

        let original = client_accepts(&frame, 42, &root).expect("intact frame must verify");
        assert!(original.ends_with(b"framed record 4"));

        // Flip low, high, and all bits of every byte of the frame —
        // length prefix, request id, health stamp, record, proof, and
        // embedded root alike. The client must either reject the frame
        // outright or still extract the original record (flips confined
        // to advisory bytes it does not trust anyway).
        for i in 0..frame.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut tampered = frame.clone();
                tampered[i] ^= mask;
                if let Some(record) = client_accepts(&tampered, 42, &root) {
                    assert_eq!(
                        record, original,
                        "byte {i} flipped with {mask:#04x} yielded a different record"
                    );
                }
            }
        }
    }
}
