//! Server torture: kill the server mid-load, inject storage faults under
//! it, and feed it garbage frames. The invariants: clients always see
//! clean typed errors (never a hang, never a panic), the store reopens
//! and validates afterwards, and **no acknowledged commit is ever lost**
//! — an `Ok`/`Id` response means the write was flushed and survives any
//! crash that follows it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tdb::{Command, Response, TrustedBackend, TrustedDbBuilder};
use tdb_client::{ClientError, TdbClient};
use tdb_crypto::SecretKey;
use tdb_server::{ServerConfig, TdbServer};
use tdb_storage::{
    CounterOverTrusted, CrashStore, FaultPlan, MemArchive, MemStore, MemTrustedStore,
    PlannedFaultStore, SharedUntrusted, TrustedStore,
};

const AUTH_KEY: &[u8] = b"torture-pre-shared-key";

const REC_TAG: u32 = 7002;

fn record(payload: &str) -> Vec<u8> {
    let mut out = REC_TAG.to_le_bytes().to_vec();
    out.extend_from_slice(payload.as_bytes());
    out
}

#[derive(Debug)]
struct Rec(Vec<u8>);

impl tdb::StoredObject for Rec {
    fn type_tag(&self) -> u32 {
        REC_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        self.0.clone()
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn unpickle_rec(body: &[u8]) -> tdb_object::errors::Result<Arc<dyn tdb::StoredObject>> {
    Ok(Arc::new(Rec(body.to_vec())))
}

fn builder() -> TrustedDbBuilder {
    TrustedDbBuilder::new()
        .secret(SecretKey::new(vec![11u8; 24]))
        .register_type(REC_TAG, unpickle_rec)
}

fn backend_over(register: &Arc<MemTrustedStore>) -> TrustedBackend {
    TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
        Arc::clone(register) as Arc<dyn TrustedStore>
    )))
}

/// Kill the server while many connections are writing; crash the device
/// (losing every unflushed write); reopen and verify every acknowledged
/// create survived.
#[test]
fn killed_mid_load_loses_no_acked_commit() {
    let inner = Arc::new(MemStore::new());
    let crash = Arc::new(CrashStore::new(Arc::clone(&inner) as SharedUntrusted).unwrap());
    let register = Arc::new(MemTrustedStore::new(64));
    let db = builder()
        .create(
            Arc::clone(&crash) as SharedUntrusted,
            backend_over(&register),
            Arc::new(MemArchive::new()),
        )
        .expect("create db");
    let partition = db.partition();
    let mut server = TdbServer::spawn(
        Arc::new(db),
        "127.0.0.1:0",
        ServerConfig::new(SecretKey::new(AUTH_KEY.to_vec())),
    )
    .expect("spawn server");
    let addr = server.addr();

    let acked_total = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for w in 0..4u32 {
        let acked_total = Arc::clone(&acked_total);
        workers.push(std::thread::spawn(move || {
            let mut client = match TdbClient::connect(addr, &format!("worker-{w}"), AUTH_KEY) {
                Ok(c) => c,
                Err(_) => return Vec::new(), // server died before we connected
            };
            let mut acked = Vec::new();
            for i in 0..10_000u32 {
                let payload = format!("worker {w} item {i}");
                match client.create(partition, record(&payload)) {
                    Ok(id) => {
                        acked.push((id, payload));
                        acked_total.fetch_add(1, Ordering::Relaxed);
                    }
                    // The kill must surface as a clean transport error.
                    Err(ClientError::Io(_)) => break,
                    Err(other) => panic!("expected a clean Io error on kill, got {other}"),
                }
            }
            acked
        }));
    }

    // Let the load run, then pull the plug mid-flight.
    while acked_total.load(Ordering::Relaxed) < 200 {
        std::thread::yield_now();
    }
    server.shutdown();
    let acked: Vec<(tdb::ObjectId, String)> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("worker panicked"))
        .collect();
    assert!(
        acked.len() >= 200,
        "load never ramped: {} acks",
        acked.len()
    );
    drop(server);

    // Crash the device: every write not yet flushed is gone.
    let image = crash.crash_lose_all();
    let reopened = builder()
        .open(
            Arc::new(MemStore::from_bytes(image)) as SharedUntrusted,
            backend_over(&register),
            Arc::new(MemArchive::new()),
        )
        .expect("reopen after kill must validate");
    let mut session = reopened.session("auditor");
    for (id, payload) in &acked {
        match session.dispatch(&Command::Get(*id)) {
            Response::Record(rec) => {
                assert_eq!(rec, record(payload), "acked record {id:?} corrupted")
            }
            other => panic!("acked commit lost: {id:?} ({payload}) answered {other:?}"),
        }
    }
}

/// A seeded fault plan under the live server: every client call either
/// succeeds (and survives reopen) or fails with a typed remote error;
/// the health stamp tells clients when the store degrades.
#[test]
fn seeded_faults_surface_as_typed_errors_and_reopen_verifies() {
    let inner = Arc::new(MemStore::new());
    let faulty = Arc::new(PlannedFaultStore::new(
        Arc::clone(&inner) as SharedUntrusted,
        FaultPlan::new(),
    ));
    let register = Arc::new(MemTrustedStore::new(64));
    let db = builder()
        .create(
            Arc::clone(&faulty) as SharedUntrusted,
            backend_over(&register),
            Arc::new(MemArchive::new()),
        )
        .expect("create db");
    let partition = db.partition();
    let mut server = TdbServer::spawn(
        Arc::new(db),
        "127.0.0.1:0",
        ServerConfig::new(SecretKey::new(AUTH_KEY.to_vec())),
    )
    .expect("spawn server");
    let mut client = TdbClient::connect(server.addr(), "fault-driver", AUTH_KEY).expect("connect");

    // A clean warm-up burst, then arm a seeded fault plan over the next
    // stretch of device operations.
    let mut acked = Vec::new();
    for i in 0..20u32 {
        let payload = format!("pre-fault {i}");
        let id = client.create(partition, record(&payload)).expect("warm-up");
        acked.push((id, payload));
    }
    let horizon = faulty.total_ops() + 40;
    faulty.set_plan(FaultPlan::seeded(0xF00D, horizon, 6));

    let mut remote_errors = 0u32;
    let mut degraded_seen = false;
    for i in 0..200u32 {
        let payload = format!("under-fire {i}");
        match client.create(partition, record(&payload)) {
            Ok(id) => acked.push((id, payload)),
            Err(ClientError::Remote(e)) => {
                // Typed, coded, in-band: the connection stays usable.
                assert!(e.code() > 0);
                remote_errors += 1;
            }
            Err(other) => panic!("fault leaked as a non-remote error: {other}"),
        }
        if !client.last_health().is_live() {
            degraded_seen = true;
        }
    }
    assert!(
        faulty.injected_faults() > 0,
        "the plan never fired — widen the horizon"
    );
    // Injected faults either surfaced as typed errors or degraded the
    // store (both observable in-band on this same connection).
    assert!(
        remote_errors > 0 || degraded_seen,
        "faults fired but the client never observed them"
    );
    drop(client);
    server.shutdown();
    drop(server);

    // Reopen from the device image: recovery must validate, and every
    // acked create must read back intact.
    let reopened = builder()
        .open(
            Arc::new(MemStore::from_bytes(inner.image())) as SharedUntrusted,
            backend_over(&register),
            Arc::new(MemArchive::new()),
        )
        .expect("reopen after faults must validate");
    let mut session = reopened.session("auditor");
    for (id, payload) in &acked {
        match session.dispatch(&Command::Get(*id)) {
            Response::Record(rec) => {
                assert_eq!(rec, record(payload), "acked record {id:?} corrupted")
            }
            other => panic!("acked commit lost: {id:?} ({payload}) answered {other:?}"),
        }
    }
}

/// Garbage on the wire: a well-framed request whose command bytes are
/// junk gets an in-band typed error on the same request id; the
/// connection keeps working.
#[test]
fn malformed_command_gets_in_band_typed_error() {
    use std::io::Write;

    let register = Arc::new(MemTrustedStore::new(64));
    let db = builder()
        .create(
            Arc::new(MemStore::new()) as SharedUntrusted,
            backend_over(&register),
            Arc::new(MemArchive::new()),
        )
        .expect("create db");
    let mut server = TdbServer::spawn(
        Arc::new(db),
        "127.0.0.1:0",
        ServerConfig::new(SecretKey::new(AUTH_KEY.to_vec())),
    )
    .expect("spawn server");

    // Speak the protocol by hand so we can inject a junk command.
    let stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let hello = tdb::wire::Hello::decode(&tdb::wire::read_frame(&mut reader).expect("hello"))
        .expect("decode hello");
    let nonce = [3u8; tdb::wire::NONCE_LEN];
    let auth = tdb::wire::ClientAuth {
        principal: "raw".into(),
        nonce,
        mac: tdb::wire::client_auth_mac(AUTH_KEY, &hello.nonce, &nonce, "raw"),
    };
    tdb::wire::write_frame(&mut writer, &auth.encode()).expect("auth");
    writer.flush().expect("flush");
    match tdb::wire::AuthResult::decode(&tdb::wire::read_frame(&mut reader).expect("verdict"))
        .expect("decode verdict")
    {
        tdb::wire::AuthResult::Welcome { .. } => {}
        tdb::wire::AuthResult::Reject { reason } => panic!("handshake rejected: {reason}"),
    }

    // Request id 77, opcode 0xFFFF (no such command), trailing junk.
    let mut junk = 77u64.to_le_bytes().to_vec();
    junk.extend_from_slice(&0xFFFFu16.to_le_bytes());
    junk.extend_from_slice(b"garbage");
    tdb::wire::write_frame(&mut writer, &junk).expect("send junk");
    writer.flush().expect("flush");
    let envelope =
        tdb::wire::decode_response(&tdb::wire::read_frame(&mut reader).expect("response"))
            .expect("decode envelope");
    assert_eq!(envelope.request_id, 77, "error must keep the request id");
    match envelope.response {
        Response::Error(err) => assert!(err.0.code() > 0),
        other => panic!("junk command answered {other:?}"),
    }

    // The connection survived: a well-formed request still works.
    tdb::wire::write_frame(&mut writer, &tdb::wire::encode_request(78, &Command::Ping))
        .expect("send ping");
    writer.flush().expect("flush");
    let envelope =
        tdb::wire::decode_response(&tdb::wire::read_frame(&mut reader).expect("response"))
            .expect("decode envelope");
    assert_eq!(envelope.request_id, 78);
    assert_eq!(envelope.response, Response::Pong);
    server.shutdown();
}
